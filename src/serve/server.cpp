#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace ls::serve {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

FrameTimeouts io_timeouts(const ServerOptions& o) {
  FrameTimeouts t;
  t.read_ms = o.read_timeout_ms;
  t.write_ms = o.write_timeout_ms;
  t.idle_ms = o.idle_timeout_ms;
  return t;
}

/// True for accept() failures that mean resource exhaustion rather than a
/// closed listener: back off and retry instead of exiting the accept loop.
bool accept_errno_is_overload(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM;
}

/// Exception-safe decrement for the in-flight frame counter.
struct FrameGuard {
  explicit FrameGuard(std::atomic<int>& c) : counter(c) {
    counter.fetch_add(1, std::memory_order_acq_rel);
  }
  ~FrameGuard() { counter.fetch_sub(1, std::memory_order_acq_rel); }
  std::atomic<int>& counter;
};

}  // namespace

ServeServer::ServeServer(ServeEngine& engine, ServerOptions opts)
    : handler_(nullptr),
      owned_handler_(std::make_unique<EngineFrameHandler>(engine)),
      opts_(std::move(opts)) {
  handler_ = owned_handler_.get();
}

ServeServer::ServeServer(FrameHandler& handler, ServerOptions opts)
    : handler_(&handler), opts_(std::move(opts)) {}

ServeServer::~ServeServer() { stop(); }

void ServeServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  LS_FAILPOINT("serve.server.start");

  if (!opts_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LS_CHECK(listen_fd_ >= 0,
             "serve: socket() failed: " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    LS_CHECK(opts_.unix_path.size() < sizeof(addr.sun_path),
             "unix socket path too long: " << opts_.unix_path);
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket file from a crashed predecessor would fail the bind.
    ::unlink(opts_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      close_quiet(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw Error("serve: bind(" + opts_.unix_path +
                  ") failed: " + std::strerror(err));
    }
  } else {
    LS_CHECK(opts_.tcp_port >= 0, "serve: no unix path and no tcp port");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    LS_CHECK(listen_fd_ >= 0,
             "serve: socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      close_quiet(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw Error("serve: bind(127.0.0.1:" + std::to_string(opts_.tcp_port) +
                  ") failed: " + std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }

  LS_CHECK(::listen(listen_fd_, opts_.backlog) == 0,
           "serve: listen() failed: " << std::strerror(errno));
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::accept_overload_backoff() {
  // Interruptible pause: stop() must never wait out a long backoff.
  const auto until =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              std::max(0.0, opts_.accept_backoff_ms)));
  while (running_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void ServeServer::accept_loop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop()/begin_drain() already claimed the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (accept_errno_is_overload(err)) {
        // Out of fds (or kernel memory): the listener is still good, the
        // process just cannot take more work right now. Pausing lets the
        // backlog queue new peers while open connections finish and free
        // descriptors — a fatal exit here would turn transient pressure
        // into an outage.
        accept_overload_total_.fetch_add(1, std::memory_order_release);
        metrics::counter_add("serve.accept_overload_total");
        accept_overload_backoff();
        continue;
      }
      // stop() closed the listener (EBADF/EINVAL) — a clean exit.
      return;
    }
    if (!running_.load(std::memory_order_acquire)) {
      close_quiet(fd);
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      // Listener close and the draining flag race by a hair; refuse
      // whatever slipped through.
      close_quiet(fd);
      continue;
    }
    try {
      LS_FAILPOINT("serve.accept.overload");
    } catch (const std::exception&) {
      // Injected fd exhaustion: treat exactly like the errno path above.
      close_quiet(fd);
      accept_overload_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.accept_overload_total");
      accept_overload_backoff();
      continue;
    }
    if (!govern_and_register(fd)) close_quiet(fd);
  }
}

bool ServeServer::govern_and_register(int fd) {
  const std::int64_t now = now_us();
  std::lock_guard<std::mutex> lk(mu_);
  reap_finished_locked();
  if (opts_.max_connections > 0 && conns_.size() >= opts_.max_connections) {
    // At the cap: evict the connection that has been parked between frames
    // the longest. Only its fd is shut down here — the handler thread owns
    // the close, so the accept loop can never shut down a recycled fd.
    std::shared_ptr<Conn> victim;
    for (const auto& c : conns_) {
      if (c->in_request.load(std::memory_order_acquire)) continue;
      if (!victim || c->last_active_us.load(std::memory_order_acquire) <
                         victim->last_active_us.load(
                             std::memory_order_acquire)) {
        victim = c;
      }
    }
    if (!victim) {
      // Every connection is mid-request: shedding the newcomer is the only
      // move that does not abort work already paid for.
      rejected_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.rejected_total");
      return false;
    }
    ::shutdown(victim->fd, SHUT_RDWR);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), victim),
                 conns_.end());
    evictions_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.evictions_total");
  }
  const std::int64_t conn_id =
      connections_total_.fetch_add(1, std::memory_order_release) + 1;
  auto conn =
      std::make_shared<Conn>(fd, static_cast<std::uint64_t>(conn_id));
  conn->last_active_us.store(now, std::memory_order_release);
  conns_.push_back(conn);
  metrics::counter_add("serve.connections_total");
  std::thread t([this, conn] { handle_connection(conn); });
  const std::thread::id id = t.get_id();
  handlers_.emplace(id, std::move(t));
  return true;
}

void ServeServer::reap_finished_locked() {
  // Joining under mu_ is safe: a handler's id lands in finished_ in its own
  // final critical section, after which the thread only closes its fd and
  // returns — it never takes mu_ again.
  std::vector<std::thread::id> pending;
  for (const std::thread::id id : finished_) {
    auto it = handlers_.find(id);
    if (it == handlers_.end()) {
      // Handler finished before govern_and_register() recorded its thread;
      // keep the id for the next reap.
      pending.push_back(id);
      continue;
    }
    it->second.join();
    handlers_.erase(it);
  }
  finished_ = std::move(pending);
}

void ServeServer::handle_connection(std::shared_ptr<Conn> conn) {
  const int fd = conn->fd;
  const FrameTimeouts t = io_timeouts(opts_);
  bool usable = true;
  try {
    // Nonblocking mode makes every read()/write() return immediately, so
    // the poll()-based deadlines in read_frame/write_frame are authoritative
    // even for frames larger than the socket buffer.
    make_nonblocking(fd);
  } catch (const std::exception&) {
    usable = false;
  }

  Frame frame;
  while (usable) {
    conn->in_request.store(false, std::memory_order_release);
    bool alive = false;
    try {
      LS_FAILPOINT("serve.conn.read");
      alive = read_frame(fd, frame, t);
    } catch (const IoError& e) {
      switch (e.kind()) {
        case IoErrorKind::kIdle:
          idle_timeouts_total_.fetch_add(1, std::memory_order_release);
          metrics::counter_add("serve.idle_timeouts_total");
          break;
        case IoErrorKind::kTimeout:
          // Slow-loris: the frame started but never finished inside the
          // read budget. Drop the connection; the worker is free again.
          read_timeouts_total_.fetch_add(1, std::memory_order_release);
          metrics::counter_add("serve.read_timeouts_total");
          break;
        case IoErrorKind::kClosed:
          break;  // peer vanished mid-frame; nothing left to say
        default:
          // Stream desync (kTorn) or socket error: answer kBadFrame on a
          // best-effort basis and drop only this client.
          protocol_errors_total_.fetch_add(1, std::memory_order_release);
          metrics::counter_add("serve.protocol_errors_total");
          try {
            write_frame(
                fd, MsgType::kStatusResp,
                encode_status_response(Status::kBadFrame, "bad frame"), t);
          } catch (const std::exception&) {
          }
          break;
      }
      break;
    } catch (const std::exception&) {
      protocol_errors_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.protocol_errors_total");
      try {
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kBadFrame, "bad frame"),
                    t);
      } catch (const std::exception&) {
      }
      break;
    }
    if (!alive) break;

    conn->in_request.store(true, std::memory_order_release);
    conn->last_active_us.store(now_us(), std::memory_order_release);
    conn->frames.fetch_add(1, std::memory_order_relaxed);
    frames_total_.fetch_add(1, std::memory_order_release);
    metrics::counter_add("serve.frames_total");

    bool keep = false;
    try {
      FrameGuard g(active_frames_);
      FrameContext ctx;
      ctx.fd = fd;
      ctx.timeouts = t;
      ctx.draining = draining_.load(std::memory_order_acquire);
      ctx.conn_id = conn->id;
      ctx.server = this;
      const FrameDisposition d = handler_->on_frame(ctx, frame);
      if (d == FrameDisposition::kStopServer) request_stop();
      keep = d == FrameDisposition::kKeep;
    } catch (const IoError& e) {
      if (e.kind() == IoErrorKind::kTimeout) {
        write_timeouts_total_.fetch_add(1, std::memory_order_release);
        metrics::counter_add("serve.write_timeouts_total");
      }
      break;  // response undeliverable — nothing left to say to this client
    } catch (const std::exception&) {
      protocol_errors_total_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("serve.protocol_errors_total");
      break;
    }
    conn->last_active_us.store(now_us(), std::memory_order_release);
    if (!keep) break;
  }

  // Deregister BEFORE closing: once the fd is closed the number can be
  // recycled by a new accept, and the eviction scan must never be able to
  // shut down a recycled descriptor.
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
    finished_.push_back(std::this_thread::get_id());
  }
  ::shutdown(fd, SHUT_RDWR);
  close_quiet(fd);
}

FrameDisposition EngineFrameHandler::on_frame(const FrameContext& ctx,
                                              const Frame& frame) {
  const int fd = ctx.fd;
  const FrameTimeouts& t = ctx.timeouts;
  switch (frame.type) {
    case MsgType::kPredictReq: {
      std::string model;
      SparseVector x;
      double deadline_ms = 0.0;
      try {
        decode_predict_request(frame.payload, model, x, &deadline_ms);
      } catch (const std::exception&) {
        ctx.server->note_protocol_error();
        write_frame(fd, MsgType::kPredictResp,
                    encode_predict_response(
                        PredictResult{Status::kBadFrame, 0.0, 0.0}),
                    t);
        return FrameDisposition::kKeep;
      }
      if (ctx.draining) {
        // New work is refused during drain; only requests accepted before
        // begin_drain() still flow to completion.
        write_frame(fd, MsgType::kPredictResp,
                    encode_predict_response(
                        PredictResult{Status::kShuttingDown, 0.0, 0.0}),
                    t);
        return FrameDisposition::kKeep;
      }
      const PredictResult r =
          engine_->predict(model, std::move(x), deadline_ms);
      LS_FAILPOINT("serve.conn.write");
      write_frame(fd, MsgType::kPredictResp, encode_predict_response(r), t);
      return FrameDisposition::kKeep;
    }
    case MsgType::kReloadReq: {
      std::string model;
      try {
        model = decode_reload_request(frame.payload);
      } catch (const std::exception&) {
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kBadFrame, "bad frame"),
                    t);
        return FrameDisposition::kKeep;
      }
      try {
        engine_->reload_model(model);
        write_frame(
            fd, MsgType::kStatusResp,
            encode_status_response(Status::kOk, "reloaded " + model), t);
      } catch (const std::exception& e) {
        // A failed reload leaves the previous version serving.
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kInternal, e.what()), t);
      }
      return FrameDisposition::kKeep;
    }
    case MsgType::kStatsReq:
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk,
                                         engine_->stats_text() +
                                             ctx.server->stats_text()),
                  t);
      return FrameDisposition::kKeep;
    case MsgType::kHealthReq: {
      // Drain state outranks the engine view: a draining server must stop
      // receiving traffic even though the engine is still healthy.
      const char* state = ctx.draining ? "draining" : engine_->health_name();
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk, state), t);
      return FrameDisposition::kKeep;
    }
    case MsgType::kModelsReq:
      write_frame(
          fd, MsgType::kStatusResp,
          encode_status_response(Status::kOk, engine_->models_text()), t);
      return FrameDisposition::kKeep;
    case MsgType::kPingReq:
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk, "pong"), t);
      return FrameDisposition::kKeep;
    case MsgType::kShutdownReq:
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk, "shutting down"), t);
      return FrameDisposition::kStopServer;
    case MsgType::kIngestReq:
      // The serve tier hosts no training windows; ingest belongs to the
      // trainer daemon's handler. Answer rather than desync the stream.
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kBadFrame,
                                         "ingest not supported here"),
                  t);
      return FrameDisposition::kKeep;
    case MsgType::kPredictResp:
    case MsgType::kStatusResp:
      // Response types are not valid requests.
      ctx.server->note_protocol_error();
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kBadFrame,
                                         "response type sent as request"),
                  t);
      return FrameDisposition::kKeep;
  }
  return FrameDisposition::kKeep;
}

void ServeServer::note_protocol_error() {
  protocol_errors_total_.fetch_add(1, std::memory_order_release);
  metrics::counter_add("serve.protocol_errors_total");
}

void ServeServer::request_stop() {
  {
    // The lock pairs with wait()'s predicate check so the notify cannot
    // slip between a waiter's check and its block.
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void ServeServer::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  stop_cv_.wait(lk, [&] {
    return stop_requested_.load(std::memory_order_acquire) ||
           !running_.load(std::memory_order_acquire);
  });
}

void ServeServer::begin_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  metrics::annotate("serve.state", "draining");
  // Closing the listener refuses new connections at the kernel level; the
  // accept thread sees lfd < 0 (or a failing accept) and exits. exchange()
  // claims the fd so a concurrent stop() cannot double-close it.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    close_quiet(lfd);
  }
}

bool ServeServer::drain(double bound_ms) {
  begin_drain();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double, std::milli>(
                   std::max(0.0, bound_ms)));
  bool quiesced = false;
  for (;;) {
    if (active_frames_.load(std::memory_order_acquire) == 0 &&
        handler_->quiesced()) {
      quiesced = true;
      break;
    }
    if (bound_ms > 0 && std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  drain_seconds_.store(secs, std::memory_order_release);
  metrics::gauge_set("serve.drain_seconds", secs);
  return quiesced;
}

void ServeServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  request_stop();

  // Closing the listener unblocks accept(); shutting down the client fds
  // unblocks any handler parked in read_frame(). exchange() claims the fd
  // so the accept thread never touches it after the close.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    close_quiet(lfd);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& c : conns_) ::shutdown(c->fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Handlers deregister themselves but their threads are joined here, after
  // the accept loop is down, so no new ones can appear.
  std::map<std::thread::id, std::thread> handlers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    handlers.swap(handlers_);
    finished_.clear();
  }
  for (auto& [id, thread] : handlers) {
    (void)id;
    if (thread.joinable()) thread.join();
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

ServerStats ServeServer::server_stats() const {
  ServerStats s;
  s.connections_total = connections_total_.load(std::memory_order_acquire);
  s.frames_total = frames_total_.load(std::memory_order_acquire);
  s.evictions_total = evictions_total_.load(std::memory_order_acquire);
  s.rejected_total = rejected_total_.load(std::memory_order_acquire);
  s.idle_timeouts_total =
      idle_timeouts_total_.load(std::memory_order_acquire);
  s.read_timeouts_total =
      read_timeouts_total_.load(std::memory_order_acquire);
  s.write_timeouts_total =
      write_timeouts_total_.load(std::memory_order_acquire);
  s.accept_overload_total =
      accept_overload_total_.load(std::memory_order_acquire);
  s.protocol_errors_total =
      protocol_errors_total_.load(std::memory_order_acquire);
  s.draining = draining_.load(std::memory_order_acquire);
  s.drain_seconds = drain_seconds_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lk(mu_);
    s.connections_open = conns_.size();
  }
  return s;
}

std::string ServeServer::stats_text() const {
  const ServerStats s = server_stats();
  std::ostringstream os;
  os << "connections_open " << s.connections_open << '\n'
     << "connections_total " << s.connections_total << '\n'
     << "frames_total " << s.frames_total << '\n'
     << "evictions_total " << s.evictions_total << '\n'
     << "rejected_total " << s.rejected_total << '\n'
     << "idle_timeouts_total " << s.idle_timeouts_total << '\n'
     << "read_timeouts_total " << s.read_timeouts_total << '\n'
     << "write_timeouts_total " << s.write_timeouts_total << '\n'
     << "accept_overload_total " << s.accept_overload_total << '\n'
     << "server_protocol_errors_total " << s.protocol_errors_total << '\n'
     << "draining " << (s.draining ? 1 : 0) << '\n'
     << "drain_seconds " << s.drain_seconds << '\n';
  return os.str();
}

}  // namespace ls::serve
