#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace ls::serve {

namespace {

void close_quiet(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

ServeServer::ServeServer(ServeEngine& engine, ServerOptions opts)
    : engine_(&engine), opts_(std::move(opts)) {}

ServeServer::~ServeServer() { stop(); }

void ServeServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  LS_FAILPOINT("serve.server.start");

  if (!opts_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LS_CHECK(listen_fd_ >= 0,
             "serve: socket() failed: " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    LS_CHECK(opts_.unix_path.size() < sizeof(addr.sun_path),
             "unix socket path too long: " << opts_.unix_path);
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket file from a crashed predecessor would fail the bind.
    ::unlink(opts_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      close_quiet(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw Error("serve: bind(" + opts_.unix_path +
                  ") failed: " + std::strerror(err));
    }
  } else {
    LS_CHECK(opts_.tcp_port >= 0, "serve: no unix path and no tcp port");
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    LS_CHECK(listen_fd_ >= 0,
             "serve: socket() failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      close_quiet(listen_fd_);
      listen_fd_ = -1;
      running_.store(false);
      throw Error("serve: bind(127.0.0.1:" + std::to_string(opts_.tcp_port) +
                  ") failed: " + std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }

  LS_CHECK(::listen(listen_fd_, opts_.backlog) == 0,
           "serve: listen() failed: " << std::strerror(errno));
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ServeServer::accept_loop() {
  for (;;) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // stop() already claimed the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() closed the listener (EBADF/EINVAL) — a clean exit.
      return;
    }
    if (!running_.load(std::memory_order_acquire)) {
      close_quiet(fd);
      return;
    }
    metrics::counter_add("serve.connections_total");
    std::lock_guard<std::mutex> lk(mu_);
    open_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void ServeServer::handle_connection(int fd) {
  Frame frame;
  for (;;) {
    bool alive = false;
    try {
      LS_FAILPOINT("serve.conn.read");
      alive = read_frame(fd, frame);
    } catch (const std::exception&) {
      // Garbage on the wire or a torn connection: answer kBadFrame on a
      // best-effort basis and drop only this client.
      metrics::counter_add("serve.protocol_errors_total");
      try {
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kBadFrame, "bad frame"));
      } catch (const std::exception&) {
      }
      break;
    }
    if (!alive) break;

    try {
      if (!handle_frame(fd, frame)) break;
    } catch (const std::exception&) {
      // Writing the response failed — nothing left to say to this client.
      metrics::counter_add("serve.protocol_errors_total");
      break;
    }
  }

  ::shutdown(fd, SHUT_RDWR);
  close_quiet(fd);
  std::lock_guard<std::mutex> lk(mu_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
}

bool ServeServer::handle_frame(int fd, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPredictReq: {
      std::string model;
      SparseVector x;
      try {
        decode_predict_request(frame.payload, model, x);
      } catch (const std::exception&) {
        metrics::counter_add("serve.protocol_errors_total");
        write_frame(fd, MsgType::kPredictResp,
                    encode_predict_response(
                        PredictResult{Status::kBadFrame, 0.0, 0.0}));
        return true;
      }
      const PredictResult r = engine_->predict(model, std::move(x));
      LS_FAILPOINT("serve.conn.write");
      write_frame(fd, MsgType::kPredictResp, encode_predict_response(r));
      return true;
    }
    case MsgType::kReloadReq: {
      std::string model;
      try {
        model = decode_reload_request(frame.payload);
      } catch (const std::exception&) {
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kBadFrame, "bad frame"));
        return true;
      }
      try {
        engine_->reload_model(model);
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kOk, "reloaded " + model));
      } catch (const std::exception& e) {
        // A failed reload leaves the previous version serving.
        write_frame(fd, MsgType::kStatusResp,
                    encode_status_response(Status::kInternal, e.what()));
      }
      return true;
    }
    case MsgType::kStatsReq:
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk, engine_->stats_text()));
      return true;
    case MsgType::kPingReq:
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk, "pong"));
      return true;
    case MsgType::kShutdownReq:
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kOk, "shutting down"));
      request_stop();
      return false;
    case MsgType::kPredictResp:
    case MsgType::kStatusResp:
      // Response types are not valid requests.
      metrics::counter_add("serve.protocol_errors_total");
      write_frame(fd, MsgType::kStatusResp,
                  encode_status_response(Status::kBadFrame,
                                         "response type sent as request"));
      return true;
  }
  return true;
}

void ServeServer::request_stop() {
  {
    // The lock pairs with wait()'s predicate check so the notify cannot
    // slip between a waiter's check and its block.
    std::lock_guard<std::mutex> lk(mu_);
    stop_requested_.store(true, std::memory_order_release);
  }
  stop_cv_.notify_all();
}

void ServeServer::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  stop_cv_.wait(lk, [&] {
    return stop_requested_.load(std::memory_order_acquire) ||
           !running_.load(std::memory_order_acquire);
  });
}

void ServeServer::stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false)) return;
  request_stop();

  // Closing the listener unblocks accept(); shutting down the client fds
  // unblocks any handler parked in read_frame(). exchange() claims the fd
  // so the accept thread never touches it after the close.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    close_quiet(lfd);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Handlers remove themselves from open_fds_ but their threads are joined
  // here, after the accept loop is down, so no new ones can appear.
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lk(mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

}  // namespace ls::serve
