// Socket front-end of the serving engine.
//
// Listens on a Unix-domain socket (the default for local serving: no
// network stack, filesystem permissions) or a loopback TCP port, accepts
// connections on a dedicated thread and runs one handler thread per
// connection. Handlers speak the framed protocol of serve/protocol.hpp and
// call straight into the ServeEngine — concurrency control (batching,
// admission, shedding) lives there, not in the socket layer.
//
// Failure containment: a malformed frame is answered with kBadFrame and
// the connection is closed; an I/O error (failpoint-injectable via
// serve.frame.read / serve.frame.write) tears down only its own
// connection. The accept loop and every other client keep running.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace ls::serve {

/// Listener configuration: set `unix_path` for AF_UNIX (preferred), or
/// leave it empty and set `tcp_port` (0 = kernel-assigned, see port())
/// for loopback TCP.
struct ServerOptions {
  std::string unix_path;
  int tcp_port = -1;
  int backlog = 64;
};

/// Threaded socket server over a ServeEngine. The engine must outlive the
/// server and is shared — in-process callers can keep using it directly.
class ServeServer {
 public:
  ServeServer(ServeEngine& engine, ServerOptions opts);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and spawns the accept thread. Throws ls::Error when
  /// the address cannot be bound.
  void start();

  /// Closes the listener and every open connection, then joins all
  /// threads. Idempotent; the destructor calls it.
  void stop();

  /// Blocks until a client sends kShutdownReq or another thread calls
  /// stop(). The caller still runs stop() afterwards to join threads.
  void wait();

  /// Actual TCP port after start() (useful with tcp_port = 0).
  int port() const { return port_; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Serves one decoded frame; returns false when the connection (or the
  /// whole server, for kShutdownReq) should wind down.
  bool handle_frame(int fd, const Frame& frame);
  void request_stop();

  ServeEngine* engine_;
  ServerOptions opts_;
  /// Atomic because stop() claims-and-closes it (exchange to -1) while the
  /// accept thread re-reads it each iteration.
  std::atomic<int> listen_fd_{-1};
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread accept_thread_;
  std::mutex mu_;                  // guards conns_ and handler bookkeeping
  std::condition_variable stop_cv_;
  /// One entry per accepted connection, joined in stop(). Finished threads
  /// stay joinable until then — cheap (a few KB each) at the connection
  /// counts a local serving socket sees, and it keeps shutdown a plain
  /// join-everything with no detach races.
  std::vector<std::thread> handlers_;
  std::vector<int> open_fds_;
};

}  // namespace ls::serve
