// Socket front-end of the serving engine.
//
// Listens on a Unix-domain socket (the default for local serving: no
// network stack, filesystem permissions) or a loopback TCP port, accepts
// connections on a dedicated thread and runs one handler thread per
// connection. Handlers speak the framed protocol of serve/protocol.hpp and
// call straight into the ServeEngine — concurrency control (batching,
// admission, shedding) lives there, not in the socket layer.
//
// Overload and failure containment:
//   - Every connection's frame I/O is deadline-bounded (read / write /
//     idle timeouts), so a slow-loris peer can never pin a handler thread.
//   - A max-connections cap with oldest-idle eviction bounds the handler
//     pool; EMFILE/ENFILE on accept() backs off briefly instead of
//     crashing the accept loop.
//   - A malformed frame is answered with kBadFrame and the connection is
//     closed; an I/O error (failpoint-injectable via serve.frame.read /
//     serve.frame.write / serve.frame.partial / serve.conn.read /
//     serve.conn.write / serve.accept.overload) tears down only its own
//     connection. The accept loop and every other client keep running.
//   - begin_drain()/drain() implement graceful shutdown: stop accepting,
//     answer new predicts with kShuttingDown, let accepted work finish
//     under a bound, then stop() closes what is left.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace ls::serve {

class ServeServer;

/// What on_frame() tells the server to do once the frame is answered.
enum class FrameDisposition : std::uint8_t {
  kKeep,        ///< keep the connection open for the next frame
  kClose,       ///< wind down this connection only
  kStopServer,  ///< stop the whole server (the shutdown verb)
};

/// Per-frame context handed to a FrameHandler: where to write the reply,
/// under which I/O budgets, and the server's lifecycle state.
struct FrameContext {
  int fd = -1;
  FrameTimeouts timeouts;
  bool draining = false;
  /// Stable 1-based id of the connection the frame arrived on — the
  /// router tier folds it into the consistent-hash key so one client's
  /// stream sticks to one replica.
  std::uint64_t conn_id = 0;
  ServeServer* server = nullptr;
};

/// Application logic behind the socket front-end. ServeServer owns accept,
/// connection governance, frame deadlines, draining and teardown; the
/// handler owns what each verb means. The stock EngineFrameHandler serves
/// a local ServeEngine; the router tier (src/route) implements the same
/// interface to proxy frames onto replicas.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// Serves one decoded request frame, writing the reply with
  /// write_frame() on ctx.fd under ctx.timeouts. A thrown IoError drops
  /// the connection (counted as a write timeout when classified so); any
  /// other exception counts as a protocol error and drops the connection.
  virtual FrameDisposition on_frame(const FrameContext& ctx,
                                    const Frame& frame) = 0;

  /// Drain predicate beyond the in-flight frame count: true when no work
  /// is pending behind the sockets (e.g. the engine queue is empty).
  virtual bool quiesced() const { return true; }
};

/// The stock handler: serves a local ServeEngine (predict / reload /
/// stats / ping / health / shutdown — the verbs serve_tool exposes).
class EngineFrameHandler final : public FrameHandler {
 public:
  explicit EngineFrameHandler(ServeEngine& engine) : engine_(&engine) {}
  FrameDisposition on_frame(const FrameContext& ctx,
                            const Frame& frame) override;
  bool quiesced() const override { return engine_->idle(); }

 private:
  ServeEngine* engine_;
};

/// Listener configuration: set `unix_path` for AF_UNIX (preferred), or
/// leave it empty and set `tcp_port` (0 = kernel-assigned, see port())
/// for loopback TCP.
struct ServerOptions {
  std::string unix_path;
  int tcp_port = -1;
  int backlog = 64;
  /// Connection cap (0 = unlimited). At the cap, the oldest connection
  /// that is idle between frames is evicted to admit the newcomer; when
  /// every connection is mid-request the newcomer is rejected instead.
  std::size_t max_connections = 256;
  /// Whole-frame receive budget once a frame's first byte arrived
  /// (anti-slow-loris). 0 = unbounded.
  double read_timeout_ms = 5000.0;
  /// Whole-frame send budget (peer stops draining its buffer). 0 = off.
  double write_timeout_ms = 5000.0;
  /// How long a connection may sit between frames before it is closed.
  /// 0 = forever (the eviction policy still bounds the total).
  double idle_timeout_ms = 0.0;
  /// Pause after an fd-exhaustion accept() failure (EMFILE/ENFILE/...)
  /// before retrying, so the accept loop degrades instead of spinning.
  double accept_backoff_ms = 20.0;
};

/// Point-in-time socket-layer statistics (engine stats live in ServeStats).
struct ServerStats {
  std::int64_t connections_total = 0;
  std::int64_t frames_total = 0;
  std::int64_t evictions_total = 0;       ///< oldest-idle evicted at the cap
  std::int64_t rejected_total = 0;        ///< cap hit with no idle victim
  std::int64_t idle_timeouts_total = 0;
  std::int64_t read_timeouts_total = 0;
  std::int64_t write_timeouts_total = 0;
  std::int64_t accept_overload_total = 0; ///< EMFILE-class accept backoffs
  std::int64_t protocol_errors_total = 0;
  std::size_t connections_open = 0;
  bool draining = false;
  double drain_seconds = 0.0;             ///< duration of the last drain()
};

/// Threaded socket server over a FrameHandler. The handler (or engine)
/// must outlive the server and is shared — in-process callers can keep
/// using an engine directly while it is being served.
class ServeServer {
 public:
  /// Serves a local engine through the stock EngineFrameHandler.
  ServeServer(ServeEngine& engine, ServerOptions opts);
  /// Serves an arbitrary handler (the router tier's entry point).
  ServeServer(FrameHandler& handler, ServerOptions opts);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and spawns the accept thread. Throws ls::Error when
  /// the address cannot be bound.
  void start();

  /// Closes the listener and every open connection, then joins all
  /// threads. Idempotent; the destructor calls it.
  void stop();

  /// Blocks until a client sends kShutdownReq or another thread calls
  /// stop(). The caller still runs stop() afterwards to join threads.
  void wait();

  /// Enters the draining state: stops accepting new connections and
  /// answers further predict requests with kShuttingDown, while accepted
  /// work keeps flowing. Idempotent.
  void begin_drain();

  /// begin_drain(), then blocks until every in-flight frame is answered
  /// and the engine queue is empty, or `bound_ms` elapses. Returns true
  /// when fully quiesced within the bound. Call stop() afterwards.
  bool drain(double bound_ms);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Socket-layer counters; engine counters come from ServeEngine::stats().
  ServerStats server_stats() const;

  /// Human-readable socket-layer stats block (appended to the engine's
  /// block in the kStatsReq reply).
  std::string stats_text() const;

  /// Actual TCP port after start() (useful with tcp_port = 0).
  int port() const { return port_; }

  /// Counts one malformed frame / payload. Public so FrameHandler
  /// implementations can attribute decode failures to this listener.
  void note_protocol_error();

 private:
  /// Per-connection bookkeeping shared between its handler thread and the
  /// accept loop's governance (eviction victim selection).
  struct Conn {
    Conn(int fd_, std::uint64_t id_) : fd(fd_), id(id_) {}
    const int fd;
    const std::uint64_t id;
    std::atomic<std::int64_t> frames{0};
    std::atomic<std::int64_t> last_active_us{0};
    /// False while parked between frames — the eviction predicate.
    std::atomic<bool> in_request{false};
  };

  void accept_loop();
  void accept_overload_backoff();
  void handle_connection(std::shared_ptr<Conn> conn);
  void request_stop();
  /// Joins handler threads whose connections already finished. mu_ held.
  void reap_finished_locked();
  /// Admits `fd` under the connection cap, evicting the oldest idle
  /// connection if needed. Returns false when the newcomer was rejected.
  bool govern_and_register(int fd);

  FrameHandler* handler_;
  /// Set by the engine-taking constructor, which wraps the engine in an
  /// EngineFrameHandler owned here.
  std::unique_ptr<FrameHandler> owned_handler_;
  ServerOptions opts_;
  /// Atomic because stop() claims-and-closes it (exchange to -1) while the
  /// accept thread re-reads it each iteration.
  std::atomic<int> listen_fd_{-1};
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  mutable std::mutex mu_;          // guards conns_ / handlers_ / finished_
  std::condition_variable stop_cv_;
  std::vector<std::shared_ptr<Conn>> conns_;
  /// Live handler threads by id; finished handlers enqueue their id in
  /// finished_ and are joined on the next accept (or in stop()), so the
  /// thread table stays proportional to open connections, not to the
  /// connection churn since startup.
  std::map<std::thread::id, std::thread> handlers_;
  std::vector<std::thread::id> finished_;

  /// Frames currently being served (read done, response not yet written) —
  /// the drain() predicate, together with ServeEngine::idle().
  std::atomic<int> active_frames_{0};
  std::atomic<std::int64_t> connections_total_{0};
  std::atomic<std::int64_t> frames_total_{0};
  std::atomic<std::int64_t> evictions_total_{0};
  std::atomic<std::int64_t> rejected_total_{0};
  std::atomic<std::int64_t> idle_timeouts_total_{0};
  std::atomic<std::int64_t> read_timeouts_total_{0};
  std::atomic<std::int64_t> write_timeouts_total_{0};
  std::atomic<std::int64_t> accept_overload_total_{0};
  std::atomic<std::int64_t> protocol_errors_total_{0};
  std::atomic<double> drain_seconds_{0.0};
};

}  // namespace ls::serve
