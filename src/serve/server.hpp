// Socket front-end of the serving engine.
//
// Listens on a Unix-domain socket (the default for local serving: no
// network stack, filesystem permissions) or a loopback TCP port, accepts
// connections on a dedicated thread and runs one handler thread per
// connection. Handlers speak the framed protocol of serve/protocol.hpp and
// call straight into the ServeEngine — concurrency control (batching,
// admission, shedding) lives there, not in the socket layer.
//
// Overload and failure containment:
//   - Every connection's frame I/O is deadline-bounded (read / write /
//     idle timeouts), so a slow-loris peer can never pin a handler thread.
//   - A max-connections cap with oldest-idle eviction bounds the handler
//     pool; EMFILE/ENFILE on accept() backs off briefly instead of
//     crashing the accept loop.
//   - A malformed frame is answered with kBadFrame and the connection is
//     closed; an I/O error (failpoint-injectable via serve.frame.read /
//     serve.frame.write / serve.frame.partial / serve.conn.read /
//     serve.conn.write / serve.accept.overload) tears down only its own
//     connection. The accept loop and every other client keep running.
//   - begin_drain()/drain() implement graceful shutdown: stop accepting,
//     answer new predicts with kShuttingDown, let accepted work finish
//     under a bound, then stop() closes what is left.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace ls::serve {

/// Listener configuration: set `unix_path` for AF_UNIX (preferred), or
/// leave it empty and set `tcp_port` (0 = kernel-assigned, see port())
/// for loopback TCP.
struct ServerOptions {
  std::string unix_path;
  int tcp_port = -1;
  int backlog = 64;
  /// Connection cap (0 = unlimited). At the cap, the oldest connection
  /// that is idle between frames is evicted to admit the newcomer; when
  /// every connection is mid-request the newcomer is rejected instead.
  std::size_t max_connections = 256;
  /// Whole-frame receive budget once a frame's first byte arrived
  /// (anti-slow-loris). 0 = unbounded.
  double read_timeout_ms = 5000.0;
  /// Whole-frame send budget (peer stops draining its buffer). 0 = off.
  double write_timeout_ms = 5000.0;
  /// How long a connection may sit between frames before it is closed.
  /// 0 = forever (the eviction policy still bounds the total).
  double idle_timeout_ms = 0.0;
  /// Pause after an fd-exhaustion accept() failure (EMFILE/ENFILE/...)
  /// before retrying, so the accept loop degrades instead of spinning.
  double accept_backoff_ms = 20.0;
};

/// Point-in-time socket-layer statistics (engine stats live in ServeStats).
struct ServerStats {
  std::int64_t connections_total = 0;
  std::int64_t frames_total = 0;
  std::int64_t evictions_total = 0;       ///< oldest-idle evicted at the cap
  std::int64_t rejected_total = 0;        ///< cap hit with no idle victim
  std::int64_t idle_timeouts_total = 0;
  std::int64_t read_timeouts_total = 0;
  std::int64_t write_timeouts_total = 0;
  std::int64_t accept_overload_total = 0; ///< EMFILE-class accept backoffs
  std::int64_t protocol_errors_total = 0;
  std::size_t connections_open = 0;
  bool draining = false;
  double drain_seconds = 0.0;             ///< duration of the last drain()
};

/// Threaded socket server over a ServeEngine. The engine must outlive the
/// server and is shared — in-process callers can keep using it directly.
class ServeServer {
 public:
  ServeServer(ServeEngine& engine, ServerOptions opts);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds, listens and spawns the accept thread. Throws ls::Error when
  /// the address cannot be bound.
  void start();

  /// Closes the listener and every open connection, then joins all
  /// threads. Idempotent; the destructor calls it.
  void stop();

  /// Blocks until a client sends kShutdownReq or another thread calls
  /// stop(). The caller still runs stop() afterwards to join threads.
  void wait();

  /// Enters the draining state: stops accepting new connections and
  /// answers further predict requests with kShuttingDown, while accepted
  /// work keeps flowing. Idempotent.
  void begin_drain();

  /// begin_drain(), then blocks until every in-flight frame is answered
  /// and the engine queue is empty, or `bound_ms` elapses. Returns true
  /// when fully quiesced within the bound. Call stop() afterwards.
  bool drain(double bound_ms);

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Socket-layer counters; engine counters come from ServeEngine::stats().
  ServerStats server_stats() const;

  /// Human-readable socket-layer stats block (appended to the engine's
  /// block in the kStatsReq reply).
  std::string stats_text() const;

  /// Actual TCP port after start() (useful with tcp_port = 0).
  int port() const { return port_; }

 private:
  /// Per-connection bookkeeping shared between its handler thread and the
  /// accept loop's governance (eviction victim selection).
  struct Conn {
    explicit Conn(int fd_) : fd(fd_) {}
    const int fd;
    std::atomic<std::int64_t> frames{0};
    std::atomic<std::int64_t> last_active_us{0};
    /// False while parked between frames — the eviction predicate.
    std::atomic<bool> in_request{false};
  };

  void accept_loop();
  void accept_overload_backoff();
  void handle_connection(std::shared_ptr<Conn> conn);
  /// Serves one decoded frame; returns false when the connection (or the
  /// whole server, for kShutdownReq) should wind down.
  bool handle_frame(int fd, const Frame& frame);
  void request_stop();
  /// Joins handler threads whose connections already finished. mu_ held.
  void reap_finished_locked();
  /// Admits `fd` under the connection cap, evicting the oldest idle
  /// connection if needed. Returns false when the newcomer was rejected.
  bool govern_and_register(int fd);

  ServeEngine* engine_;
  ServerOptions opts_;
  /// Atomic because stop() claims-and-closes it (exchange to -1) while the
  /// accept thread re-reads it each iteration.
  std::atomic<int> listen_fd_{-1};
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  mutable std::mutex mu_;          // guards conns_ / handlers_ / finished_
  std::condition_variable stop_cv_;
  std::vector<std::shared_ptr<Conn>> conns_;
  /// Live handler threads by id; finished handlers enqueue their id in
  /// finished_ and are joined on the next accept (or in stop()), so the
  /// thread table stays proportional to open connections, not to the
  /// connection churn since startup.
  std::map<std::thread::id, std::thread> handlers_;
  std::vector<std::thread::id> finished_;

  /// Frames currently being served (read done, response not yet written) —
  /// the drain() predicate, together with ServeEngine::idle().
  std::atomic<int> active_frames_{0};
  std::atomic<std::int64_t> connections_total_{0};
  std::atomic<std::int64_t> frames_total_{0};
  std::atomic<std::int64_t> evictions_total_{0};
  std::atomic<std::int64_t> rejected_total_{0};
  std::atomic<std::int64_t> idle_timeouts_total_{0};
  std::atomic<std::int64_t> read_timeouts_total_{0};
  std::atomic<std::int64_t> write_timeouts_total_{0};
  std::atomic<std::int64_t> accept_overload_total_{0};
  std::atomic<std::int64_t> protocol_errors_total_{0};
  std::atomic<double> drain_seconds_{0.0};
};

}  // namespace ls::serve
