#include "svm/batch_predict.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace ls {

BatchPredictor::BatchPredictor(const SvmModel& model,
                               const SchedulerOptions& sched,
                               index_t batch_rows)
    : model_(&model),
      batch_rows_(std::clamp<index_t>(batch_rows, 1, kMaxSmsvBatch)) {
  LS_CHECK(!model.support_vectors.empty(),
           "batch predictor needs at least one support vector");
  // Assemble the SV matrix in canonical COO, then schedule its layout like
  // any other data matrix.
  sv_norms_.reserve(model.support_vectors.size());
  for (const SparseVector& sv : model.support_vectors) {
    sv_norms_.push_back(sv.squared_norm());
  }
  const CooMatrix coo = support_vector_matrix(model);
  const LayoutScheduler scheduler(sched);
  decision_ = scheduler.decide(coo);
  sv_matrix_ = scheduler.materialize(coo, decision_);
}

std::vector<real_t> BatchPredictor::decision_values(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.cols() <= model_->num_features,
           "dataset has more features than the model");
  std::vector<real_t> out(static_cast<std::size_t>(ds.rows()));

  // Block-wise evaluation: gather `batch_rows_` test rows and hand each
  // block to the re-entrant span scorer, so the gather buffers stay
  // O(block) for arbitrarily large datasets.
  const index_t bmax = batch_rows_;
  std::vector<SparseVector> rows(static_cast<std::size_t>(bmax));
  std::vector<index_t> row_ids(static_cast<std::size_t>(bmax));
  for (index_t base = 0; base < ds.rows(); base += bmax) {
    const index_t b = std::min<index_t>(bmax, ds.rows() - base);
    for (index_t k = 0; k < b; ++k) {
      row_ids[static_cast<std::size_t>(k)] = base + k;
    }
    ds.X.gather_rows_batch(
        std::span<const index_t>(row_ids.data(), static_cast<std::size_t>(b)),
        std::span<SparseVector>(rows.data(), static_cast<std::size_t>(b)));
    decision_values(
        std::span<const SparseVector>(rows.data(), static_cast<std::size_t>(b)),
        std::span<real_t>(out.data() + base, static_cast<std::size_t>(b)));
  }
  return out;
}

void BatchPredictor::decision_values(std::span<const SparseVector> rows,
                                     std::span<real_t> out) const {
  LS_CHECK(rows.size() == out.size(),
           "decision_values: " << rows.size() << " rows but " << out.size()
                               << " output slots");
  const index_t d = model_->num_features;
  const index_t n_sv = sv_matrix_.rows();
  const index_t bmax = batch_rows_;
  const auto n = static_cast<index_t>(rows.size());

  // All scratch lives on this call's stack frame so concurrent callers
  // never share buffers (the serving engine relies on this re-entrancy).
  std::vector<real_t> workspace(
      static_cast<std::size_t>(d) * static_cast<std::size_t>(bmax), 0.0);
  std::vector<real_t> dots(static_cast<std::size_t>(n_sv) *
                           static_cast<std::size_t>(bmax));

  for (index_t base = 0; base < n; base += bmax) {
    const index_t b = std::min<index_t>(bmax, n - base);

    // Scatter the block interleaved (W[idx * b + k]); the dimension gate
    // runs first because an out-of-range index would land outside the
    // workspace.
    for (index_t k = 0; k < b; ++k) {
      const SparseVector& row = rows[static_cast<std::size_t>(base + k)];
      LS_CHECK(model_->accepts(row),
               "request row " << base + k << " has feature indices outside "
                              << "the model's width " << d);
      const auto idx = row.indices();
      const auto val = row.values();
      for (std::size_t e = 0; e < idx.size(); ++e) {
        workspace[static_cast<std::size_t>(idx[e] * b + k)] = val[e];
      }
    }

    const auto need_w =
        static_cast<std::size_t>(d) * static_cast<std::size_t>(b);
    const auto need_y =
        static_cast<std::size_t>(n_sv) * static_cast<std::size_t>(b);
    sv_matrix_.multiply_dense_batch(
        std::span<const real_t>(workspace.data(), need_w), b,
        std::span<real_t>(dots.data(), need_y));
    metrics::counter_add("svm.predict.batch_rows_total", b);

    for (index_t k = 0; k < b; ++k) {
      const SparseVector& row = rows[static_cast<std::size_t>(base + k)];
      const real_t norm_x = row.squared_norm();
      real_t sum = 0.0;
      for (index_t sv = 0; sv < n_sv; ++sv) {
        const auto ku = static_cast<std::size_t>(sv);
        sum += model_->coef[ku] *
               kernel_from_dot(model_->kernel,
                               dots[static_cast<std::size_t>(sv * b + k)],
                               sv_norms_[ku], norm_x);
      }
      out[static_cast<std::size_t>(base + k)] = sum - model_->rho;
      for (index_t c : row.indices()) {
        workspace[static_cast<std::size_t>(c * b + k)] = 0.0;
      }
    }
  }
}

std::vector<real_t> BatchPredictor::predict(const Dataset& ds) const {
  std::vector<real_t> values = decision_values(ds);
  for (real_t& v : values) v = v >= 0 ? 1.0 : -1.0;
  return values;
}

double BatchPredictor::accuracy(const Dataset& ds) const {
  const std::vector<real_t> pred = predict(ds);
  index_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == ds.y[i];
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace ls
