#include "svm/batch_predict.hpp"

#include "common/error.hpp"

namespace ls {

BatchPredictor::BatchPredictor(const SvmModel& model,
                               const SchedulerOptions& sched)
    : model_(&model) {
  LS_CHECK(!model.support_vectors.empty(),
           "batch predictor needs at least one support vector");
  // Assemble the SV matrix in canonical COO, then schedule its layout like
  // any other data matrix.
  std::vector<Triplet> triplets;
  sv_norms_.reserve(model.support_vectors.size());
  for (std::size_t k = 0; k < model.support_vectors.size(); ++k) {
    const SparseVector& sv = model.support_vectors[k];
    const auto idx = sv.indices();
    const auto val = sv.values();
    for (index_t e = 0; e < sv.nnz(); ++e) {
      triplets.push_back({static_cast<index_t>(k),
                          idx[static_cast<std::size_t>(e)],
                          val[static_cast<std::size_t>(e)]});
    }
    sv_norms_.push_back(sv.squared_norm());
  }
  const CooMatrix coo(static_cast<index_t>(model.support_vectors.size()),
                      model.num_features, std::move(triplets));
  const LayoutScheduler scheduler(sched);
  decision_ = scheduler.decide(coo);
  sv_matrix_ = scheduler.materialize(coo, decision_);
}

std::vector<real_t> BatchPredictor::decision_values(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.cols() <= model_->num_features,
           "dataset has more features than the model");
  const index_t n_sv = sv_matrix_.rows();

  std::vector<real_t> out(static_cast<std::size_t>(ds.rows()));
  std::vector<real_t> workspace(
      static_cast<std::size_t>(model_->num_features), 0.0);
  std::vector<real_t> dots(static_cast<std::size_t>(n_sv));
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    row.scatter(workspace);
    sv_matrix_.multiply_dense(workspace, dots);
    const real_t norm_x = row.squared_norm();
    real_t sum = 0.0;
    for (index_t k = 0; k < n_sv; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      sum += model_->coef[ku] * kernel_from_dot(model_->kernel, dots[ku],
                                                sv_norms_[ku], norm_x);
    }
    out[static_cast<std::size_t>(i)] = sum - model_->rho;
    row.unscatter(workspace);
  }
  return out;
}

std::vector<real_t> BatchPredictor::predict(const Dataset& ds) const {
  std::vector<real_t> values = decision_values(ds);
  for (real_t& v : values) v = v >= 0 ? 1.0 : -1.0;
  return values;
}

double BatchPredictor::accuracy(const Dataset& ds) const {
  const std::vector<real_t> pred = predict(ds);
  index_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == ds.y[i];
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace ls
