// Batch prediction with layout scheduling.
//
// SvmModel::predict evaluates one sample at a time with merge-join dots
// against every support vector — fine interactively, wasteful for bulk
// scoring. BatchPredictor materialises the support vectors as a matrix in
// a scheduled layout and evaluates a whole dataset with one SMSV per test
// row (scatter the row, multiply the SV matrix, map through the kernel,
// dot with the coefficients) — the training-time trick applied to
// inference.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "sched/scheduler.hpp"
#include "svm/model.hpp"

namespace ls {

/// Bulk scorer over a trained binary model.
class BatchPredictor {
 public:
  /// Materialises the model's support vectors under `sched`'s policy.
  /// The model must outlive the predictor. `batch_rows` test rows are
  /// evaluated per SMSV against the SV matrix (clamped to
  /// [1, kMaxSmsvBatch]); larger blocks amortise the SV-matrix streaming.
  explicit BatchPredictor(const SvmModel& model,
                          const SchedulerOptions& sched = {},
                          index_t batch_rows = 16);

  /// Decision values for every row of `ds` (same sign convention as
  /// SvmModel::decision).
  std::vector<real_t> decision_values(const Dataset& ds) const;

  /// Re-entrant bulk scorer over already-gathered sparse rows:
  /// out[k] = decision(rows[k]), with `out.size() == rows.size()`. Rows are
  /// evaluated in blocks of `batch_rows` via multiply_dense_batch, and each
  /// lane is bit-identical to the single-rhs path (PR 3 invariant), so the
  /// scores do not depend on how requests were batched. All scratch is
  /// local to the call — concurrent calls on one predictor are safe, which
  /// is how the serving engine's worker pool shares a predictor. Throws
  /// ls::Error when a row's indices exceed the model's feature width (the
  /// dense scatter would write out of bounds otherwise).
  void decision_values(std::span<const SparseVector> rows,
                       std::span<real_t> out) const;

  /// Predicted labels (+1 / -1) for every row of `ds`.
  std::vector<real_t> predict(const Dataset& ds) const;

  /// Accuracy against ds.y.
  double accuracy(const Dataset& ds) const;

  /// The layout chosen for the support-vector matrix.
  Format layout() const { return decision_.format; }

 private:
  const SvmModel* model_;
  ScheduleDecision decision_;
  AnyMatrix sv_matrix_;             // #SV x num_features
  std::vector<real_t> sv_norms_;    // ||sv_i||^2 for the Gaussian kernel
  index_t batch_rows_ = 16;         // test rows per batched SMSV
};

}  // namespace ls
