#include "svm/cache.hpp"

#include <algorithm>
#include <new>
#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"

namespace ls {

KernelCache::KernelCache(RowKernelSource& source, std::size_t budget_bytes)
    : source_(&source) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(source.num_rows()) * sizeof(real_t);
  // At least two rows must be resident: SMO holds K_high and K_low spans
  // simultaneously, and eviction must never recycle the other live row.
  max_rows_ = row_bytes > 0 ? std::max<std::size_t>(2, budget_bytes / row_bytes)
                            : 2;
}

KernelCache::~KernelCache() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }
}

void KernelCache::insert_front(Entry entry) {
  lru_.push_front(std::move(entry));
  map_[lru_.front().row] = lru_.begin();
  resident_.store(map_.size(), std::memory_order_release);
}

void KernelCache::evict_to_capacity() {
  while (map_.size() > max_rows_) {
    const index_t victim = lru_.back().row;
    if (unused_prefetch_.erase(victim) > 0) {
      pipeline_misses_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("svm.cache.pipeline_misses_total");
    }
    map_.erase(victim);
    lru_.pop_back();
  }
  resident_.store(map_.size(), std::memory_order_release);
}

void KernelCache::wait_idle_and_drain(std::unique_lock<std::mutex>& lk) {
  cv_.wait(lk, [&] { return !worker_busy_; });
  if (done_rows_.empty()) return;
  const auto m = static_cast<std::size_t>(source_->num_rows());
  for (std::size_t k = 0; k < done_rows_.size(); ++k) {
    const index_t row = done_rows_[k];
    if (map_.contains(row)) continue;  // raced with a synchronous miss
    Entry entry;
    entry.row = row;
    const real_t* src = done_buf_.data() + k * m;
    entry.data.assign(src, src + m);
    insert_front(std::move(entry));
    unused_prefetch_.insert(row);
  }
  done_rows_.clear();
  done_buf_.clear();
  evict_to_capacity();
}

std::span<const real_t> KernelCache::get_row(index_t i) {
  const auto it = map_.find(i);
  if (it != map_.end()) {
    hits_.fetch_add(1, std::memory_order_release);
    if (unused_prefetch_.erase(i) > 0) {
      pipeline_hits_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("svm.cache.pipeline_hits_total");
    }
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data;
  }

  if (worker_.joinable()) {
    // The requested row may be in flight, and even if it is not, the worker
    // owns the kernel engine's scratch buffers until it finishes — a
    // synchronous compute_row must wait either way.
    std::unique_lock<std::mutex> lk(mu_);
    wait_idle_and_drain(lk);
    const auto again = map_.find(i);
    if (again != map_.end()) {
      hits_.fetch_add(1, std::memory_order_release);
      if (unused_prefetch_.erase(i) > 0) {
        pipeline_hits_.fetch_add(1, std::memory_order_release);
        metrics::counter_add("svm.cache.pipeline_hits_total");
      }
      lru_.splice(lru_.begin(), lru_, again->second);
      return again->second->data;
    }
  }

  misses_.fetch_add(1, std::memory_order_release);
  Entry entry;
  if (map_.size() >= max_rows_) {
    // Recycle the least-recently-used buffer instead of reallocating.
    entry = std::move(lru_.back());
    if (unused_prefetch_.erase(entry.row) > 0) {
      pipeline_misses_.fetch_add(1, std::memory_order_release);
      metrics::counter_add("svm.cache.pipeline_misses_total");
    }
    map_.erase(entry.row);
    lru_.pop_back();
    resident_.store(map_.size(), std::memory_order_release);
  } else {
    try {
      LS_FAILPOINT("svm.cache.alloc");
      entry.data.resize(static_cast<std::size_t>(source_->num_rows()));
    } catch (const std::bad_alloc&) {
      // Memory pressure: stop growing — freeze the budget at the resident
      // set and recycle the LRU buffer instead. Training continues with a
      // smaller cache (more recomputes) rather than dying. Below two
      // resident rows there is nothing safe to recycle (the caller may
      // hold a live span to the single resident row), so propagate.
      if (lru_.size() < 2) throw;
      max_rows_ = std::max<std::size_t>(2, map_.size());
      entry = std::move(lru_.back());
      if (unused_prefetch_.erase(entry.row) > 0) {
        pipeline_misses_.fetch_add(1, std::memory_order_release);
        metrics::counter_add("svm.cache.pipeline_misses_total");
      }
      map_.erase(entry.row);
      lru_.pop_back();
      resident_.store(map_.size(), std::memory_order_release);
    }
  }
  entry.row = i;
  source_->compute_row(i, entry.data);
  insert_front(std::move(entry));
  return lru_.front().data;
}

void KernelCache::prefetch(std::span<const index_t> rows) {
  if (rows.empty() || max_rows_ <= 2) return;

  std::unique_lock<std::mutex> lk(mu_);
  if (worker_busy_) return;  // pipeline full: this generation is skipped
  if (!done_rows_.empty()) wait_idle_and_drain(lk);  // idle, so no blocking

  // Candidate filter: not resident, not duplicated, and never more than the
  // cache headroom (capacity minus the two live SMO rows).
  const std::size_t headroom = max_rows_ - 2;
  req_.clear();
  for (index_t row : rows) {
    if (req_.size() >= headroom) break;
    if (map_.contains(row)) continue;
    if (std::find(req_.begin(), req_.end(), row) != req_.end()) continue;
    req_.push_back(row);
  }
  if (req_.empty()) return;

  prefetched_rows_.fetch_add(static_cast<std::int64_t>(req_.size()),
                             std::memory_order_release);
  metrics::counter_add("svm.cache.prefetch_rows_total",
                       static_cast<std::int64_t>(req_.size()));
  worker_busy_ = true;
  if (!worker_.joinable()) {
    worker_ = std::thread([this] { worker_loop(); });
  }
  lk.unlock();
  cv_.notify_all();
}

void KernelCache::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || !req_.empty(); });
    if (stop_) return;
    std::vector<index_t> req = std::move(req_);
    req_.clear();
    lk.unlock();

    std::vector<index_t> done;
    std::vector<real_t> buf;
    try {
      buf.resize(req.size() * static_cast<std::size_t>(source_->num_rows()));
      source_->compute_rows(req, buf);
      done = std::move(req);
    } catch (...) {
      // Prefetch is best effort; a failed batch just means more misses.
      done.clear();
      buf.clear();
    }

    lk.lock();
    done_rows_ = std::move(done);
    done_buf_ = std::move(buf);
    worker_busy_ = false;
    cv_.notify_all();
  }
}

}  // namespace ls
