#include "svm/cache.hpp"

#include <algorithm>

namespace ls {

KernelCache::KernelCache(RowKernelSource& source, std::size_t budget_bytes)
    : source_(&source) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(source.num_rows()) * sizeof(real_t);
  // At least two rows must be resident: SMO holds K_high and K_low spans
  // simultaneously, and eviction must never recycle the other live row.
  max_rows_ = row_bytes > 0 ? std::max<std::size_t>(2, budget_bytes / row_bytes)
                            : 2;
}

std::span<const real_t> KernelCache::get_row(index_t i) {
  const auto it = map_.find(i);
  if (it != map_.end()) {
    ++hits_;
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data;
  }

  ++misses_;
  Entry entry;
  if (map_.size() >= max_rows_) {
    // Recycle the least-recently-used buffer instead of reallocating.
    entry = std::move(lru_.back());
    map_.erase(entry.row);
    lru_.pop_back();
  } else {
    entry.data.resize(static_cast<std::size_t>(source_->num_rows()));
  }
  entry.row = i;
  source_->compute_row(i, entry.data);
  lru_.push_front(std::move(entry));
  map_[i] = lru_.begin();
  return lru_.front().data;
}

}  // namespace ls
