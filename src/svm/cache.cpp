#include "svm/cache.hpp"

#include <algorithm>
#include <new>

#include "common/failpoint.hpp"

namespace ls {

KernelCache::KernelCache(RowKernelSource& source, std::size_t budget_bytes)
    : source_(&source) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(source.num_rows()) * sizeof(real_t);
  // At least two rows must be resident: SMO holds K_high and K_low spans
  // simultaneously, and eviction must never recycle the other live row.
  max_rows_ = row_bytes > 0 ? std::max<std::size_t>(2, budget_bytes / row_bytes)
                            : 2;
}

std::span<const real_t> KernelCache::get_row(index_t i) {
  const auto it = map_.find(i);
  if (it != map_.end()) {
    ++hits_;
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data;
  }

  ++misses_;
  Entry entry;
  if (map_.size() >= max_rows_) {
    // Recycle the least-recently-used buffer instead of reallocating.
    entry = std::move(lru_.back());
    map_.erase(entry.row);
    lru_.pop_back();
  } else {
    try {
      LS_FAILPOINT("svm.cache.alloc");
      entry.data.resize(static_cast<std::size_t>(source_->num_rows()));
    } catch (const std::bad_alloc&) {
      // Memory pressure: stop growing — freeze the budget at the resident
      // set and recycle the LRU buffer instead. Training continues with a
      // smaller cache (more recomputes) rather than dying. Below two
      // resident rows there is nothing safe to recycle (the caller may
      // hold a live span to the single resident row), so propagate.
      if (lru_.size() < 2) throw;
      max_rows_ = std::max<std::size_t>(2, map_.size());
      entry = std::move(lru_.back());
      map_.erase(entry.row);
      lru_.pop_back();
    }
  }
  entry.row = i;
  source_->compute_row(i, entry.data);
  lru_.push_front(std::move(entry));
  map_[i] = lru_.begin();
  return lru_.front().data;
}

}  // namespace ls
