// LRU kernel-row cache, equivalent to LIBSVM's Cache class, plus an
// optional double-buffered prefetch pipeline.
//
// SMO revisits a small working set of rows many times (the same violating
// pairs recur as alpha values bounce along the box constraints), so caching
// kernel rows converts most row requests into O(1) hits. The ablation bench
// bench/ablation_kernel_cache measures the effect.
//
// The pipeline adds a second buffer: while the solver consumes the rows of
// iteration t, a worker thread computes the *predicted* rows of iteration
// t+1 through the engine's batched path (one matrix stream for the whole
// candidate set). The solver and the worker never run the kernel engine
// concurrently — a cache miss first waits for any in-flight prefetch to
// finish — so the engine's scratch buffers need no locking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "svm/kernel_engine.hpp"

namespace ls {

/// Byte-budgeted LRU cache of kernel rows on top of a RowKernelSource.
class KernelCache {
 public:
  /// `source` must outlive the cache. `budget_bytes` bounds the total size
  /// of cached rows (at least one row is always cacheable).
  KernelCache(RowKernelSource& source, std::size_t budget_bytes);

  /// Joins the prefetch worker, if one was ever started.
  ~KernelCache();

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  /// Returns kernel row i, computing it on miss. The span stays valid until
  /// the next get_row call (eviction may recycle the buffer).
  std::span<const real_t> get_row(index_t i);

  /// Asks the worker thread to compute the given candidate rows in the
  /// background (batched). Best effort: rows already resident are skipped,
  /// the count is clamped to the cache headroom (capacity minus the two
  /// live SMO rows), and the call is a no-op while a previous prefetch is
  /// still in flight. Results are folded into the LRU on the next get_row.
  void prefetch(std::span<const index_t> rows);

  real_t diagonal(index_t i) const { return source_->diagonal(i); }
  index_t num_rows() const { return source_->num_rows(); }

  // Statistics accessors are safe to call from any thread while the solver
  // and the prefetch worker run: every counter update is a release store
  // and every read here an acquire load, so a snapshot (e.g. the serving
  // engine's stats endpoint) observes a consistent monotone value instead
  // of racing a plain increment.
  std::int64_t hits() const { return hits_.load(std::memory_order_acquire); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_acquire);
  }
  double hit_rate() const {
    const double total = static_cast<double>(hits() + misses());
    return total > 0 ? static_cast<double>(hits()) / total : 0.0;
  }

  /// Rows handed to the prefetch worker so far.
  std::int64_t prefetched_rows() const {
    return prefetched_rows_.load(std::memory_order_acquire);
  }
  /// Prefetched rows later served from cache (the pipeline paid off).
  std::int64_t pipeline_hits() const {
    return pipeline_hits_.load(std::memory_order_acquire);
  }
  /// Prefetched rows evicted before anyone asked for them (wasted work).
  std::int64_t pipeline_misses() const {
    return pipeline_misses_.load(std::memory_order_acquire);
  }

  /// Rows currently resident. Mirrors map_.size() through an atomic so
  /// off-thread snapshots never touch the (unlocked) map itself.
  std::size_t resident_rows() const {
    return resident_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    index_t row;
    std::vector<real_t> data;
  };

  void worker_loop();
  /// Blocks until no prefetch is in flight, then folds finished rows into
  /// the LRU structure. Must be called with mu_ held.
  void wait_idle_and_drain(std::unique_lock<std::mutex>& lk);
  void insert_front(Entry entry);
  void evict_to_capacity();

  RowKernelSource* source_;
  std::size_t max_rows_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<index_t, std::list<Entry>::iterator> map_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::size_t> resident_{0};  // == map_.size(), for snapshots

  // Pipeline state. mu_ guards req_/done_*/worker_busy_/stop_; the LRU
  // structures above are touched only by the caller thread.
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread worker_;
  bool worker_busy_ = false;
  bool stop_ = false;
  std::vector<index_t> req_;        // rows the worker should compute next
  std::vector<index_t> done_rows_;  // rows the worker finished
  std::vector<real_t> done_buf_;    // their kernel rows, concatenated
  std::unordered_set<index_t> unused_prefetch_;  // resident but never hit
  std::atomic<std::int64_t> prefetched_rows_{0};
  std::atomic<std::int64_t> pipeline_hits_{0};
  std::atomic<std::int64_t> pipeline_misses_{0};
};

}  // namespace ls
