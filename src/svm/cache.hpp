// LRU kernel-row cache, equivalent to LIBSVM's Cache class.
//
// SMO revisits a small working set of rows many times (the same violating
// pairs recur as alpha values bounce along the box constraints), so caching
// kernel rows converts most row requests into O(1) hits. The ablation bench
// bench/ablation_kernel_cache measures the effect.
#pragma once

#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "svm/kernel_engine.hpp"

namespace ls {

/// Byte-budgeted LRU cache of kernel rows on top of a RowKernelSource.
class KernelCache {
 public:
  /// `source` must outlive the cache. `budget_bytes` bounds the total size
  /// of cached rows (at least one row is always cacheable).
  KernelCache(RowKernelSource& source, std::size_t budget_bytes);

  /// Returns kernel row i, computing it on miss. The span stays valid until
  /// the next get_row call (eviction may recycle the buffer).
  std::span<const real_t> get_row(index_t i);

  real_t diagonal(index_t i) const { return source_->diagonal(i); }
  index_t num_rows() const { return source_->num_rows(); }

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  double hit_rate() const {
    const double total = static_cast<double>(hits_ + misses_);
    return total > 0 ? static_cast<double>(hits_) / total : 0.0;
  }

  /// Rows currently resident.
  std::size_t resident_rows() const { return map_.size(); }

 private:
  struct Entry {
    index_t row;
    std::vector<real_t> data;
  };

  RowKernelSource* source_;
  std::size_t max_rows_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<index_t, std::list<Entry>::iterator> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace ls
