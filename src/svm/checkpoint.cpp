#include "svm/checkpoint.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"

namespace ls {

namespace {

constexpr const char* kCheckpointMagic = "ls_smo_checkpoint v1";

void write_vector(std::ostream& out, const char* name,
                  const std::vector<real_t>& v) {
  out << name;
  for (real_t x : v) out << ' ' << x;
  out << '\n';
}

std::vector<real_t> read_vector(std::istream& in, const char* name,
                                std::size_t n) {
  std::string line;
  LS_CHECK(std::getline(in, line), "checkpoint truncated at " << name);
  std::istringstream ls(line);
  std::string key;
  LS_CHECK(static_cast<bool>(ls >> key) && key == name,
           "bad checkpoint field: expected '" << name << "'");
  std::vector<real_t> v;
  v.reserve(n);
  real_t x = 0.0;
  while (ls >> x) v.push_back(x);
  LS_CHECK(v.size() == n, "checkpoint vector '"
                              << name << "' has " << v.size()
                              << " entries, expected " << n);
  return v;
}

}  // namespace

void save_smo_checkpoint(const std::string& path, const SmoCheckpoint& ck) {
  LS_FAILPOINT("svm.checkpoint.save");
  LS_CHECK(ck.alpha.size() == ck.f.size(),
           "inconsistent checkpoint: alpha/f size mismatch");
  atomic_write_file(path, [&](std::ostream& out) {
    out << kCheckpointMagic << '\n';
    out << "iteration " << ck.iteration << '\n';
    out << "n " << ck.alpha.size() << '\n';
    write_vector(out, "alpha", ck.alpha);
    write_vector(out, "f", ck.f);
  });
}

SmoCheckpoint load_smo_checkpoint(const std::string& path) {
  std::istringstream in(read_file_verified(path));
  std::string line;
  LS_CHECK(std::getline(in, line) && line == kCheckpointMagic,
           "bad checkpoint magic in " << path);
  SmoCheckpoint ck;
  std::string key;
  std::size_t n = 0;
  LS_CHECK(std::getline(in, line), "checkpoint truncated at iteration");
  {
    std::istringstream ls(line);
    LS_CHECK(static_cast<bool>(ls >> key >> ck.iteration) &&
                 key == "iteration" && ck.iteration >= 0,
             "bad checkpoint iteration line: '" << line << "'");
  }
  LS_CHECK(std::getline(in, line), "checkpoint truncated at n");
  {
    std::istringstream ls(line);
    LS_CHECK(static_cast<bool>(ls >> key >> n) && key == "n",
             "bad checkpoint n line: '" << line << "'");
  }
  ck.alpha = read_vector(in, "alpha", n);
  ck.f = read_vector(in, "f", n);
  return ck;
}

std::optional<SmoCheckpoint> try_load_smo_checkpoint(const std::string& path,
                                                     index_t expected_n) {
  if (!file_exists(path)) return std::nullopt;
  try {
    SmoCheckpoint ck = load_smo_checkpoint(path);
    if (expected_n > 0 &&
        ck.alpha.size() != static_cast<std::size_t>(expected_n)) {
      return std::nullopt;
    }
    return ck;
  } catch (const Error&) {
    // Corrupt snapshot (crashed writer predating atomic saves, bit rot):
    // resuming from garbage is worse than restarting.
    return std::nullopt;
  }
}

void remove_checkpoint(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace ls
