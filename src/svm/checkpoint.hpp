// Durable SMO checkpoints: atomic, CRC-protected snapshot files that let an
// interrupted training run restart from its last saved iteration instead of
// from scratch.
//
// The trainer facade (svm/trainer.hpp) drives this automatically when
// SvmParams::checkpoint_path is set: it resumes from an existing valid
// snapshot, saves a fresh one every checkpoint_interval iterations, and
// removes the file once training completes. A corrupt or mismatched
// snapshot is treated as absent (training restarts cleanly) — a stale file
// must never be able to poison a new run.
#pragma once

#include <optional>
#include <string>

#include "svm/smo.hpp"

namespace ls {

/// Writes `ck` to `path` atomically (tmp + fsync + rename, CRC footer).
void save_smo_checkpoint(const std::string& path, const SmoCheckpoint& ck);

/// Reads a snapshot; throws ls::Error on missing or corrupt files.
SmoCheckpoint load_smo_checkpoint(const std::string& path);

/// Lenient load for resume paths: returns nullopt when the file is
/// missing, truncated, corrupt, or sized for a different problem
/// (`expected_n` > 0 enforces the sample count).
std::optional<SmoCheckpoint> try_load_smo_checkpoint(const std::string& path,
                                                     index_t expected_n = 0);

/// Removes a checkpoint file if present (end-of-training cleanup).
void remove_checkpoint(const std::string& path);

}  // namespace ls
