#include "svm/dcsvm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ls {

namespace {

/// Squared distance between a sparse row and a dense centroid:
/// ||x||^2 - 2 x.c + ||c||^2.
double distance_sq(const SparseVector& x, const std::vector<real_t>& centroid,
                   double centroid_norm_sq) {
  return x.squared_norm() - 2.0 * x.dot_dense(centroid) + centroid_norm_sq;
}

std::vector<std::vector<index_t>> random_partition(index_t rows,
                                                   index_t parts, Rng& rng) {
  std::vector<index_t> ids(static_cast<std::size_t>(rows));
  std::iota(ids.begin(), ids.end(), index_t{0});
  shuffle(ids.begin(), ids.end(), rng);
  std::vector<std::vector<index_t>> partitions(
      static_cast<std::size_t>(parts));
  for (std::size_t k = 0; k < ids.size(); ++k) {
    partitions[k % static_cast<std::size_t>(parts)].push_back(ids[k]);
  }
  return partitions;
}

struct ClusterResult {
  std::vector<std::vector<index_t>> partitions;
  std::vector<std::vector<real_t>> centroids;
};

ClusterResult kmeans_partition(const Dataset& ds, index_t parts,
                               index_t iterations, Rng& rng) {
  const auto n_features = static_cast<std::size_t>(ds.cols());
  const index_t rows = ds.rows();

  // Gather all rows once (batched: one format dispatch, parallel rows).
  std::vector<SparseVector> samples(static_cast<std::size_t>(rows));
  std::vector<index_t> all_rows(static_cast<std::size_t>(rows));
  std::iota(all_rows.begin(), all_rows.end(), index_t{0});
  ds.X.gather_rows_batch(all_rows, samples);

  // Init: centroids from random distinct samples.
  ClusterResult result;
  result.centroids.assign(static_cast<std::size_t>(parts),
                          std::vector<real_t>(n_features, 0.0));
  std::vector<index_t> seeds(static_cast<std::size_t>(rows));
  std::iota(seeds.begin(), seeds.end(), index_t{0});
  shuffle(seeds.begin(), seeds.end(), rng);
  for (index_t p = 0; p < parts; ++p) {
    samples[static_cast<std::size_t>(seeds[static_cast<std::size_t>(p)])]
        .scatter(result.centroids[static_cast<std::size_t>(p)]);
  }

  std::vector<index_t> assignment(static_cast<std::size_t>(rows), 0);
  for (index_t it = 0; it < iterations; ++it) {
    // Assign.
    std::vector<double> centroid_norms(static_cast<std::size_t>(parts));
    for (index_t p = 0; p < parts; ++p) {
      double s = 0.0;
      for (real_t v : result.centroids[static_cast<std::size_t>(p)]) {
        s += v * v;
      }
      centroid_norms[static_cast<std::size_t>(p)] = s;
    }
    bool changed = false;
    for (index_t i = 0; i < rows; ++i) {
      double best = std::numeric_limits<double>::infinity();
      index_t best_p = 0;
      for (index_t p = 0; p < parts; ++p) {
        const double d = distance_sq(
            samples[static_cast<std::size_t>(i)],
            result.centroids[static_cast<std::size_t>(p)],
            centroid_norms[static_cast<std::size_t>(p)]);
        if (d < best) {
          best = d;
          best_p = p;
        }
      }
      if (assignment[static_cast<std::size_t>(i)] != best_p) {
        assignment[static_cast<std::size_t>(i)] = best_p;
        changed = true;
      }
    }
    if (!changed && it > 0) break;

    // Update.
    for (auto& c : result.centroids) std::fill(c.begin(), c.end(), 0.0);
    std::vector<index_t> counts(static_cast<std::size_t>(parts), 0);
    for (index_t i = 0; i < rows; ++i) {
      const auto p = static_cast<std::size_t>(
          assignment[static_cast<std::size_t>(i)]);
      const SparseVector& x = samples[static_cast<std::size_t>(i)];
      const auto idx = x.indices();
      const auto val = x.values();
      for (index_t e = 0; e < x.nnz(); ++e) {
        result.centroids[p][static_cast<std::size_t>(
            idx[static_cast<std::size_t>(e)])] +=
            val[static_cast<std::size_t>(e)];
      }
      ++counts[p];
    }
    for (index_t p = 0; p < parts; ++p) {
      const auto pu = static_cast<std::size_t>(p);
      if (counts[pu] == 0) {
        // Re-seed empty clusters from a random sample.
        samples[static_cast<std::size_t>(
                    rng.uniform_int(0, rows - 1))]
            .scatter(result.centroids[pu]);
        continue;
      }
      const real_t inv = 1.0 / static_cast<real_t>(counts[pu]);
      for (real_t& v : result.centroids[pu]) v *= inv;
    }
  }

  result.partitions.assign(static_cast<std::size_t>(parts), {});
  for (index_t i = 0; i < rows; ++i) {
    result.partitions[static_cast<std::size_t>(
                          assignment[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
  return result;
}

/// Centroid of a subset (used for the random strategy's routing).
std::vector<real_t> subset_centroid(const Dataset& ds,
                                    const std::vector<index_t>& ids) {
  std::vector<real_t> centroid(static_cast<std::size_t>(ds.cols()), 0.0);
  std::vector<SparseVector> rows(ids.size());
  ds.X.gather_rows_batch(std::span<const index_t>(ids.data(), ids.size()),
                         rows);
  for (const SparseVector& row : rows) {
    const auto idx = row.indices();
    const auto val = row.values();
    for (index_t e = 0; e < row.nnz(); ++e) {
      centroid[static_cast<std::size_t>(idx[static_cast<std::size_t>(e)])] +=
          val[static_cast<std::size_t>(e)];
    }
  }
  if (!ids.empty()) {
    const real_t inv = 1.0 / static_cast<real_t>(ids.size());
    for (real_t& v : centroid) v *= inv;
  }
  return centroid;
}

/// A partition can end up single-class (clustering often aligns with the
/// label structure); such partitions get a constant-prediction model.
bool single_class(const Dataset& part) {
  for (real_t y : part.y) {
    if (y != part.y.front()) return false;
  }
  return true;
}

SvmModel constant_model(const Dataset& part) {
  SvmModel model;
  model.num_features = part.cols();
  // No support vectors: decision(x) = -rho; pick rho's sign to match.
  model.rho = part.y.front() > 0 ? -1.0 : 1.0;
  return model;
}

}  // namespace

index_t DcSvmModel::route(const SparseVector& x) const {
  LS_CHECK(!centroids.empty(), "routing on an untrained DC-SVM model");
  double best = std::numeric_limits<double>::infinity();
  index_t best_p = 0;
  for (std::size_t p = 0; p < centroids.size(); ++p) {
    double norm_sq = 0.0;
    for (real_t v : centroids[p]) norm_sq += v * v;
    const double d = distance_sq(x, centroids[p], norm_sq);
    if (d < best) {
      best = d;
      best_p = static_cast<index_t>(p);
    }
  }
  return best_p;
}

double DcSvmModel::accuracy(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.rows() > 0, "cannot score an empty dataset");
  index_t correct = 0;
  // Block-wise gather: one format dispatch per block instead of per row.
  const index_t block = kMaxSmsvBatch;
  std::vector<SparseVector> rows(static_cast<std::size_t>(block));
  std::vector<index_t> row_ids(static_cast<std::size_t>(block));
  for (index_t base = 0; base < ds.rows(); base += block) {
    const index_t b = std::min<index_t>(block, ds.rows() - base);
    for (index_t k = 0; k < b; ++k) {
      row_ids[static_cast<std::size_t>(k)] = base + k;
    }
    ds.X.gather_rows_batch(
        std::span<const index_t>(row_ids.data(), static_cast<std::size_t>(b)),
        std::span<SparseVector>(rows.data(), static_cast<std::size_t>(b)));
    for (index_t k = 0; k < b; ++k) {
      if (predict(rows[static_cast<std::size_t>(k)]) ==
          ds.y[static_cast<std::size_t>(base + k)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(ds.rows());
}

DcSvmResult train_dc_svm(const Dataset& ds, const DcSvmOptions& options) {
  ds.validate();
  LS_CHECK(options.partitions >= 1, "need at least one partition");
  LS_CHECK(ds.rows() >= options.partitions,
           "fewer samples than partitions");
  Rng rng(options.seed);

  std::vector<std::vector<index_t>> partitions;
  DcSvmResult result;
  if (options.strategy == PartitionStrategy::kCluster) {
    ClusterResult clusters =
        kmeans_partition(ds, options.partitions, options.kmeans_iterations,
                         rng);
    partitions = std::move(clusters.partitions);
    result.model.centroids = std::move(clusters.centroids);
  } else {
    partitions = random_partition(ds.rows(), options.partitions, rng);
    for (const auto& ids : partitions) {
      result.model.centroids.push_back(subset_centroid(ds, ids));
    }
  }

  for (std::size_t p = 0; p < partitions.size(); ++p) {
    const auto& ids = partitions[p];
    result.partition_sizes.push_back(static_cast<index_t>(ids.size()));
    if (ids.empty()) {
      // Empty cluster: a dummy model that never wins routing in practice.
      result.model.locals.push_back(SvmModel{});
      result.model.locals.back().num_features = ds.cols();
      result.partition_formats.push_back(Format::kCSR);
      continue;
    }
    const Dataset part =
        ds.subset(ids, ".part" + std::to_string(p));
    if (single_class(part)) {
      result.model.locals.push_back(constant_model(part));
      result.partition_formats.push_back(Format::kCSR);
      continue;
    }
    TrainResult tr = train_adaptive(part, options.params, options.sched);
    result.total_iterations += tr.stats.iterations;
    result.total_seconds += tr.total_seconds;
    result.critical_seconds = std::max(result.critical_seconds,
                                       tr.total_seconds);
    result.partition_formats.push_back(tr.decision.format);
    result.model.locals.push_back(std::move(tr.model));
  }
  return result;
}

}  // namespace ls
