// Divide-and-conquer SVM with per-partition layout scheduling.
//
// The paper's related-work section positions its layout scheduling as a
// plug-in for CA-SVM ("a general divide-and-conquer approach for
// distributed systems. The techniques of this paper can be added to CA-SVM
// for better performance"). This module implements that combination on a
// simulated cluster: the training set is partitioned (randomly or by
// k-means clustering), each partition trains an independent binary SVM
// whose storage format is scheduled from *that partition's* statistics,
// and prediction routes each query to its nearest partition's local model
// (CA-SVM's communication-free early-prediction strategy).
//
// Because partitions differ in sparsity profile, different partitions can
// legitimately end up with different layouts — the per-partition decisions
// are reported so the effect is visible.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "svm/trainer.hpp"

namespace ls {

/// How training rows are assigned to partitions.
enum class PartitionStrategy {
  kRandom,   ///< uniform shuffle split (CA-SVM's baseline)
  kCluster,  ///< k-means on the feature vectors (CA-SVM's balanced k-means)
};

/// Divide-and-conquer training configuration.
struct DcSvmOptions {
  index_t partitions = 4;
  PartitionStrategy strategy = PartitionStrategy::kCluster;
  index_t kmeans_iterations = 8;
  SvmParams params;
  SchedulerOptions sched;
  std::uint64_t seed = 31337;
};

/// Trained divide-and-conquer model.
struct DcSvmModel {
  std::vector<SvmModel> locals;
  /// Dense centroid per partition (size = num features); prediction goes to
  /// the nearest centroid's local model.
  std::vector<std::vector<real_t>> centroids;

  /// Index of the partition a sample routes to.
  index_t route(const SparseVector& x) const;

  /// Predicted label via the routed local model.
  real_t predict(const SparseVector& x) const {
    return locals[static_cast<std::size_t>(route(x))].predict(x);
  }

  /// Fraction of correctly classified rows of `ds`.
  double accuracy(const Dataset& ds) const;
};

/// Per-run report.
struct DcSvmResult {
  DcSvmModel model;
  std::vector<Format> partition_formats;  ///< layout chosen per partition
  std::vector<index_t> partition_sizes;
  index_t total_iterations = 0;
  double total_seconds = 0.0;     ///< sum of per-partition times (1 node)
  double critical_seconds = 0.0;  ///< max per-partition time (P nodes)
};

/// Trains the divide-and-conquer ensemble. Labels must be +-1.
DcSvmResult train_dc_svm(const Dataset& ds, const DcSvmOptions& options);

}  // namespace ls
