#include "svm/grid_search.hpp"

#include "common/error.hpp"

namespace ls {

GridSearchResult grid_search(const Dataset& ds, const SvmParams& base,
                             const GridSearchOptions& options) {
  ds.validate();
  LS_CHECK(!options.c_values.empty(), "empty C grid");
  LS_CHECK(options.folds >= 2, "grid search needs at least 2 folds");

  const bool uses_gamma = base.kernel.type != KernelType::kLinear;
  std::vector<real_t> gammas =
      uses_gamma ? options.gamma_values : std::vector<real_t>{base.kernel.gamma};
  LS_CHECK(!gammas.empty(), "empty gamma grid");

  GridSearchResult result;
  result.best_accuracy = -1.0;
  for (real_t c : options.c_values) {
    LS_CHECK(c > 0, "grid C values must be positive");
    for (real_t gamma : gammas) {
      SvmParams params = base;
      params.c = c;
      params.kernel.gamma = gamma;
      const double accuracy =
          cross_validate(ds, params, options.folds, options.seed);
      result.evaluated.push_back({c, gamma, accuracy});
      if (accuracy > result.best_accuracy) {
        result.best_accuracy = accuracy;
        result.best_params = params;
      }
    }
  }
  return result;
}

}  // namespace ls
