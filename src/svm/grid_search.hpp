// Cross-validated (C, gamma) grid search — the classical SVM counterpart
// of the paper's Section IV hyper-parameter tuning (LIBSVM ships the same
// procedure as grid.py). Each candidate is trained with runtime layout
// scheduling, so the data-layout decision is made once per fold, not once
// per grid point (the matrix does not change).
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "svm/trainer.hpp"

namespace ls {

/// Search configuration.
struct GridSearchOptions {
  std::vector<real_t> c_values = {0.1, 1.0, 10.0, 100.0};
  /// Gamma values; ignored for the linear kernel.
  std::vector<real_t> gamma_values = {0.01, 0.1, 1.0};
  int folds = 3;
  std::uint64_t seed = 4242;
};

/// One evaluated grid point.
struct GridPoint {
  real_t c = 1.0;
  real_t gamma = 1.0;
  double cv_accuracy = 0.0;
};

/// Search outcome.
struct GridSearchResult {
  SvmParams best_params;
  double best_accuracy = 0.0;
  std::vector<GridPoint> evaluated;  ///< every grid point, search order
};

/// Exhaustive cross-validated grid search over C (and gamma for nonlinear
/// kernels). `base` supplies everything not being searched.
GridSearchResult grid_search(const Dataset& ds, const SvmParams& base,
                             const GridSearchOptions& options = {});

}  // namespace ls
