// The standard SVM kernel functions of the paper's Table I.
//
// All four kernels factor through the inner product X_i . X_j (the Gaussian
// additionally needs the row norms), so one SMSV per selected row yields a
// whole kernel row — this is the structure the data-layout scheduling
// exploits.
#pragma once

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace ls {

/// Kernel family (Table I).
enum class KernelType {
  kLinear,      ///< K(u, v) = u . v
  kPolynomial,  ///< K(u, v) = (a u . v + r)^d
  kGaussian,    ///< K(u, v) = exp(-gamma ||u - v||^2)
  kSigmoid,     ///< K(u, v) = tanh(a u . v + r)
};

/// Kernel parameters; names follow Table I (a, r, d) with LIBSVM's `gamma`
/// doubling as the Gaussian width and the a scale of poly/sigmoid.
struct KernelParams {
  KernelType type = KernelType::kLinear;
  real_t gamma = 1.0;  ///< a (poly/sigmoid) or gamma (gaussian)
  real_t coef0 = 0.0;  ///< r
  int degree = 3;      ///< d
};

/// Evaluates K(u, v) from the precomputed inner product `dot` and the two
/// squared norms (only the Gaussian uses the norms:
/// ||u - v||^2 = ||u||^2 + ||v||^2 - 2 u.v).
inline real_t kernel_from_dot(const KernelParams& p, real_t dot,
                              real_t norm_u, real_t norm_v) {
  switch (p.type) {
    case KernelType::kLinear:
      return dot;
    case KernelType::kPolynomial:
      return std::pow(p.gamma * dot + p.coef0, p.degree);
    case KernelType::kGaussian:
      return std::exp(-p.gamma * (norm_u + norm_v - 2.0 * dot));
    case KernelType::kSigmoid:
      return std::tanh(p.gamma * dot + p.coef0);
  }
  return 0.0;
}

/// Parses a kernel name ("linear", "polynomial", "gaussian", "sigmoid").
inline KernelType parse_kernel(const std::string& name) {
  if (name == "linear") return KernelType::kLinear;
  if (name == "polynomial" || name == "poly") return KernelType::kPolynomial;
  if (name == "gaussian" || name == "rbf") return KernelType::kGaussian;
  if (name == "sigmoid") return KernelType::kSigmoid;
  throw Error("unknown kernel '" + name +
              "' (expected linear, polynomial, gaussian or sigmoid)");
}

/// Kernel name for logs.
inline const char* kernel_name(KernelType t) {
  switch (t) {
    case KernelType::kLinear: return "linear";
    case KernelType::kPolynomial: return "polynomial";
    case KernelType::kGaussian: return "gaussian";
    case KernelType::kSigmoid: return "sigmoid";
  }
  return "?";
}

}  // namespace ls
