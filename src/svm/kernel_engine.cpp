#include "svm/kernel_engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"

namespace ls {

namespace {

/// Squared norm of every row, via gather (works for any format).
std::vector<real_t> row_norms(const AnyMatrix& x) {
  std::vector<real_t> norms(static_cast<std::size_t>(x.rows()));
  SparseVector row;
  for (index_t i = 0; i < x.rows(); ++i) {
    x.gather_row(i, row);
    norms[static_cast<std::size_t>(i)] = row.squared_norm();
  }
  return norms;
}

}  // namespace

void RowKernelSource::compute_rows(std::span<const index_t> rows,
                                   std::span<real_t> out) {
  const auto m = static_cast<std::size_t>(num_rows());
  LS_CHECK(out.size() == rows.size() * m, "kernel rows buffer size mismatch");
  for (std::size_t k = 0; k < rows.size(); ++k) {
    compute_row(rows[k], out.subspan(k * m, m));
  }
}

FormatKernelEngine::FormatKernelEngine(const AnyMatrix& x,
                                       const KernelParams& params)
    : x_(&x), params_(params), norms_(row_norms(x)) {
  diag_.resize(norms_.size());
  for (std::size_t i = 0; i < norms_.size(); ++i) {
    diag_[i] = kernel_from_dot(params_, norms_[i], norms_[i], norms_[i]);
  }
  workspace_.assign(static_cast<std::size_t>(x.cols()), 0.0);
  dots_.assign(static_cast<std::size_t>(x.rows()), 0.0);
}

void FormatKernelEngine::compute_row(index_t i, std::span<real_t> out) {
  LS_CHECK(out.size() == static_cast<std::size_t>(x_->rows()),
           "kernel row buffer size mismatch");
  rows_computed_.fetch_add(1, std::memory_order_release);

  // Gather + scatter: workspace becomes the dense image of row i.
  x_->gather_row(i, row_);
  row_.scatter(workspace_);

  // The SMSV — the operation whose cost the layout scheduler minimises.
  x_->multiply_dense(workspace_, dots_);

  // Map dot products through the kernel function.
  const real_t norm_i = norms_[static_cast<std::size_t>(i)];
  const real_t* __restrict dots = dots_.data();
  const real_t* __restrict norms = norms_.data();
  const index_t m = x_->rows();
  for (index_t j = 0; j < m; ++j) {
    out[static_cast<std::size_t>(j)] = kernel_from_dot(
        params_, dots[j], norm_i, norms[j]);
  }

  // O(nnz_row) cleanup keeps the workspace all-zero for the next call.
  row_.unscatter(workspace_);
}

void FormatKernelEngine::compute_rows(std::span<const index_t> rows,
                                      std::span<real_t> out) {
  const index_t m = x_->rows();
  LS_CHECK(out.size() == rows.size() * static_cast<std::size_t>(m),
           "kernel rows buffer size mismatch");
  if (rows.empty()) return;

  const index_t d = x_->cols();
  const real_t* __restrict norms = norms_.data();
  for (std::size_t base = 0; base < rows.size(); base += kMaxSmsvBatch) {
    const index_t b = static_cast<index_t>(
        std::min<std::size_t>(kMaxSmsvBatch, rows.size() - base));
    rows_computed_.fetch_add(b, std::memory_order_release);
    metrics::counter_add("kernel.batch_rows_total", b);

    // Lazy grow: the buffers track the widest chunk seen. Slots left over
    // from a wider previous chunk are zero (unscattered below), so a
    // narrower reuse is safe.
    const auto need_w =
        static_cast<std::size_t>(d) * static_cast<std::size_t>(b);
    const auto need_y =
        static_cast<std::size_t>(m) * static_cast<std::size_t>(b);
    if (batch_w_.size() < need_w) batch_w_.resize(need_w, 0.0);
    if (batch_y_.size() < need_y) batch_y_.resize(need_y, 0.0);
    batch_rows_.resize(static_cast<std::size_t>(b));

    // Gather + interleaved scatter: column c of rhs k lives at w[c*b + k].
    for (index_t k = 0; k < b; ++k) {
      SparseVector& row = batch_rows_[static_cast<std::size_t>(k)];
      x_->gather_row(rows[base + static_cast<std::size_t>(k)], row);
      const auto idx = row.indices();
      const auto val = row.values();
      for (std::size_t e = 0; e < idx.size(); ++e) {
        batch_w_[static_cast<std::size_t>(idx[e] * b + k)] = val[e];
      }
    }

    // One batched SMSV streams the matrix once for the whole chunk.
    x_->multiply_dense_batch(std::span<const real_t>(batch_w_.data(), need_w),
                             b, std::span<real_t>(batch_y_.data(), need_y));

    // Kernel map: out row k is the kernel image of SMSV output lane k.
    for (index_t k = 0; k < b; ++k) {
      const index_t i = rows[base + static_cast<std::size_t>(k)];
      const real_t norm_i = norms[static_cast<std::size_t>(i)];
      real_t* __restrict out_row =
          out.data() + (base + static_cast<std::size_t>(k)) *
                           static_cast<std::size_t>(m);
      const real_t* __restrict dots = batch_y_.data();
      for (index_t j = 0; j < m; ++j) {
        out_row[static_cast<std::size_t>(j)] = kernel_from_dot(
            params_, dots[static_cast<std::size_t>(j * b + k)], norm_i,
            norms[static_cast<std::size_t>(j)]);
      }
    }

    // O(sum nnz) cleanup keeps the interleaved workspace all-zero.
    for (index_t k = 0; k < b; ++k) {
      const SparseVector& row = batch_rows_[static_cast<std::size_t>(k)];
      for (index_t c : row.indices()) {
        batch_w_[static_cast<std::size_t>(c * b + k)] = 0.0;
      }
    }
  }
}

LibsvmKernelEngine::LibsvmKernelEngine(const CooMatrix& x,
                                       const KernelParams& params)
    : x_(x), params_(params) {
  norms_.resize(static_cast<std::size_t>(x_.rows()));
  for (index_t i = 0; i < x_.rows(); ++i) {
    const auto vals = x_.row_values(i);
    real_t s = 0.0;
    for (real_t v : vals) s += v * v;
    norms_[static_cast<std::size_t>(i)] = s;
  }
  diag_.resize(norms_.size());
  for (std::size_t i = 0; i < norms_.size(); ++i) {
    diag_[i] = kernel_from_dot(params_, norms_[i], norms_[i], norms_[i]);
  }
}

real_t LibsvmKernelEngine::dot_rows(index_t i, index_t j) const {
  // Verbatim port of LIBSVM's Kernel::dot: two cursors, branch per step.
  const auto ci = x_.row_cols(i);
  const auto vi = x_.row_values(i);
  const auto cj = x_.row_cols(j);
  const auto vj = x_.row_values(j);
  real_t sum = 0.0;
  std::size_t a = 0, b = 0;
  while (a < ci.size() && b < cj.size()) {
    if (ci[a] == cj[b]) {
      sum += vi[a] * vj[b];
      ++a;
      ++b;
    } else if (ci[a] < cj[b]) {
      ++a;
    } else {
      ++b;
    }
  }
  return sum;
}

void LibsvmKernelEngine::compute_row(index_t i, std::span<real_t> out) {
  LS_CHECK(out.size() == static_cast<std::size_t>(x_.rows()),
           "kernel row buffer size mismatch");
  rows_computed_.fetch_add(1, std::memory_order_release);
  const real_t norm_i = norms_[static_cast<std::size_t>(i)];
  const index_t m = x_.rows();
  // "Parallel LIBSVM": the row loop is parallelised (as OpenMP-patched
  // LIBSVM builds do), but each pair still pays the merge-join.
  parallel_for(m, [&](index_t j) {
    out[static_cast<std::size_t>(j)] =
        kernel_from_dot(params_, dot_rows(i, j), norm_i,
                        norms_[static_cast<std::size_t>(j)]);
  });
}

}  // namespace ls
