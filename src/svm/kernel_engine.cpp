#include "svm/kernel_engine.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace ls {

namespace {

/// Squared norm of every row, via gather (works for any format).
std::vector<real_t> row_norms(const AnyMatrix& x) {
  std::vector<real_t> norms(static_cast<std::size_t>(x.rows()));
  SparseVector row;
  for (index_t i = 0; i < x.rows(); ++i) {
    x.gather_row(i, row);
    norms[static_cast<std::size_t>(i)] = row.squared_norm();
  }
  return norms;
}

}  // namespace

FormatKernelEngine::FormatKernelEngine(const AnyMatrix& x,
                                       const KernelParams& params)
    : x_(&x), params_(params), norms_(row_norms(x)) {
  diag_.resize(norms_.size());
  for (std::size_t i = 0; i < norms_.size(); ++i) {
    diag_[i] = kernel_from_dot(params_, norms_[i], norms_[i], norms_[i]);
  }
  workspace_.assign(static_cast<std::size_t>(x.cols()), 0.0);
  dots_.assign(static_cast<std::size_t>(x.rows()), 0.0);
}

void FormatKernelEngine::compute_row(index_t i, std::span<real_t> out) {
  LS_CHECK(out.size() == static_cast<std::size_t>(x_->rows()),
           "kernel row buffer size mismatch");
  ++rows_computed_;

  // Gather + scatter: workspace becomes the dense image of row i.
  x_->gather_row(i, row_);
  row_.scatter(workspace_);

  // The SMSV — the operation whose cost the layout scheduler minimises.
  x_->multiply_dense(workspace_, dots_);

  // Map dot products through the kernel function.
  const real_t norm_i = norms_[static_cast<std::size_t>(i)];
  const real_t* __restrict dots = dots_.data();
  const real_t* __restrict norms = norms_.data();
  const index_t m = x_->rows();
  for (index_t j = 0; j < m; ++j) {
    out[static_cast<std::size_t>(j)] = kernel_from_dot(
        params_, dots[j], norm_i, norms[j]);
  }

  // O(nnz_row) cleanup keeps the workspace all-zero for the next call.
  row_.unscatter(workspace_);
}

LibsvmKernelEngine::LibsvmKernelEngine(const CooMatrix& x,
                                       const KernelParams& params)
    : x_(x), params_(params) {
  norms_.resize(static_cast<std::size_t>(x_.rows()));
  for (index_t i = 0; i < x_.rows(); ++i) {
    const auto vals = x_.row_values(i);
    real_t s = 0.0;
    for (real_t v : vals) s += v * v;
    norms_[static_cast<std::size_t>(i)] = s;
  }
  diag_.resize(norms_.size());
  for (std::size_t i = 0; i < norms_.size(); ++i) {
    diag_[i] = kernel_from_dot(params_, norms_[i], norms_[i], norms_[i]);
  }
}

real_t LibsvmKernelEngine::dot_rows(index_t i, index_t j) const {
  // Verbatim port of LIBSVM's Kernel::dot: two cursors, branch per step.
  const auto ci = x_.row_cols(i);
  const auto vi = x_.row_values(i);
  const auto cj = x_.row_cols(j);
  const auto vj = x_.row_values(j);
  real_t sum = 0.0;
  std::size_t a = 0, b = 0;
  while (a < ci.size() && b < cj.size()) {
    if (ci[a] == cj[b]) {
      sum += vi[a] * vj[b];
      ++a;
      ++b;
    } else if (ci[a] < cj[b]) {
      ++a;
    } else {
      ++b;
    }
  }
  return sum;
}

void LibsvmKernelEngine::compute_row(index_t i, std::span<real_t> out) {
  LS_CHECK(out.size() == static_cast<std::size_t>(x_.rows()),
           "kernel row buffer size mismatch");
  ++rows_computed_;
  const real_t norm_i = norms_[static_cast<std::size_t>(i)];
  const index_t m = x_.rows();
  // "Parallel LIBSVM": the row loop is parallelised (as OpenMP-patched
  // LIBSVM builds do), but each pair still pays the merge-join.
  parallel_for(m, [&](index_t j) {
    out[static_cast<std::size_t>(j)] =
        kernel_from_dot(params_, dot_rows(i, j), norm_i,
                        norms_[static_cast<std::size_t>(j)]);
  });
}

}  // namespace ls
