// Kernel-row computation engines.
//
// Each SMO iteration needs two rows of the n x n kernel matrix (K_high and
// K_low). Both engines compute a row from the data matrix; they differ in
// *how*, which is exactly the paper's performance story:
//
//  * FormatKernelEngine (ours): gather the selected row, scatter it into a
//    dense workspace, run one format-specific SMSV (y = X * w), and map the
//    dot products through the kernel function. The SMSV is where the layout
//    scheduling pays off.
//
//  * LibsvmKernelEngine (baseline): LIBSVM's approach — a merge-join
//    sparse-sparse dot per pair (i, j) over CSR rows, no dense workspace.
//    The paper reports its own CSR being ~1.3x faster than LIBSVM's; the
//    merge join's branchy inner loop is the difference.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "formats/any_matrix.hpp"
#include "formats/csr.hpp"
#include "formats/sparse_vector.hpp"
#include "svm/kernel.hpp"

namespace ls {

/// Abstract source of kernel-matrix rows.
class RowKernelSource {
 public:
  virtual ~RowKernelSource() = default;

  /// Number of training samples (kernel matrix is rows() x rows()).
  virtual index_t num_rows() const = 0;

  /// Computes kernel row i: out[j] = K(X_i, X_j) for all j.
  virtual void compute_row(index_t i, std::span<real_t> out) = 0;

  /// Computes the kernel rows `rows[k]` into out[k * num_rows() .. ): one
  /// call produces rows.size() full kernel rows. The base implementation
  /// loops compute_row; engines with a genuinely batched path override it.
  virtual void compute_rows(std::span<const index_t> rows,
                            std::span<real_t> out);

  /// K(X_i, X_i) — needed by the second-order working-set selection.
  virtual real_t diagonal(index_t i) const = 0;

  /// Number of kernel rows computed so far (cache misses only). Updates are
  /// release stores and this read an acquire load, so the counter can be
  /// snapshotted from any thread (the solver, a stats endpoint) while the
  /// prefetch worker is mid-batch.
  std::int64_t rows_computed() const {
    return rows_computed_.load(std::memory_order_acquire);
  }

 protected:
  std::atomic<std::int64_t> rows_computed_{0};
};

/// SMSV-based engine over an arbitrary-format matrix (the adaptive path).
class FormatKernelEngine : public RowKernelSource {
 public:
  /// `x` must outlive the engine.
  FormatKernelEngine(const AnyMatrix& x, const KernelParams& params);

  index_t num_rows() const override { return x_->rows(); }
  void compute_row(index_t i, std::span<real_t> out) override;

  /// Batched path: gathers all requested rows, scatters them into one
  /// interleaved workspace and runs a single multiply_dense_batch per chunk
  /// of kMaxSmsvBatch rows — the matrix is streamed once per chunk instead
  /// of once per row.
  void compute_rows(std::span<const index_t> rows,
                    std::span<real_t> out) override;

  real_t diagonal(index_t i) const override {
    return diag_[static_cast<std::size_t>(i)];
  }

 private:
  const AnyMatrix* x_;
  KernelParams params_;
  std::vector<real_t> norms_;      // ||X_i||^2 per row
  std::vector<real_t> diag_;       // K(X_i, X_i)
  std::vector<real_t> workspace_;  // dense scatter target, size cols
  std::vector<real_t> dots_;       // SMSV output, size rows
  SparseVector row_;               // gathered selected row
  std::vector<real_t> batch_w_;        // interleaved rhs block, cols * b
  std::vector<real_t> batch_y_;        // interleaved SMSV output, rows * b
  std::vector<SparseVector> batch_rows_;  // gathered rows of one chunk
};

/// LIBSVM-style engine: fixed CSR, per-pair merge-join dot products.
class LibsvmKernelEngine : public RowKernelSource {
 public:
  /// Builds its own CSR copy (LIBSVM always converts input to its row list).
  LibsvmKernelEngine(const CooMatrix& x, const KernelParams& params);

  index_t num_rows() const override { return x_.rows(); }
  void compute_row(index_t i, std::span<real_t> out) override;
  real_t diagonal(index_t i) const override {
    return diag_[static_cast<std::size_t>(i)];
  }

 private:
  /// Merge-join dot of rows i and j (LIBSVM Kernel::dot equivalent).
  real_t dot_rows(index_t i, index_t j) const;

  CsrMatrix x_;
  KernelParams params_;
  std::vector<real_t> norms_;
  std::vector<real_t> diag_;
};

}  // namespace ls
