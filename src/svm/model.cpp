#include "svm/model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ls {

real_t SvmModel::decision(const SparseVector& x) const {
  const real_t norm_x = x.squared_norm();
  real_t sum = 0.0;
  for (std::size_t k = 0; k < support_vectors.size(); ++k) {
    const SparseVector& sv = support_vectors[k];
    const real_t dot = sv.dot_sparse(x);
    sum += coef[k] * kernel_from_dot(kernel, dot, sv.squared_norm(), norm_x);
  }
  return sum - rho;
}

double SvmModel::accuracy(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.rows() > 0, "cannot score an empty dataset");
  index_t correct = 0;
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    if (predict(row) == ds.y[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.rows());
}

std::vector<real_t> SvmModel::linear_weights() const {
  LS_CHECK(kernel.type == KernelType::kLinear,
           "linear_weights requires the linear kernel (got "
               << kernel_name(kernel.type) << ")");
  std::vector<real_t> w(static_cast<std::size_t>(num_features), 0.0);
  for (std::size_t k = 0; k < support_vectors.size(); ++k) {
    const SparseVector& sv = support_vectors[k];
    const auto idx = sv.indices();
    const auto val = sv.values();
    for (index_t e = 0; e < sv.nnz(); ++e) {
      w[static_cast<std::size_t>(idx[static_cast<std::size_t>(e)])] +=
          coef[k] * val[static_cast<std::size_t>(e)];
    }
  }
  return w;
}

double roc_auc(const SvmModel& model, const Dataset& ds) {
  ds.validate();
  // Scores paired with labels, sorted ascending by score.
  std::vector<std::pair<real_t, real_t>> scored;
  scored.reserve(static_cast<std::size_t>(ds.rows()));
  SparseVector row;
  index_t positives = 0, negatives = 0;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    const real_t label = ds.y[static_cast<std::size_t>(i)];
    scored.push_back({model.decision(row), label});
    (label > 0 ? positives : negatives) += 1;
  }
  LS_CHECK(positives > 0 && negatives > 0,
           "roc_auc needs both classes present");
  std::sort(scored.begin(), scored.end());

  // Mann-Whitney with midranks for ties: sum the average rank of the
  // positives, then AUC = (R+ - n+(n+ + 1)/2) / (n+ * n-).
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < scored.size()) {
    std::size_t j = i;
    while (j < scored.size() && scored[j].first == scored[i].first) ++j;
    // Ranks i+1 .. j share the midrank.
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) {
      if (scored[k].second > 0) rank_sum_pos += midrank;
    }
    i = j;
  }
  const double np = static_cast<double>(positives);
  const double nn = static_cast<double>(negatives);
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

SvmModel build_model(const AnyMatrix& x, std::span<const real_t> y,
                     std::span<const real_t> alpha, real_t rho,
                     const KernelParams& kernel) {
  LS_CHECK(y.size() == alpha.size(), "label/alpha size mismatch");
  LS_CHECK(static_cast<index_t>(y.size()) == x.rows(),
           "label count does not match matrix rows");
  SvmModel model;
  model.kernel = kernel;
  model.rho = rho;
  model.num_features = x.cols();
  SparseVector row;
  for (index_t i = 0; i < x.rows(); ++i) {
    const real_t a = alpha[static_cast<std::size_t>(i)];
    if (a <= 0) continue;
    x.gather_row(i, row);
    model.support_vectors.push_back(row);
    model.coef.push_back(a * y[static_cast<std::size_t>(i)]);
  }
  return model;
}

CooMatrix support_vector_matrix(const SvmModel& model) {
  std::vector<Triplet> triplets;
  for (std::size_t k = 0; k < model.support_vectors.size(); ++k) {
    const SparseVector& sv = model.support_vectors[k];
    const auto idx = sv.indices();
    const auto val = sv.values();
    for (index_t e = 0; e < sv.nnz(); ++e) {
      triplets.push_back({static_cast<index_t>(k),
                          idx[static_cast<std::size_t>(e)],
                          val[static_cast<std::size_t>(e)]});
    }
  }
  return CooMatrix(static_cast<index_t>(model.support_vectors.size()),
                   model.num_features, std::move(triplets));
}

}  // namespace ls
