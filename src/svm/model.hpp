// Trained SVM model and prediction.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "data/dataset.hpp"
#include "formats/any_matrix.hpp"
#include "formats/sparse_vector.hpp"
#include "svm/kernel.hpp"

namespace ls {

/// Binary SVM model: decision(x) = sum_i coef_i K(sv_i, x) - rho, where
/// coef_i = alpha_i y_i. Support vectors are stored sparsely so prediction
/// cost scales with their nonzeros, independent of the training layout.
struct SvmModel {
  KernelParams kernel;
  real_t rho = 0.0;
  index_t num_features = 0;
  std::vector<SparseVector> support_vectors;
  std::vector<real_t> coef;  ///< alpha_i * y_i per support vector

  /// Raw decision value for a sparse sample.
  real_t decision(const SparseVector& x) const;

  /// Predicted label (+1 / -1) for a sparse sample.
  real_t predict(const SparseVector& x) const {
    return decision(x) >= 0 ? 1.0 : -1.0;
  }

  /// True when `x` is dimensionally compatible with the model: every
  /// feature index lies in [0, num_features). Indices are sorted, so only
  /// the two ends need checking — an O(1) gate the batch-scoring paths run
  /// before scattering a request into a num_features-wide dense workspace,
  /// where an oversized index would otherwise write out of bounds. The
  /// serving layer maps a failure to a protocol error (kBadDimension).
  bool accepts(const SparseVector& x) const {
    return x.empty() || (x.indices().front() >= 0 &&
                         x.indices().back() < num_features);
  }

  /// Fraction of correctly classified rows of `ds` (labels must be +-1).
  double accuracy(const Dataset& ds) const;

  /// For the linear kernel only: collapses the support-vector expansion
  /// into the primal weight vector w = sum coef_i sv_i, so that
  /// decision(x) = w . x - rho. Throws for nonlinear kernels (no finite
  /// primal representation).
  std::vector<real_t> linear_weights() const;
};

/// Extracts the model from solver output: rows with alpha_i > 0 become
/// support vectors (gathered from the training matrix).
SvmModel build_model(const AnyMatrix& x, std::span<const real_t> y,
                     std::span<const real_t> alpha, real_t rho,
                     const KernelParams& kernel);

/// The model's support vectors assembled as a canonical #SV x num_features
/// COO matrix — the thing the layout scheduler decides over. Shared by
/// BatchPredictor (which materialises it in the chosen format) and the
/// serving-side rescheduler (which extracts the nine influencing
/// parameters from it to seed bandit arm priors).
CooMatrix support_vector_matrix(const SvmModel& model);

/// ROC AUC of the model's decision values over a +-1-labelled dataset
/// (Mann-Whitney rank statistic; ties contribute 1/2). 0.5 = random,
/// 1.0 = perfect ranking. Throws when either class is absent.
double roc_auc(const SvmModel& model, const Dataset& ds);

}  // namespace ls
