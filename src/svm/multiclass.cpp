#include "svm/multiclass.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "svm/cache.hpp"
#include "svm/kernel_engine.hpp"

namespace ls {

real_t MulticlassModel::predict(const SparseVector& x) const {
  LS_CHECK(!machines.empty(), "empty multiclass model");
  std::map<real_t, int> votes;
  for (const PairwiseMachine& m : machines) {
    const real_t side = m.model.predict(x);
    ++votes[side > 0 ? m.class_a : m.class_b];
  }
  real_t best_class = classes.front();
  int best_votes = -1;
  for (real_t c : classes) {
    const auto it = votes.find(c);
    const int v = it == votes.end() ? 0 : it->second;
    if (v > best_votes) {
      best_votes = v;
      best_class = c;
    }
  }
  return best_class;
}

double MulticlassModel::accuracy(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.rows() > 0, "cannot score an empty dataset");
  index_t correct = 0;
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    if (predict(row) == ds.y[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.rows());
}

real_t OvrModel::predict(const SparseVector& x) const {
  LS_CHECK(!machines.empty(), "empty one-vs-rest model");
  real_t best_class = classes.front();
  real_t best_value = -std::numeric_limits<real_t>::infinity();
  for (std::size_t k = 0; k < machines.size(); ++k) {
    const real_t value = machines[k].decision(x);
    if (value > best_value) {
      best_value = value;
      best_class = classes[k];
    }
  }
  return best_class;
}

double OvrModel::accuracy(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.rows() > 0, "cannot score an empty dataset");
  index_t correct = 0;
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    if (predict(row) == ds.y[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.rows());
}

OvrResult train_one_vs_rest(const Dataset& ds, const SvmParams& params,
                            const SchedulerOptions& sched) {
  ds.validate();
  const std::set<real_t> class_set(ds.y.begin(), ds.y.end());
  LS_CHECK(class_set.size() >= 2, "need at least two classes");

  Timer timer;
  OvrResult result;
  result.model.classes.assign(class_set.begin(), class_set.end());

  // One layout decision (the matrix is the same for every machine) and one
  // shared kernel-row cache (the kernel matrix is label-independent).
  const LayoutScheduler scheduler(sched);
  const ScheduleDecision decision = scheduler.decide(ds.X);
  result.layout = decision.format;
  const AnyMatrix x = scheduler.materialize(ds.X, decision);
  FormatKernelEngine engine(x, params.kernel);
  KernelCache cache(engine, params.cache_bytes);

  std::vector<real_t> labels(ds.y.size());
  for (real_t target : result.model.classes) {
    for (std::size_t i = 0; i < ds.y.size(); ++i) {
      labels[i] = ds.y[i] == target ? 1.0 : -1.0;
    }
    SmoSolver solver(cache, labels, params);
    const SolveStats stats = solver.solve();
    result.total_iterations += stats.iterations;
    result.model.machines.push_back(
        build_model(x, labels, solver.alpha(), solver.rho(), params.kernel));
  }
  result.cache_hit_rate = cache.hit_rate();
  result.total_seconds = timer.seconds();
  return result;
}

MulticlassResult train_one_vs_one(const Dataset& ds, const SvmParams& params,
                                  const SchedulerOptions& sched) {
  ds.validate();
  const std::set<real_t> class_set(ds.y.begin(), ds.y.end());
  LS_CHECK(class_set.size() >= 2, "need at least two classes");

  MulticlassResult result;
  result.model.classes.assign(class_set.begin(), class_set.end());
  const auto& classes = result.model.classes;

  for (std::size_t a = 0; a < classes.size(); ++a) {
    for (std::size_t b = a + 1; b < classes.size(); ++b) {
      // Collect the rows belonging to this pair and relabel to +-1.
      std::vector<index_t> ids;
      for (index_t i = 0; i < ds.rows(); ++i) {
        const real_t yi = ds.y[static_cast<std::size_t>(i)];
        if (yi == classes[a] || yi == classes[b]) ids.push_back(i);
      }
      Dataset pair = ds.subset(ids, ".pair");
      for (auto& yi : pair.y) yi = (yi == classes[a]) ? 1.0 : -1.0;

      TrainResult tr = train_adaptive(pair, params, sched);
      result.total_iterations += tr.stats.iterations;
      result.total_seconds += tr.total_seconds;
      result.chosen_formats.push_back(tr.decision.format);

      PairwiseMachine machine;
      machine.class_a = classes[a];
      machine.class_b = classes[b];
      machine.model = std::move(tr.model);
      result.model.machines.push_back(std::move(machine));
    }
  }
  return result;
}

}  // namespace ls
