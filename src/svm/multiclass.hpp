// One-vs-one multiclass SVM.
//
// Section II-A1: "multi-class SVMs are generally implemented as several
// independent binary-class SVMs [which] can be easily trained in parallel".
// We train k(k-1)/2 pairwise binary machines, each with its own layout
// decision (different class subsets can have different sparsity profiles),
// and predict by majority vote.
#pragma once

#include <map>
#include <vector>

#include "data/dataset.hpp"
#include "svm/trainer.hpp"

namespace ls {

/// One pairwise binary machine.
struct PairwiseMachine {
  real_t class_a = 0.0;  ///< label mapped to +1
  real_t class_b = 0.0;  ///< label mapped to -1
  SvmModel model;
};

/// Trained one-vs-one ensemble.
struct MulticlassModel {
  std::vector<PairwiseMachine> machines;
  std::vector<real_t> classes;

  /// Majority-vote prediction; ties break toward the lower class label.
  real_t predict(const SparseVector& x) const;

  /// Fraction of correctly classified rows of `ds`.
  double accuracy(const Dataset& ds) const;
};

/// Per-ensemble training statistics.
struct MulticlassResult {
  MulticlassModel model;
  index_t total_iterations = 0;
  double total_seconds = 0.0;
  std::vector<Format> chosen_formats;  ///< layout decision per machine
};

/// Trains the one-vs-one ensemble with runtime layout scheduling per pair.
MulticlassResult train_one_vs_one(const Dataset& ds, const SvmParams& params,
                                  const SchedulerOptions& sched = {});

/// One-vs-rest ensemble: k binary machines, class k against everything.
struct OvrModel {
  std::vector<real_t> classes;
  std::vector<SvmModel> machines;  ///< machines[k] separates classes[k]

  /// argmax over per-class decision values.
  real_t predict(const SparseVector& x) const;

  /// Fraction of correctly classified rows of `ds`.
  double accuracy(const Dataset& ds) const;
};

/// One-vs-rest training report.
struct OvrResult {
  OvrModel model;
  Format layout = Format::kCSR;  ///< single decision: all machines share X
  index_t total_iterations = 0;
  double total_seconds = 0.0;
  /// Kernel-cache hit rate across the whole ensemble. Because the kernel
  /// matrix is label-independent, rows computed for machine 0 are cache
  /// hits for machines 1..k-1 — the structural advantage of one-vs-rest
  /// over one-vs-one here.
  double cache_hit_rate = 0.0;
};

/// Trains the one-vs-rest ensemble: one layout decision and one shared
/// kernel cache for all k machines.
OvrResult train_one_vs_rest(const Dataset& ds, const SvmParams& params,
                            const SchedulerOptions& sched = {});

}  // namespace ls
