#include "svm/reschedule.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace ls {

bool decisively_better(double current_score, double best_score,
                       double switch_threshold) {
  return std::isfinite(best_score) &&
         (!std::isfinite(current_score) ||
          current_score >= switch_threshold * best_score);
}

ReschedulingKernelEngine::ReschedulingKernelEngine(
    const CooMatrix& x, const KernelParams& params, Format initial,
    RescheduleOptions options)
    : x_(&x), params_(params), options_(options), current_(initial),
      mat_(AnyMatrix::from_coo(x, initial)),
      inner_(std::make_unique<FormatKernelEngine>(mat_, params)) {
  LS_CHECK(options_.check_after_rows >= 1,
           "check_after_rows must be positive");
  LS_CHECK(options_.switch_threshold >= 1.0,
           "switch_threshold must be >= 1");
}

void ReschedulingKernelEngine::compute_row(index_t i,
                                           std::span<real_t> out) {
  inner_->compute_row(i, out);
  ++rows_computed_;
  if (switches_ < options_.max_switches &&
      rows_computed_ % options_.check_after_rows == 0) {
    maybe_reschedule();
  }
}

void ReschedulingKernelEngine::maybe_reschedule() {
  metrics::counter_add("svm.reschedule.checks_total");
  // Fresh measurement of every admissible candidate, current format
  // included — relative comparison on identical probes is fair regardless
  // of what the original decision was based on.
  const ScheduleDecision decision =
      EmpiricalAutotuner(options_.autotune).choose(*x_);
  if (decision.format == current_) {
    ++switches_;  // consume the budget: the measurement confirmed us
    return;
  }
  const double current_score = decision.score_of(current_);
  const double best_score = decision.score_of(decision.format);
  if (!decisively_better(current_score, best_score,
                         options_.switch_threshold)) {
    ++switches_;  // not decisively better: stay put
    return;
  }

  // Re-materialise and rebuild the inner engine (order matters: the engine
  // holds a pointer into mat_).
  metrics::counter_add("svm.reschedule.switches_total");
  trace::emit_instant("reschedule:" + std::string(format_name(current_)) +
                          "->" + std::string(format_name(decision.format)),
                      "svm");
  inner_.reset();
  mat_ = AnyMatrix::from_coo(*x_, decision.format);
  inner_ = std::make_unique<FormatKernelEngine>(mat_, params_);
  current_ = decision.format;
  ++switches_;
}

}  // namespace ls
