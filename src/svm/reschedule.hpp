// Mid-training layout re-scheduling.
//
// The paper's system decides the layout once, before training. But the
// decision can be wrong — a sampled probe can mislead, or the access
// pattern can differ from the probe's assumption. This engine makes the
// scheduling genuinely *runtime*: it serves kernel rows like the normal
// engine, and after a warm-up window re-evaluates the format choice
// against fresh measurements of the actual matrix; if another format is
// decisively faster it re-materialises the matrix and continues — the
// conversion cost is amortised over the remaining (typically thousands of)
// SMO iterations.
//
// bench/ablation_reschedule measures the recovery when training starts
// from a deliberately bad layout.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "sched/selector.hpp"
#include "svm/kernel_engine.hpp"

namespace ls {

/// Shared switch-decision core of the training-side (this engine) and
/// serving-side (serve/rescheduler) reschedulers: switch only when the
/// measured/estimated best is decisively better than the current format.
/// An infinite or NaN current score means the current format would not
/// even be considered (storage-inadmissible or never measured against a
/// finite alternative) — the strongest possible signal to switch; a
/// non-finite best is never worth switching to. Otherwise require the
/// configured multiplicative margin, which is the hysteresis that keeps
/// near-ties from flapping.
bool decisively_better(double current_score, double best_score,
                       double switch_threshold);

/// Re-scheduling policy knobs.
struct RescheduleOptions {
  /// Kernel rows to serve before the (first) re-evaluation.
  index_t check_after_rows = 32;
  /// Re-materialise only when the best candidate is at least this much
  /// faster than the current format in the fresh measurement.
  double switch_threshold = 1.25;
  /// Maximum number of format switches over the engine's lifetime.
  index_t max_switches = 1;
  /// Probe configuration for the re-evaluation.
  AutotuneOptions autotune;
};

/// Kernel-row engine that can swap its storage format mid-run.
class ReschedulingKernelEngine : public RowKernelSource {
 public:
  /// `x` must outlive the engine; `initial` is the starting layout (e.g. a
  /// prior decision, or a fixed default).
  ReschedulingKernelEngine(const CooMatrix& x, const KernelParams& params,
                           Format initial, RescheduleOptions options = {});

  index_t num_rows() const override { return x_->rows(); }
  void compute_row(index_t i, std::span<real_t> out) override;
  real_t diagonal(index_t i) const override {
    return inner_->diagonal(i);
  }

  Format current_format() const { return current_; }
  index_t switches() const { return switches_; }

 private:
  /// Re-measures the candidates and switches if decisively beneficial.
  void maybe_reschedule();

  const CooMatrix* x_;
  KernelParams params_;
  RescheduleOptions options_;
  Format current_;
  index_t switches_ = 0;
  AnyMatrix mat_;
  std::unique_ptr<FormatKernelEngine> inner_;
};

}  // namespace ls
