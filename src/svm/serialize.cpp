#include "svm/serialize.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"

namespace ls {

namespace {

constexpr const char* kModelMagic = "ls_svm_model v1";
constexpr const char* kEnsembleMagic = "ls_svm_ovo v1";
constexpr const char* kSvrMagic = "ls_svr_model v1";

const char* kernel_tag(KernelType t) { return kernel_name(t); }

void expect_line(std::istream& in, const std::string& expected,
                 const char* what) {
  std::string line;
  LS_CHECK(std::getline(in, line), "model stream truncated before " << what);
  LS_CHECK(line == expected,
           "bad " << what << ": expected '" << expected << "', got '" << line
                  << "'");
}

template <class T>
T read_field(std::istream& in, const char* name) {
  std::string line;
  LS_CHECK(std::getline(in, line), "model stream truncated at " << name);
  std::istringstream ls(line);
  std::string key;
  T value{};
  LS_CHECK(static_cast<bool>(ls >> key >> value) && key == name,
           "bad model field: expected '" << name << "', got '" << line << "'");
  return value;
}

}  // namespace

void save_model(std::ostream& out, const SvmModel& model) {
  out.precision(17);
  out << kModelMagic << '\n';
  out << "kernel " << kernel_tag(model.kernel.type) << '\n';
  out << "gamma " << model.kernel.gamma << '\n';
  out << "coef0 " << model.kernel.coef0 << '\n';
  out << "degree " << model.kernel.degree << '\n';
  out << "rho " << model.rho << '\n';
  out << "num_features " << model.num_features << '\n';
  out << "num_sv " << model.support_vectors.size() << '\n';
  for (std::size_t k = 0; k < model.support_vectors.size(); ++k) {
    out << model.coef[k];
    const SparseVector& sv = model.support_vectors[k];
    const auto idx = sv.indices();
    const auto val = sv.values();
    for (index_t e = 0; e < sv.nnz(); ++e) {
      out << ' ' << idx[static_cast<std::size_t>(e)] << ':'
          << val[static_cast<std::size_t>(e)];
    }
    out << '\n';
  }
}

SvmModel load_model(std::istream& in) {
  expect_line(in, kModelMagic, "model magic");
  SvmModel model;
  model.kernel.type = parse_kernel(read_field<std::string>(in, "kernel"));
  model.kernel.gamma = read_field<real_t>(in, "gamma");
  model.kernel.coef0 = read_field<real_t>(in, "coef0");
  model.kernel.degree = static_cast<int>(read_field<long long>(in, "degree"));
  model.rho = read_field<real_t>(in, "rho");
  model.num_features = read_field<index_t>(in, "num_features");
  const auto num_sv = read_field<long long>(in, "num_sv");
  LS_CHECK(num_sv >= 0, "negative support vector count");

  for (long long k = 0; k < num_sv; ++k) {
    std::string line;
    LS_CHECK(std::getline(in, line),
             "model stream truncated at support vector " << k);
    std::istringstream ls(line);
    real_t coef = 0.0;
    LS_CHECK(static_cast<bool>(ls >> coef),
             "bad support vector line: '" << line << "'");
    SparseVector sv;
    std::string token;
    index_t prev = -1;
    while (ls >> token) {
      const auto colon = token.find(':');
      LS_CHECK(colon != std::string::npos && colon > 0,
               "bad sv entry '" << token << "'");
      // strtoll/strtod with end-pointer checks: corrupt tokens (e.g. from a
      // truncated file) must surface as ls::Error, never std::stoll's
      // std::invalid_argument or a silently half-parsed number.
      char* end = nullptr;
      const index_t idx =
          static_cast<index_t>(std::strtoll(token.c_str(), &end, 10));
      LS_CHECK(end == token.c_str() + colon,
               "bad sv index in '" << token << "'");
      const char* vbegin = token.c_str() + colon + 1;
      const real_t val = std::strtod(vbegin, &end);
      LS_CHECK(end != vbegin && *end == '\0',
               "bad sv value in '" << token << "'");
      LS_CHECK(idx > prev, "sv indices must be strictly increasing");
      LS_CHECK(idx >= 0 && idx < model.num_features,
               "sv index " << idx << " out of feature range");
      prev = idx;
      sv.push_back(idx, val);
    }
    model.coef.push_back(coef);
    model.support_vectors.push_back(std::move(sv));
  }
  return model;
}

void save_model_file(const std::string& path, const SvmModel& model) {
  LS_FAILPOINT("svm.serialize.save");
  atomic_write_file(path, [&](std::ostream& out) { save_model(out, model); });
}

SvmModel load_model_file(const std::string& path) {
  LS_FAILPOINT("svm.serialize.load");
  std::istringstream in(read_file_verified(path));
  return load_model(in);
}

void save_multiclass(std::ostream& out, const MulticlassModel& model) {
  out.precision(17);
  out << kEnsembleMagic << '\n';
  out << "num_classes " << model.classes.size() << '\n';
  out << "classes";
  for (real_t c : model.classes) out << ' ' << c;
  out << '\n';
  out << "num_machines " << model.machines.size() << '\n';
  for (const PairwiseMachine& m : model.machines) {
    out << "pair " << m.class_a << ' ' << m.class_b << '\n';
    save_model(out, m.model);
  }
}

MulticlassModel load_multiclass(std::istream& in) {
  expect_line(in, kEnsembleMagic, "ensemble magic");
  MulticlassModel model;
  const auto num_classes = read_field<long long>(in, "num_classes");
  LS_CHECK(num_classes >= 2, "ensemble needs at least two classes");
  {
    std::string line;
    LS_CHECK(std::getline(in, line), "ensemble truncated at classes");
    std::istringstream ls(line);
    std::string key;
    LS_CHECK(static_cast<bool>(ls >> key) && key == "classes",
             "bad classes line: '" << line << "'");
    real_t c = 0.0;
    while (ls >> c) model.classes.push_back(c);
    LS_CHECK(static_cast<long long>(model.classes.size()) == num_classes,
             "class list length mismatch");
  }
  const auto num_machines = read_field<long long>(in, "num_machines");
  for (long long k = 0; k < num_machines; ++k) {
    std::string line;
    LS_CHECK(std::getline(in, line), "ensemble truncated at machine " << k);
    std::istringstream ls(line);
    std::string key;
    PairwiseMachine machine;
    LS_CHECK(static_cast<bool>(ls >> key >> machine.class_a >>
                               machine.class_b) &&
                 key == "pair",
             "bad pair line: '" << line << "'");
    machine.model = load_model(in);
    model.machines.push_back(std::move(machine));
  }
  return model;
}

void save_multiclass_file(const std::string& path,
                          const MulticlassModel& model) {
  LS_FAILPOINT("svm.serialize.save");
  atomic_write_file(path,
                    [&](std::ostream& out) { save_multiclass(out, model); });
}

void save_svr(std::ostream& out, const SvrModel& model) {
  // SvrModel shares the binary model's field layout (coef holds beta);
  // reuse the writer behind a distinguishing magic line.
  out << kSvrMagic << '\n';
  SvmModel shim;
  shim.kernel = model.kernel;
  shim.rho = model.rho;
  shim.num_features = model.num_features;
  shim.support_vectors = model.support_vectors;
  shim.coef = model.coef;
  save_model(out, shim);
}

SvrModel load_svr(std::istream& in) {
  expect_line(in, kSvrMagic, "svr magic");
  SvmModel shim = load_model(in);
  SvrModel model;
  model.kernel = shim.kernel;
  model.rho = shim.rho;
  model.num_features = shim.num_features;
  model.support_vectors = std::move(shim.support_vectors);
  model.coef = std::move(shim.coef);
  return model;
}

void save_svr_file(const std::string& path, const SvrModel& model) {
  LS_FAILPOINT("svm.serialize.save");
  atomic_write_file(path, [&](std::ostream& out) { save_svr(out, model); });
}

SvrModel load_svr_file(const std::string& path) {
  LS_FAILPOINT("svm.serialize.load");
  std::istringstream in(read_file_verified(path));
  return load_svr(in);
}

MulticlassModel load_multiclass_file(const std::string& path) {
  LS_FAILPOINT("svm.serialize.load");
  std::istringstream in(read_file_verified(path));
  return load_multiclass(in);
}

}  // namespace ls
