// Text serialization for trained SVM models (LIBSVM-inspired layout):
// a header of scalar fields followed by one "coef idx:val idx:val ..."
// line per support vector. Round-trips at full double precision.
#pragma once

#include <iosfwd>
#include <string>

#include "svm/model.hpp"
#include "svm/multiclass.hpp"
#include "svm/svr.hpp"

namespace ls {

/// Writes a binary model.
void save_model(std::ostream& out, const SvmModel& model);
void save_model_file(const std::string& path, const SvmModel& model);

/// Reads a binary model; throws ls::Error on malformed input.
SvmModel load_model(std::istream& in);
SvmModel load_model_file(const std::string& path);

/// Writes a one-vs-one ensemble (header + each pairwise machine).
void save_multiclass(std::ostream& out, const MulticlassModel& model);
void save_multiclass_file(const std::string& path,
                          const MulticlassModel& model);

/// Reads a one-vs-one ensemble.
MulticlassModel load_multiclass(std::istream& in);
MulticlassModel load_multiclass_file(const std::string& path);

/// Writes a regression model (same layout as the binary model with an SVR
/// magic header; coef lines hold beta_i = a_i - a*_i).
void save_svr(std::ostream& out, const SvrModel& model);
void save_svr_file(const std::string& path, const SvrModel& model);

/// Reads a regression model.
SvrModel load_svr(std::istream& in);
SvrModel load_svr_file(const std::string& path);

}  // namespace ls
