#include "svm/smo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/parallel.hpp"
#include "common/trace.hpp"

namespace ls {

SmoSolver::SmoSolver(KernelCache& cache, std::span<const real_t> y,
                     const SvmParams& params)
    : SmoSolver(cache, y, std::span<const real_t>{}, params) {}

SmoSolver::SmoSolver(KernelCache& cache, std::span<const real_t> y,
                     std::span<const real_t> p, const SvmParams& params)
    : cache_(&cache), y_(y), p_(p), params_(params),
      n_(static_cast<index_t>(y.size())) {
  LS_CHECK(n_ == cache.num_rows(),
           "label count " << n_ << " != kernel source rows "
                          << cache.num_rows());
  LS_CHECK(params_.c > 0, "C must be positive");
  LS_CHECK(params_.weight_positive > 0 && params_.weight_negative > 0,
           "class weights must be positive");
  LS_CHECK(p.empty() || p.size() == y.size(),
           "linear term length must match label count");
  for (real_t yi : y_) {
    LS_CHECK(yi == 1.0 || yi == -1.0,
             "binary SMO requires labels in {+1, -1}, got " << yi);
  }

  // alpha = 0; f_i = y_i * grad_i = y_i * p_i. Classification (p = -1)
  // gives the paper's Algorithm 1 step 2: f_i = -y_i.
  alpha_.assign(static_cast<std::size_t>(n_), 0.0);
  f_.resize(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const real_t pi = p.empty() ? real_t{-1.0} : p[iu];
    f_[iu] = y_[iu] * pi;
  }
  active_.resize(static_cast<std::size_t>(n_));
  std::iota(active_.begin(), active_.end(), index_t{0});
}

bool SmoSolver::in_i_high(index_t i) const {
  // I_high = {0 < a < C} u {y > 0, a = 0} u {y < 0, a = C}   (Alg. 1 step 6)
  const bool lower = at_lower(i);
  const bool upper = at_upper(i);
  if (!lower && !upper) return true;
  const real_t yi = y_[static_cast<std::size_t>(i)];
  return (yi > 0 && lower) || (yi < 0 && upper);
}

bool SmoSolver::in_i_low(index_t i) const {
  // I_low = {0 < a < C} u {y > 0, a = C} u {y < 0, a = 0}    (Alg. 1 step 7)
  const bool lower = at_lower(i);
  const bool upper = at_upper(i);
  if (!lower && !upper) return true;
  const real_t yi = y_[static_cast<std::size_t>(i)];
  return (yi > 0 && upper) || (yi < 0 && lower);
}

bool SmoSolver::select_high(Selection& sel) const {
  sel.high = -1;
  sel.b_high = std::numeric_limits<real_t>::infinity();
  sel.b_low = -std::numeric_limits<real_t>::infinity();
  const index_t na = static_cast<index_t>(active_.size());
  // Both scans run as deterministic parallel argmax folds: ties keep the
  // lowest active-set position, matching the serial loop at any thread
  // count (the thread-invariance tests rely on this).
  const index_t high_pos = parallel_argmax(na, [&](index_t k) {
    const index_t i = active_[static_cast<std::size_t>(k)];
    return in_i_high(i) ? -f_[static_cast<std::size_t>(i)]
                        : -std::numeric_limits<real_t>::infinity();
  });
  if (high_pos >= 0) {
    sel.high = active_[static_cast<std::size_t>(high_pos)];
    sel.b_high = f_[static_cast<std::size_t>(sel.high)];
  }
  const index_t low_pos = parallel_argmax(na, [&](index_t k) {
    const index_t i = active_[static_cast<std::size_t>(k)];
    return in_i_low(i) ? f_[static_cast<std::size_t>(i)]
                       : -std::numeric_limits<real_t>::infinity();
  });
  if (low_pos >= 0) {
    sel.b_low =
        f_[static_cast<std::size_t>(active_[static_cast<std::size_t>(low_pos)])];
  }
  return sel.high >= 0 && std::isfinite(sel.b_low);
}

bool SmoSolver::select_low(Selection& sel,
                           std::span<const real_t> k_high) const {
  sel.low = -1;
  const index_t na = static_cast<index_t>(active_.size());
  if (params_.wss == WssPolicy::kFirstOrder) {
    // Algorithm 1 step 9: low = argmax f over I_low.
    const index_t pos = parallel_argmax(na, [&](index_t k) {
      const index_t j = active_[static_cast<std::size_t>(k)];
      return in_i_low(j) ? f_[static_cast<std::size_t>(j)]
                         : -std::numeric_limits<real_t>::infinity();
    });
    if (pos >= 0) sel.low = active_[static_cast<std::size_t>(pos)];
    return sel.low >= 0;
  }

  // Second-order (WSS2): among I_low candidates that actually violate
  // optimality w.r.t. high, maximise the guaranteed objective gain
  // (f_j - b_high)^2 / eta_j.
  const real_t k_hh = cache_->diagonal(sel.high);
  const index_t pos = parallel_argmax(na, [&](index_t k) {
    const index_t j = active_[static_cast<std::size_t>(k)];
    if (!in_i_low(j)) return -std::numeric_limits<real_t>::infinity();
    const real_t b = f_[static_cast<std::size_t>(j)] - sel.b_high;
    if (b <= 0) return -std::numeric_limits<real_t>::infinity();
    real_t eta = k_hh + cache_->diagonal(j) -
                 2.0 * k_high[static_cast<std::size_t>(j)];
    if (eta <= 0) eta = kEtaFloor;
    return b * b / eta;
  });
  if (pos >= 0) sel.low = active_[static_cast<std::size_t>(pos)];
  return sel.low >= 0;
}

std::vector<index_t> SmoSolver::predict_candidates(index_t count) const {
  std::vector<index_t> out;
  if (count <= 0) return out;

  // Two bounded top-k scans over the active set (k is tiny, so insertion
  // into a sorted array beats a heap). Half the budget goes to I_high
  // (smallest f first — the next b_high candidates), half to I_low
  // (largest f first — the next b_low / second-order candidates).
  struct Scored {
    real_t score;
    index_t row;
  };
  const std::size_t high_cap = static_cast<std::size_t>((count + 1) / 2);
  const std::size_t low_cap = static_cast<std::size_t>(count) - high_cap;
  std::vector<Scored> high, low;
  high.reserve(high_cap + 1);
  low.reserve(low_cap + 1);
  const auto push_top = [](std::vector<Scored>& v, std::size_t cap,
                           Scored s) {
    if (cap == 0) return;
    auto it = std::find_if(v.begin(), v.end(), [&](const Scored& o) {
      return s.score > o.score;
    });
    if (it == v.end() && v.size() >= cap) return;
    v.insert(it, s);
    if (v.size() > cap) v.pop_back();
  };
  for (index_t i : active_) {
    const real_t fi = f_[static_cast<std::size_t>(i)];
    if (in_i_high(i)) push_top(high, high_cap, {-fi, i});
    if (in_i_low(i)) push_top(low, low_cap, {fi, i});
  }

  out.reserve(high.size() + low.size());
  for (const Scored& s : high) out.push_back(s.row);
  for (const Scored& s : low) {
    if (std::find(out.begin(), out.end(), s.row) == out.end()) {
      out.push_back(s.row);
    }
  }
  return out;
}

void SmoSolver::shrink(const Selection& sel) {
  // A bound sample is certainly non-violating (and can be ignored by
  // selection) when its f value cannot form a violating pair with the
  // current b_high / b_low estimates. Free samples are never shrunk.
  std::vector<index_t> keep;
  keep.reserve(active_.size());
  for (index_t i : active_) {
    const real_t fi = f_[static_cast<std::size_t>(i)];
    const real_t yi = y_[static_cast<std::size_t>(i)];
    bool shrinkable = false;
    if (at_lower(i)) {
      // y > 0: only in I_high (candidate for min f) -> dull if f too big;
      // y < 0: only in I_low (candidate for max f) -> dull if f too small.
      shrinkable = (yi > 0) ? (fi > sel.b_low) : (fi < sel.b_high);
    } else if (at_upper(i)) {
      shrinkable = (yi > 0) ? (fi < sel.b_high) : (fi > sel.b_low);
    }
    if (!shrinkable) keep.push_back(i);
  }
  // Keep the problem well-posed: never shrink below two samples.
  if (keep.size() >= 2 && keep.size() < active_.size()) {
    active_ = std::move(keep);
    fully_active_ = false;
  }
}

void SmoSolver::unshrink() {
  active_.resize(static_cast<std::size_t>(n_));
  std::iota(active_.begin(), active_.end(), index_t{0});
  fully_active_ = true;
}

SmoCheckpoint SmoSolver::checkpoint(index_t iteration) const {
  SmoCheckpoint ck;
  ck.iteration = iteration;
  ck.alpha = alpha_;
  ck.f = f_;
  return ck;
}

void SmoSolver::restore(const SmoCheckpoint& ck) {
  LS_CHECK(ck.alpha.size() == static_cast<std::size_t>(n_) &&
               ck.f.size() == static_cast<std::size_t>(n_),
           "checkpoint size " << ck.alpha.size() << "/" << ck.f.size()
                              << " does not match problem size " << n_);
  LS_CHECK(ck.iteration >= 0, "negative checkpoint iteration");
  alpha_ = ck.alpha;
  f_ = ck.f;
  resume_iteration_ = ck.iteration;
  // The shrunk active set is not part of the snapshot — restart from the
  // full set and let shrinking rediscover it.
  unshrink();
  unshrunk_once_ = false;
}

index_t SmoSolver::warm_start(std::span<const real_t> alphas) {
  LS_CHECK(alphas.size() == static_cast<std::size_t>(n_),
           "warm-start vector length " << alphas.size()
                                       << " does not match problem size "
                                       << n_);
  // Box projection: evicted-window seeds can exceed the (possibly
  // class-weighted) C of their new position.
  for (index_t i = 0; i < n_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    alpha_[iu] = std::clamp(alphas[iu], real_t{0.0}, c_of(i));
  }

  // Equality repair: sum_i a_i y_i must be exactly 0 or the solver's
  // pairwise updates can never restore feasibility. Bleed the residual off
  // the over-represented side, smallest alphas first — zeroing marginal
  // seeds perturbs the solution less than cutting into a strong support
  // vector.
  real_t residual = 0.0;
  for (index_t i = 0; i < n_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    residual += alpha_[iu] * y_[iu];
  }
  if (std::abs(residual) > kBoundEps) {
    const real_t side = residual > 0 ? real_t{1.0} : real_t{-1.0};
    std::vector<index_t> order;
    for (index_t i = 0; i < n_; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (y_[iu] == side && alpha_[iu] > kBoundEps) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return alpha_[static_cast<std::size_t>(a)] <
             alpha_[static_cast<std::size_t>(b)];
    });
    real_t excess = std::abs(residual);
    for (index_t i : order) {
      if (excess <= kBoundEps) break;
      const auto iu = static_cast<std::size_t>(i);
      const real_t cut = std::min(alpha_[iu], excess);
      alpha_[iu] -= cut;
      excess -= cut;
    }
    // A leftover excess means one whole class's mass cannot cover the
    // residual — only possible with a wildly inconsistent seed. Fall back
    // to a cold start rather than an infeasible one.
    if (excess > kBoundEps) {
      std::fill(alpha_.begin(), alpha_.end(), real_t{0.0});
    }
  }

  // Recompute f_i = y_i p_i + sum_j a_j y_j K_ij exactly: one kernel row
  // per surviving support vector. This is the entire cost of the warm
  // start — proportional to the SV count, not to an optimisation run.
  index_t seeded = 0;
  for (index_t i = 0; i < n_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const real_t pi = p_.empty() ? real_t{-1.0} : p_[iu];
    f_[iu] = y_[iu] * pi;
  }
  for (index_t j = 0; j < n_; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    if (alpha_[ju] <= kBoundEps) continue;
    ++seeded;
    const real_t coeff = alpha_[ju] * y_[ju];
    const std::span<const real_t> row = cache_->get_row(j);
    for (index_t i = 0; i < n_; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      f_[iu] += coeff * row[iu];
    }
  }

  resume_iteration_ = 0;
  unshrink();
  unshrunk_once_ = false;
  return seeded;
}

double SmoSolver::current_objective() const {
  // Dual objective via the gradient identity grad_i = y_i f_i = (Q a + p)_i:
  // F = -(1/2 a' Q a + p' a) = -1/2 sum_i a_i (y_i f_i + p_i) — O(n), no
  // extra kernel evaluations. For classification (p = -1) this is exactly
  // Eq. (1)'s maximised objective.
  double obj = 0.0;
  for (index_t i = 0; i < n_; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    const real_t pi = p_.empty() ? real_t{-1.0} : p_[iu];
    obj += -0.5 * alpha_[iu] * (y_[iu] * f_[iu] + pi);
  }
  return obj;
}

SolveStats SmoSolver::solve() {
  const index_t max_iter = params_.max_iterations > 0
                               ? params_.max_iterations
                               : 200 * n_ + 20000;
  SolveStats stats;

  metrics::ScopedTimer solve_timer("svm.smo.solve_seconds");
  trace::ScopedEvent solve_span("smo.solve", "svm");
  // KKT-violation trajectory: sample the optimality gap into the trace at
  // the user's trace granularity. The enabled check is hoisted so a
  // disabled recorder costs nothing per iteration.
  const bool tracing = trace::enabled();
  const index_t gap_interval = std::max<index_t>(1, params_.trace_interval);

  index_t iter = resume_iteration_;
  Selection sel;
  while (iter < max_iter) {
    if (!select_high(sel)) break;  // all samples at compatible bounds

    // Convergence test (Alg. 1 step 12, inverted).
    if (sel.b_low <= sel.b_high + 2 * params_.tolerance) {
      if (fully_active_ || unshrunk_once_) {
        stats.converged = true;
        break;
      }
      // Converged on the shrunk set: restore everything and re-check once.
      unshrink();
      unshrunk_once_ = true;
      continue;
    }

    const std::span<const real_t> k_high = cache_->get_row(sel.high);
    if (!select_low(sel, k_high)) break;
    const std::span<const real_t> k_low = cache_->get_row(sel.low);

    const index_t hi = sel.high;
    const index_t lo = sel.low;
    const real_t y_hi = y_[static_cast<std::size_t>(hi)];
    const real_t y_lo = y_[static_cast<std::size_t>(lo)];
    const real_t f_hi = f_[static_cast<std::size_t>(hi)];
    const real_t f_lo = f_[static_cast<std::size_t>(lo)];
    const real_t a_hi_old = alpha_[static_cast<std::size_t>(hi)];
    const real_t a_lo_old = alpha_[static_cast<std::size_t>(lo)];

    // Eq. (5) denominator with positive-definiteness floor.
    real_t eta = cache_->diagonal(hi) + cache_->diagonal(lo) -
                 2.0 * k_high[static_cast<std::size_t>(lo)];
    if (eta <= 0) eta = kEtaFloor;

    // Box bounds for the new alpha_low (Platt's L/H with i1 = high),
    // generalised to per-class box constraints C_hi / C_lo.
    const real_t s = y_hi * y_lo;
    const real_t c_hi = c_of(hi);
    const real_t c_lo = c_of(lo);
    real_t lo_bound, hi_bound;
    if (s < 0) {
      lo_bound = std::max<real_t>(0.0, a_lo_old - a_hi_old);
      hi_bound = std::min<real_t>(c_lo, c_hi + a_lo_old - a_hi_old);
    } else {
      lo_bound = std::max<real_t>(0.0, a_lo_old + a_hi_old - c_hi);
      hi_bound = std::min<real_t>(c_lo, a_lo_old + a_hi_old);
    }

    // Eq. (5): unconstrained optimum of alpha_low, then clip to the box.
    real_t a_lo_new = a_lo_old + y_lo * (f_hi - f_lo) / eta;
    a_lo_new = std::clamp(a_lo_new, lo_bound, hi_bound);
    // Eq. (6): alpha_high moves to keep sum alpha_i y_i = 0.
    const real_t a_hi_new = a_hi_old + s * (a_lo_old - a_lo_new);

    alpha_[static_cast<std::size_t>(lo)] = a_lo_new;
    alpha_[static_cast<std::size_t>(hi)] = a_hi_new;

    // Eq. (4): rank-2 update of every optimality indicator.
    const real_t d_hi = (a_hi_new - a_hi_old) * y_hi;
    const real_t d_lo = (a_lo_new - a_lo_old) * y_lo;
    real_t* __restrict f = f_.data();
    const real_t* __restrict kh = k_high.data();
    const real_t* __restrict kl = k_low.data();
    for (index_t i = 0; i < n_; ++i) {
      f[i] += d_hi * kh[i] + d_lo * kl[i];
    }

    // Pipeline: hand the predicted next working set to the cache's worker
    // while this thread goes on to selection. Purely a cache warmer — the
    // chosen pair and the iterates are identical with or without it.
    if (params_.prefetch_rows > 0) {
      const std::vector<index_t> next =
          predict_candidates(params_.prefetch_rows);
      if (!next.empty()) cache_->prefetch(next);
    }

    ++iter;
    if (tracing && iter % gap_interval == 0) {
      trace::emit_counter("svm.smo.kkt_gap", sel.b_low - sel.b_high);
    }
    if (params_.on_trace && iter % std::max<index_t>(1, params_.trace_interval) == 0) {
      IterationTrace trace;
      trace.iteration = iter;
      trace.b_high = sel.b_high;
      trace.b_low = sel.b_low;
      trace.objective = current_objective();
      params_.on_trace(trace);
    }
    if (params_.on_checkpoint && params_.checkpoint_interval > 0 &&
        iter % params_.checkpoint_interval == 0) {
      params_.on_checkpoint(checkpoint(iter));
    }
    if (params_.shrinking && iter % params_.shrink_interval == 0) {
      shrink(sel);
    }
  }

  // Bias: midpoint of the final optimality interval. Degenerate problems
  // (selection failed before the first step) fall back to rho = 0.
  rho_ = (std::isfinite(sel.b_high) && std::isfinite(sel.b_low))
             ? (sel.b_high + sel.b_low) / 2.0
             : 0.0;

  stats.iterations = iter;
  stats.b_high = sel.b_high;
  stats.b_low = sel.b_low;

  stats.objective = current_objective();
  stats.kernel_rows_computed = 0;  // filled by caller from the engine
  stats.cache_hit_rate = cache_->hit_rate();
  stats.pipeline_hits = cache_->pipeline_hits();
  stats.pipeline_misses = cache_->pipeline_misses();
  for (real_t a : alpha_) {
    if (a > kBoundEps) ++stats.support_vectors;
  }

  metrics::counter_add("svm.smo.iterations_total", iter - resume_iteration_);
  if (metrics::enabled()) {
    metrics::gauge_set("svm.smo.converged", stats.converged ? 1.0 : 0.0);
    metrics::gauge_set("svm.smo.objective", stats.objective);
    metrics::gauge_set("svm.smo.support_vectors",
                       static_cast<double>(stats.support_vectors));
    metrics::gauge_set("svm.smo.final_kkt_gap", sel.b_low - sel.b_high);
  }
  return stats;
}

}  // namespace ls
