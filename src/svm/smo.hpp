// SMO (Sequential Minimal Optimization) solver for the binary-class SVM
// dual QP — the paper's Algorithm 1.
//
// State per sample i: the Lagrange multiplier alpha_i in [0, C] and the
// optimality indicator f_i = sum_j alpha_j y_j K(X_i, X_j) - y_i (Eq. 3).
// Each iteration selects a maximally-violating pair (high, low), solves the
// 2-variable subproblem analytically (Eqs. 5-6 with box clipping) and
// updates all f values with the two freshly computed kernel rows (Eq. 4).
// Convergence: b_low <= b_high + 2 * tolerance.
//
// Two working-set selection policies are provided:
//  * kFirstOrder  — Algorithm 1 verbatim (argmin/argmax of f);
//  * kSecondOrder — Fan/Chen/Lin's WSS2 (maximal gain using the kernel
//    diagonal), LIBSVM's default; usually converges in fewer iterations.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "svm/cache.hpp"
#include "svm/kernel.hpp"

namespace ls {

/// Snapshot passed to the optional per-iteration trace callback.
struct IterationTrace {
  index_t iteration = 0;
  real_t b_high = 0.0;
  real_t b_low = 0.0;
  /// Optimality gap b_low - b_high; convergence when <= 2 * tolerance.
  real_t gap() const { return b_low - b_high; }
  double objective = 0.0;  ///< current dual objective (maximised form)
};

/// Working-set selection policy.
enum class WssPolicy {
  kFirstOrder,   ///< maximal violating pair (paper Algorithm 1)
  kSecondOrder,  ///< second-order gain (Fan et al. 2005, LIBSVM default)
};

/// Complete resumable solver state. alpha and f are the only persistent
/// state SMO carries between iterations (the kernel cache is a pure
/// memoisation and the active set a recomputable optimisation), so a
/// solver restored from a checkpoint continues on the exact trajectory the
/// checkpointed run would have taken. File IO lives in svm/checkpoint.hpp.
struct SmoCheckpoint {
  index_t iteration = 0;
  std::vector<real_t> alpha;
  std::vector<real_t> f;  ///< optimality indicators f_i = y_i * grad_i
};

/// Solver parameters.
struct SvmParams {
  KernelParams kernel;
  real_t c = 1.0;            ///< box constraint C
  /// Per-class C multipliers (LIBSVM's -w option): samples with y = +1 get
  /// C * weight_positive, y = -1 get C * weight_negative. Raising the
  /// minority class's weight counters class imbalance.
  real_t weight_positive = 1.0;
  real_t weight_negative = 1.0;
  real_t tolerance = 1e-3;   ///< KKT tolerance (LIBSVM default)
  index_t max_iterations = 0;  ///< 0 = automatic (200 n + 20000)
  WssPolicy wss = WssPolicy::kSecondOrder;
  std::size_t cache_bytes = 64ull << 20;  ///< kernel row cache budget
  /// Double-buffered pipeline: after each iteration, the `prefetch_rows`
  /// most-violating candidate rows for the *next* working set are computed
  /// in the background (one batched SMSV) while the solver consumes the
  /// current pair. 0 disables the pipeline. Does not change the iterates:
  /// prefetching only warms the cache.
  index_t prefetch_rows = 0;
  bool shrinking = false;    ///< periodically drop certainly-bound samples
  index_t shrink_interval = 1000;
  /// Optional convergence trace, invoked every `trace_interval` iterations
  /// (computing the objective costs O(n) per call).
  std::function<void(const IterationTrace&)> on_trace;
  index_t trace_interval = 1;
  /// Fault tolerance: when set, invoked with a resumable snapshot every
  /// `checkpoint_interval` iterations (0 disables). The trainer facade
  /// wires this to an atomic checkpoint file when `checkpoint_path` is
  /// non-empty, and resumes from that file if a valid one already exists.
  std::function<void(const SmoCheckpoint&)> on_checkpoint;
  index_t checkpoint_interval = 0;
  std::string checkpoint_path;
};

/// Solver outcome statistics.
struct SolveStats {
  index_t iterations = 0;
  double objective = 0.0;   ///< dual objective F(alpha), Eq. (1)
  real_t b_high = 0.0;
  real_t b_low = 0.0;
  bool converged = false;
  std::int64_t kernel_rows_computed = 0;
  double cache_hit_rate = 0.0;
  std::int64_t pipeline_hits = 0;    ///< prefetched rows later served
  std::int64_t pipeline_misses = 0;  ///< prefetched rows evicted unused
  index_t support_vectors = 0;
};

/// SMO solver over a cached kernel-row source.
///
/// Solves the generic dual  min 1/2 a' Q a + p' a  s.t.  y' a = 0,
/// 0 <= a_i <= C, with Q_ij = y_i y_j K_ij — LIBSVM's Solver form. The
/// classification problem of the paper is p = -1 (the default); epsilon-SVR
/// reduces to the same solver with a duplicated kernel and p = eps -+ z
/// (see svr.hpp).
class SmoSolver {
 public:
  /// Classification form: p_i = -1. `cache` and `y` must outlive the
  /// solver; y[i] must be +1 or -1.
  SmoSolver(KernelCache& cache, std::span<const real_t> y,
            const SvmParams& params);

  /// Generic form with an explicit linear term (LIBSVM's p vector).
  /// `p` must match y's length and outlive the solver.
  SmoSolver(KernelCache& cache, std::span<const real_t> y,
            std::span<const real_t> p, const SvmParams& params);

  /// Runs the optimisation to convergence (or the iteration cap).
  SolveStats solve();

  /// Snapshot of the current resumable state.
  SmoCheckpoint checkpoint(index_t iteration = 0) const;

  /// Restores a snapshot taken from an identical problem (same data,
  /// labels and parameters); solve() then continues from its iteration
  /// count. Throws ls::Error when the snapshot's size does not match.
  void restore(const SmoCheckpoint& ck);

  /// Seeds the solver from a previous solution's alpha vector — the
  /// continuous trainer's warm start across sliding-window retrains. Unlike
  /// restore(), the seed need not come from *this* problem: each alpha is
  /// clipped to its box [0, C_i], the equality constraint sum_i a_i y_i = 0
  /// is repaired (evicted support vectors leave a residual, which is bled
  /// off the over-represented class starting with its smallest seeds), and
  /// the optimality indicators f are recomputed exactly from one kernel row
  /// per surviving support vector. solve() then continues from a feasible
  /// point that is near-optimal when the windows overlap, converging in far
  /// fewer iterations than a cold start; iteration counting restarts at 0
  /// so SolveStats measures the warm-started work. Returns the number of
  /// nonzero seeded alphas. `alphas` must have length n (zeros for new
  /// samples).
  index_t warm_start(std::span<const real_t> alphas);

  std::span<const real_t> alpha() const { return alpha_; }

  /// Bias so that decision(x) = sum_i alpha_i y_i K(X_i, x) - rho.
  real_t rho() const { return rho_; }

 private:
  struct Selection {
    index_t high = -1;
    index_t low = -1;
    real_t b_high = 0.0;
    real_t b_low = 0.0;
  };

  bool in_i_high(index_t i) const;
  bool in_i_low(index_t i) const;

  /// Selects high and b_high/b_low over the active set. Returns false if
  /// either index set is empty (degenerate: everything at bounds).
  bool select_high(Selection& sel) const;

  /// Selects low: first-order (argmax f) or second-order (max gain, needs
  /// the K_high row).
  bool select_low(Selection& sel, std::span<const real_t> k_high) const;

  /// Predicts the rows the next iteration's selection is most likely to
  /// touch: the strongest I_high violators (smallest f) and I_low violators
  /// (largest f), up to `count` rows total. Used to drive cache prefetch.
  std::vector<index_t> predict_candidates(index_t count) const;

  /// Shrinks the active set using current b_high / b_low estimates.
  void shrink(const Selection& sel);

  /// Restores all samples to the active set.
  void unshrink();

  /// Current dual objective (maximised form), O(n).
  double current_objective() const;

  KernelCache* cache_;
  std::span<const real_t> y_;
  std::span<const real_t> p_;  // empty = classification (p_i = -1)
  SvmParams params_;
  index_t n_ = 0;

  std::vector<real_t> alpha_;
  std::vector<real_t> f_;
  std::vector<index_t> active_;  // indices currently considered by selection
  bool fully_active_ = true;
  bool unshrunk_once_ = false;
  real_t rho_ = 0.0;
  index_t resume_iteration_ = 0;  // starting iteration after restore()

  /// Per-sample box constraint C_i = C * class weight.
  real_t c_of(index_t i) const {
    return params_.c * (y_[static_cast<std::size_t>(i)] > 0
                            ? params_.weight_positive
                            : params_.weight_negative);
  }

  bool at_lower(index_t i) const { return alpha_[static_cast<std::size_t>(i)] <= kBoundEps; }
  bool at_upper(index_t i) const {
    return alpha_[static_cast<std::size_t>(i)] >= c_of(i) - kBoundEps;
  }

  static constexpr real_t kBoundEps = 1e-12;
  static constexpr real_t kEtaFloor = 1e-12;
};

}  // namespace ls
