#include "svm/svr.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "svm/cache.hpp"
#include "svm/kernel_engine.hpp"

namespace ls {

DuplicatedKernelSource::DuplicatedKernelSource(RowKernelSource& base)
    : base_(&base) {
  scratch_.resize(static_cast<std::size_t>(base.num_rows()));
}

void DuplicatedKernelSource::compute_row(index_t i, std::span<real_t> out) {
  const index_t n = base_->num_rows();
  LS_CHECK(out.size() == static_cast<std::size_t>(2 * n),
           "duplicated kernel row buffer size mismatch");
  ++rows_computed_;
  base_->compute_row(i % n, scratch_);
  std::copy(scratch_.begin(), scratch_.end(), out.begin());
  std::copy(scratch_.begin(), scratch_.end(),
            out.begin() + static_cast<std::ptrdiff_t>(n));
}

real_t SvrModel::predict(const SparseVector& x) const {
  const real_t norm_x = x.squared_norm();
  real_t sum = 0.0;
  for (std::size_t k = 0; k < support_vectors.size(); ++k) {
    const SparseVector& sv = support_vectors[k];
    sum += coef[k] * kernel_from_dot(kernel, sv.dot_sparse(x),
                                     sv.squared_norm(), norm_x);
  }
  return sum - rho;
}

double SvrModel::mse(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.rows() > 0, "cannot score an empty dataset");
  double err = 0.0;
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    const double d = predict(row) - ds.y[static_cast<std::size_t>(i)];
    err += d * d;
  }
  return err / static_cast<double>(ds.rows());
}

double SvrModel::mae(const Dataset& ds) const {
  ds.validate();
  LS_CHECK(ds.rows() > 0, "cannot score an empty dataset");
  double err = 0.0;
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    err += std::abs(predict(row) - ds.y[static_cast<std::size_t>(i)]);
  }
  return err / static_cast<double>(ds.rows());
}

SvrResult train_svr(const Dataset& ds, const SvrParams& params,
                    const SchedulerOptions& sched) {
  ds.validate();
  LS_CHECK(params.epsilon >= 0, "epsilon must be non-negative");
  Timer timer;

  // Layout scheduling on the data matrix, exactly as in classification.
  const LayoutScheduler scheduler(sched);
  ScheduleDecision decision = scheduler.decide(ds.X);
  const AnyMatrix x = scheduler.materialize(ds.X, decision);

  // LIBSVM's 2n-variable reduction.
  const index_t n = ds.rows();
  std::vector<real_t> big_y(static_cast<std::size_t>(2 * n));
  std::vector<real_t> big_p(static_cast<std::size_t>(2 * n));
  for (index_t i = 0; i < n; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    big_y[iu] = 1.0;
    big_y[iu + static_cast<std::size_t>(n)] = -1.0;
    big_p[iu] = params.epsilon - ds.y[iu];
    big_p[iu + static_cast<std::size_t>(n)] = params.epsilon + ds.y[iu];
  }

  FormatKernelEngine base(x, params.svm.kernel);
  DuplicatedKernelSource engine(base);
  KernelCache cache(engine, params.svm.cache_bytes);
  SmoSolver solver(cache, big_y, big_p, params.svm);
  SolveStats stats = solver.solve();
  stats.kernel_rows_computed = engine.rows_computed();

  // beta_i = a_i - a*_i; rho transfers directly (decision uses sum beta K
  // - rho, and the solver's rho is the midpoint of the optimality
  // interval in the same convention as classification).
  SvrResult result;
  result.model.kernel = params.svm.kernel;
  result.model.rho = solver.rho();
  result.model.num_features = ds.cols();
  SparseVector row;
  for (index_t i = 0; i < n; ++i) {
    const real_t beta =
        solver.alpha()[static_cast<std::size_t>(i)] -
        solver.alpha()[static_cast<std::size_t>(i + n)];
    if (beta == 0.0) continue;
    ds.X.gather_row(i, row);
    result.model.support_vectors.push_back(row);
    result.model.coef.push_back(beta);
  }
  result.stats = stats;
  result.decision = std::move(decision);
  result.total_seconds = timer.seconds();
  return result;
}

}  // namespace ls
