// Epsilon support-vector regression.
//
// Section II-A: "The data structure of the regression problem is identical
// to that of the classification problem. The only difference is that
// y_i is real-valued." SVR therefore benefits from layout scheduling in
// exactly the same way — the bottleneck is still one SMSV per kernel row.
//
// The dual is solved with the generic SmoSolver via LIBSVM's 2n-variable
// reduction: variables (a_1..a_n, a*_1..a*_n) with signs y = (+1^n, -1^n),
// kernel Q_ij = K(x_{i mod n}, x_{j mod n}) (a DuplicatedKernelSource on
// top of the format engine), and linear term p = (eps - z, eps + z) for
// targets z. The regressor is f(x) = sum_i beta_i K(x_i, x) - rho with
// beta_i = a_i - a*_i.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "sched/scheduler.hpp"
#include "svm/model.hpp"
#include "svm/smo.hpp"

namespace ls {

/// SVR solver parameters: the SMO parameters plus the epsilon tube.
struct SvrParams {
  SvmParams svm;
  real_t epsilon = 0.1;  ///< half-width of the insensitive tube
};

/// Trained regression model: f(x) = sum coef_i K(sv_i, x) - rho.
struct SvrModel {
  KernelParams kernel;
  real_t rho = 0.0;
  index_t num_features = 0;
  std::vector<SparseVector> support_vectors;
  std::vector<real_t> coef;  ///< beta_i = a_i - a*_i (nonzero only)

  /// Predicted real value for a sparse sample.
  real_t predict(const SparseVector& x) const;

  /// Mean squared error over a dataset with real-valued labels.
  double mse(const Dataset& ds) const;

  /// Mean absolute error over a dataset with real-valued labels.
  double mae(const Dataset& ds) const;
};

/// Regression training report.
struct SvrResult {
  SvrModel model;
  SolveStats stats;
  ScheduleDecision decision;
  double total_seconds = 0.0;
};

/// Trains epsilon-SVR with runtime data-layout scheduling. `ds.y` holds the
/// real-valued regression targets.
SvrResult train_svr(const Dataset& ds, const SvrParams& params,
                    const SchedulerOptions& sched = {});

/// Kernel-row source over the 2n-variable duplicated problem: row i of the
/// big matrix is row (i mod n) of the base source, tiled twice. Exposed for
/// the unit tests.
class DuplicatedKernelSource : public RowKernelSource {
 public:
  explicit DuplicatedKernelSource(RowKernelSource& base);

  index_t num_rows() const override { return 2 * base_->num_rows(); }
  void compute_row(index_t i, std::span<real_t> out) override;
  real_t diagonal(index_t i) const override {
    return base_->diagonal(i % base_->num_rows());
  }

 private:
  RowKernelSource* base_;
  std::vector<real_t> scratch_;
};

}  // namespace ls
