#include "svm/trainer.hpp"

#include <numeric>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "svm/batch_predict.hpp"
#include "svm/checkpoint.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/reschedule.hpp"

namespace ls {

namespace {

TrainResult run_solver(const AnyMatrix& x, const Dataset& ds,
                       const SvmParams& params, RowKernelSource& engine,
                       ScheduleDecision decision, double schedule_seconds) {
  Timer solve_timer;
  KernelCache cache(engine, params.cache_bytes);

  // Fault tolerance: with a checkpoint path configured, persist a snapshot
  // every checkpoint_interval iterations and resume from an existing valid
  // one. Corrupt or mismatched snapshot files are ignored (fresh start).
  SvmParams solver_params = params;
  if (!params.checkpoint_path.empty()) {
    if (solver_params.checkpoint_interval <= 0) {
      solver_params.checkpoint_interval = 1000;
    }
    const std::string path = params.checkpoint_path;
    const auto user_hook = params.on_checkpoint;
    solver_params.on_checkpoint = [path, user_hook](const SmoCheckpoint& ck) {
      save_smo_checkpoint(path, ck);
      if (user_hook) user_hook(ck);
    };
  }

  SmoSolver solver(cache, ds.y, solver_params);
  if (!params.checkpoint_path.empty()) {
    if (const auto ck =
            try_load_smo_checkpoint(params.checkpoint_path, ds.rows())) {
      solver.restore(*ck);
    }
  }
  SolveStats stats = solver.solve();
  stats.kernel_rows_computed = engine.rows_computed();
  if (!params.checkpoint_path.empty() && stats.converged) {
    remove_checkpoint(params.checkpoint_path);
  }

  TrainResult result;
  result.model =
      build_model(x, ds.y, solver.alpha(), solver.rho(), params.kernel);
  result.stats = stats;
  result.decision = std::move(decision);
  result.schedule_seconds = schedule_seconds;
  result.solve_seconds = solve_timer.seconds();
  result.total_seconds = schedule_seconds + result.solve_seconds;

  record_decision_metrics(result.decision);
  if (metrics::enabled()) {
    metrics::timer_record("svm.train.schedule_seconds", schedule_seconds);
    metrics::timer_record("svm.train.total_seconds", result.total_seconds);
    metrics::counter_add("svm.cache.hits_total", cache.hits());
    metrics::counter_add("svm.cache.misses_total", cache.misses());
    metrics::counter_add("svm.kernel_rows_computed_total",
                         stats.kernel_rows_computed);
    metrics::gauge_set("svm.cache.hit_rate", cache.hit_rate());
  }
  return result;
}

}  // namespace

TrainResult train_adaptive(const Dataset& ds, const SvmParams& params,
                           const SchedulerOptions& sched) {
  ds.validate();
  Timer sched_timer;
  const LayoutScheduler scheduler(sched);
  ScheduleDecision decision = scheduler.decide(ds.X);
  const AnyMatrix x = scheduler.materialize_or_degrade(ds.X, decision);
  const double schedule_seconds = sched_timer.seconds();

  FormatKernelEngine engine(x, params.kernel);
  return run_solver(x, ds, params, engine, std::move(decision),
                    schedule_seconds);
}

TrainResult train_fixed_format(const Dataset& ds, const SvmParams& params,
                               Format format) {
  ds.validate();
  Timer sched_timer;
  ScheduleDecision decision;
  decision.format = format;
  decision.rationale =
      "fixed format (non-adaptive): " + std::string(format_name(format));
  const AnyMatrix x = AnyMatrix::from_coo(ds.X, format);
  const double schedule_seconds = sched_timer.seconds();

  FormatKernelEngine engine(x, params.kernel);
  return run_solver(x, ds, params, engine, std::move(decision),
                    schedule_seconds);
}

TrainResult train_libsvm_baseline(const Dataset& ds, const SvmParams& params) {
  ds.validate();
  Timer sched_timer;
  ScheduleDecision decision;
  decision.format = Format::kCSR;
  decision.rationale = "LIBSVM baseline: fixed CSR, merge-join dot kernel";
  // The baseline still needs an AnyMatrix for model extraction.
  const AnyMatrix x = AnyMatrix::from_coo(ds.X, Format::kCSR);
  const double schedule_seconds = sched_timer.seconds();

  LibsvmKernelEngine engine(ds.X, params.kernel);
  return run_solver(x, ds, params, engine, std::move(decision),
                    schedule_seconds);
}

TrainResult train_reschedulable(const Dataset& ds, const SvmParams& params,
                                Format initial,
                                const RescheduleOptions& reschedule) {
  ds.validate();
  Timer solve_timer;
  ReschedulingKernelEngine engine(ds.X, params.kernel, initial, reschedule);
  KernelCache cache(engine, params.cache_bytes);
  SmoSolver solver(cache, ds.y, params);
  SolveStats stats = solver.solve();
  stats.kernel_rows_computed = engine.rows_computed();

  // Model extraction needs a matrix view; use the engine's final layout.
  const AnyMatrix x = AnyMatrix::from_coo(ds.X, engine.current_format());

  TrainResult result;
  result.model =
      build_model(x, ds.y, solver.alpha(), solver.rho(), params.kernel);
  result.stats = stats;
  result.decision.format = engine.current_format();
  result.decision.rationale =
      "runtime rescheduling: started " + std::string(format_name(initial)) +
      ", finished " + std::string(format_name(engine.current_format())) +
      " (" + std::to_string(engine.switches()) + " re-evaluation(s))";
  result.solve_seconds = solve_timer.seconds();
  result.total_seconds = result.solve_seconds;

  record_decision_metrics(result.decision);
  if (metrics::enabled()) {
    metrics::timer_record("svm.train.total_seconds", result.total_seconds);
    metrics::counter_add("svm.cache.hits_total", cache.hits());
    metrics::counter_add("svm.cache.misses_total", cache.misses());
    metrics::counter_add("svm.kernel_rows_computed_total",
                         stats.kernel_rows_computed);
    metrics::gauge_set("svm.cache.hit_rate", cache.hit_rate());
  }
  return result;
}

double cross_validate(const Dataset& ds, const SvmParams& params, int folds,
                      std::uint64_t seed) {
  ds.validate();
  LS_CHECK(folds >= 2, "cross validation needs at least 2 folds");
  LS_CHECK(ds.rows() >= folds, "fewer samples than folds");

  std::vector<index_t> ids(static_cast<std::size_t>(ds.rows()));
  std::iota(ids.begin(), ids.end(), index_t{0});
  Rng rng(seed);
  shuffle(ids.begin(), ids.end(), rng);

  double weighted_accuracy = 0.0;
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<index_t> train_ids, test_ids;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (static_cast<int>(k % static_cast<std::size_t>(folds)) == fold) {
        test_ids.push_back(ids[k]);
      } else {
        train_ids.push_back(ids[k]);
      }
    }
    const Dataset train = ds.subset(train_ids, ".cv_train");
    const Dataset test = ds.subset(test_ids, ".cv_test");
    const TrainResult result = train_adaptive(train, params);
    // Score the fold block-wise (one batched SMSV per block of test rows)
    // instead of per-row merge joins. A model with no support vectors
    // cannot build an SV matrix — fall back to the per-row path.
    double fold_accuracy;
    if (result.model.support_vectors.empty()) {
      fold_accuracy = result.model.accuracy(test);
    } else {
      fold_accuracy = BatchPredictor(result.model).accuracy(test);
    }
    weighted_accuracy += fold_accuracy * static_cast<double>(test_ids.size());
  }
  return weighted_accuracy / static_cast<double>(ds.rows());
}

}  // namespace ls
