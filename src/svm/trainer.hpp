// High-level training entry points: the adaptive trainer (layout scheduling
// + SMSV kernel engine) and the LIBSVM-style baseline, plus k-fold cross
// validation. This is the facade the examples and benches call.
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "sched/scheduler.hpp"
#include "svm/model.hpp"
#include "svm/smo.hpp"

namespace ls {

/// Everything a training run reports.
struct TrainResult {
  SvmModel model;
  SolveStats stats;
  ScheduleDecision decision;   ///< which layout was chosen and why
  double schedule_seconds = 0.0;  ///< time spent deciding + materialising
  double solve_seconds = 0.0;     ///< SMO wall time
  double total_seconds = 0.0;
};

/// Trains a binary SVM with runtime data-layout scheduling (the paper's
/// adaptive system). Labels must be +-1.
TrainResult train_adaptive(const Dataset& ds, const SvmParams& params,
                           const SchedulerOptions& sched = {});

/// Trains with a fixed storage format and our SMSV engine (the
/// "non-adaptive case" the paper compares against, e.g. worst format).
TrainResult train_fixed_format(const Dataset& ds, const SvmParams& params,
                               Format format);

/// Trains with the LIBSVM-equivalent engine: fixed CSR, per-pair merge-join
/// dot products, second-order WSS (the Fig. 7 baseline).
TrainResult train_libsvm_baseline(const Dataset& ds, const SvmParams& params);

/// Trains with mid-run layout re-scheduling: starts from `initial` and lets
/// the ReschedulingKernelEngine switch formats once training exposes the
/// real access costs (see svm/reschedule.hpp). The decision recorded in the
/// result reflects the *final* format.
struct RescheduleOptions;  // svm/reschedule.hpp
TrainResult train_reschedulable(const Dataset& ds, const SvmParams& params,
                                Format initial,
                                const RescheduleOptions& reschedule);

/// k-fold cross-validation accuracy of the adaptive trainer.
double cross_validate(const Dataset& ds, const SvmParams& params, int folds,
                      std::uint64_t seed = 1234);

}  // namespace ls
