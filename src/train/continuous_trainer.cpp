#include "train/continuous_trainer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <utility>

#include <unistd.h>

#include "common/error.hpp"
#include "common/fs_atomic.hpp"
#include "common/metrics.hpp"
#include "formats/any_matrix.hpp"
#include "serve/client.hpp"
#include "svm/cache.hpp"
#include "svm/checkpoint.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/model.hpp"
#include "svm/serialize.hpp"
#include "train/journal.hpp"

namespace ls::train {

namespace {

/// Sidecar recording which example ids a mid-solve checkpoint was taken
/// against. A restored SMO snapshot is only valid for the exact problem it
/// was saved from; after a crash the window refills from the stream, and
/// resuming against different rows would silently corrupt the solve. The
/// sidecar makes the match checkable across process restarts (ids are
/// deterministic: the k-th append to a fresh window always gets id k).
std::string ids_sidecar_path(const std::string& ck_path) {
  return ck_path + ".ids";
}

std::string encode_ids(const WindowSnapshot& snap) {
  std::ostringstream os;
  for (std::int64_t id : snap.ids) os << id << '\n';
  // The content digest guards the case the ids alone cannot: a replayed
  // stream of the same length but different examples reuses ids 0..n-1,
  // and resuming a checkpoint against those rows would silently corrupt
  // the solve.
  os << "digest " << std::hex << snap.digest << '\n';
  return os.str();
}

bool sidecar_matches(const std::string& ck_path,
                     const WindowSnapshot& snap) {
  try {
    return read_file_verified(ids_sidecar_path(ck_path)) == encode_ids(snap);
  } catch (const std::exception&) {
    return false;  // missing or corrupt sidecar: no resume
  }
}

}  // namespace

ContinuousTrainer::ContinuousTrainer(TrainerOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.checkpoint_interval <= 0) opts_.checkpoint_interval = 256;
  if (opts_.retrain_interval_ms <= 0) opts_.retrain_interval_ms = 1000.0;
}

ContinuousTrainer::~ContinuousTrainer() { stop(); }

void ContinuousTrainer::add_model(const TrainerModelConfig& cfg) {
  LS_CHECK(!cfg.name.empty(), "trainer model needs a name");
  LS_CHECK(!cfg.model_path.empty(),
           "trainer model '" << cfg.name << "' needs a model_path");
  TrainerModelConfig full = cfg;
  if (full.checkpoint_path.empty()) {
    full.checkpoint_path = full.model_path + ".ckpt";
  }
  // Key copied before the move: emplace constructs its pair only after
  // both arguments are evaluated, so `full.name` would read a moved-from
  // string.
  const std::string key = full.name;
  auto state = std::make_shared<ModelState>(std::move(full));
  // Replay the ingest journal before the model becomes reachable by
  // ingest/train traffic — the rebuilt window must be whole before the
  // first post-restart example lands on top of it.
  open_journal(*state);
  std::lock_guard<std::mutex> lk(models_mu_);
  LS_CHECK(models_.find(key) == models_.end(),
           "trainer model '" << key << "' already registered");
  models_.emplace(key, std::move(state));
}

void ContinuousTrainer::open_journal(ModelState& st) {
  if (st.cfg.wal_dir.empty()) return;
  st.stats.journal_enabled = true;
  // Finish an interrupted re-arm swap (rearm_journal died between its two
  // renames): the side rewrite is only ever complete once the main
  // directory has been moved aside, so promote it when the main one is
  // missing (the rename fails against a populated main directory);
  // otherwise it is a dead partial rewrite. The `.stale` pre-outage copy
  // is superseded either way.
  {
    const std::string side = st.cfg.wal_dir + ".rearm";
    if (std::rename(side.c_str(), st.cfg.wal_dir.c_str()) != 0) {
      WriteAheadLog::remove_dir(side);
    }
    WriteAheadLog::remove_dir(st.cfg.wal_dir + ".stale");
  }
  WalOptions wopts;
  wopts.segment_bytes = opts_.wal_segment_bytes;
  // Twice the window in records: digest checkpoints ride in the same
  // stream, and retention must never drop an example the window still
  // holds. Replay of a retained suffix rebuilds the full window since at
  // least window_capacity of the retained records are examples.
  wopts.retain_records = st.cfg.window_capacity * 2;
  wopts.sync = opts_.wal_sync;

  for (int attempt = 0; attempt < 2; ++attempt) {
    std::int64_t replayed = 0;
    std::int64_t first_id = -1;  // first replayed example's window id
    const auto replay = [&](std::string_view payload) {
      JournalRecord r;
      try {
        r = decode_journal_record(payload);
      } catch (const Error& e) {
        // CRC-valid but undecodable: the journal lies about itself.
        throw WalCorruption(std::string("journal record undecodable: ") +
                            e.what());
      }
      if (r.type == JournalRecordType::kExample) {
        if (r.window_id < st.window.total_appended()) {
          throw WalCorruption("journal window ids regress at id " +
                              std::to_string(r.window_id));
        }
        if (first_id < 0) first_id = r.window_id;
        st.window.restore(r.window_id, std::move(r.x), r.label, r.client_id);
        remember_dedup(st, r.client_id);
        ++replayed;
        return;
      }
      // Digest checkpoint: always verifiable against the id cursor; size
      // and content only when replay has seen the checkpoint's whole
      // window (retention may have started us mid-stream).
      if (first_id < 0) return;  // checkpoint precedes any replayed example
      if (st.window.total_appended() != r.next_window_id) {
        throw WalCorruption(
            "journal digest checkpoint expects next window id " +
            std::to_string(r.next_window_id) + ", replay is at " +
            std::to_string(st.window.total_appended()));
      }
      const bool full_view =
          first_id <= r.next_window_id - static_cast<std::int64_t>(r.window_size);
      if (full_view && (st.window.size() != r.window_size ||
                        st.window.content_digest() != r.digest)) {
        throw WalCorruption(
            "journal digest mismatch: rebuilt window does not reproduce "
            "the journaled fingerprint");
      }
    };

    try {
      st.wal = std::make_unique<WriteAheadLog>(st.cfg.wal_dir, wopts, replay);
      st.stats.journal_replayed = replayed;
      st.stats.journal_degraded = false;
      // Replayed examples count as news: a trainer killed after acking a
      // burst but before saving a model must fold that backlog into a
      // model on its first cadence tick, not wait for fresh traffic.
      st.new_since_train += replayed;
      if (replayed > 0) {
        metrics::counter_add("train.journal.replayed_total", replayed);
      }
      return;
    } catch (const WalCorruption&) {
      // Quarantine, don't brick: set the damaged journal aside for
      // forensics and start fresh. Availability beats completeness here —
      // the examples are gone either way; refusing to start loses the
      // model too.
      st.window = SlidingWindow(st.cfg.window_capacity);
      st.dedup.clear();
      st.dedup_order.clear();
      const std::string aside = st.cfg.wal_dir + ".corrupt." +
                                std::to_string(::getpid()) + "." +
                                std::to_string(attempt);
      ++st.stats.journal_quarantines_total;
      metrics::counter_add("train.journal.quarantines_total");
      if (std::rename(st.cfg.wal_dir.c_str(), aside.c_str()) != 0) break;
    } catch (const Error&) {
      // I/O failure opening the journal (unwritable disk, bad path):
      // serve memory-only and let the ingest path re-arm when it can.
      break;
    }
  }
  st.wal.reset();
  st.stats.journal_degraded = true;
  ++st.stats.journal_failures_total;
  metrics::counter_add("train.journal.failures_total");
}

std::shared_ptr<ContinuousTrainer::ModelState> ContinuousTrainer::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(models_mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

serve::Status ContinuousTrainer::ingest(const std::string& model,
                                        SparseVector x, real_t label,
                                        std::string* message,
                                        std::int64_t example_id) {
  const auto st = find(model);
  if (!st) {
    if (message) *message = "unknown model " + model;
    return serve::Status::kUnknownModel;
  }
  if (label != 1.0 && label != -1.0) {
    std::lock_guard<std::mutex> lk(st->mu);
    ++st->stats.rejected_labels;
    if (message) *message = "label must be +1 or -1";
    return serve::Status::kBadFrame;
  }
  {
    std::lock_guard<std::mutex> lk(st->mu);
    // Idempotency: a client id we have already accepted (in this process
    // or replayed from the journal) is a retry whose ack got lost — ack
    // it again, touch nothing.
    if (example_id >= 0 && st->dedup.count(example_id) != 0) {
      ++st->stats.duplicates_total;
      metrics::counter_add("train.ingest.duplicates_total");
      if (message) *message = "duplicate";
      return serve::Status::kOk;
    }
    // Journal before the in-memory append so the ack below never promises
    // more than the disk holds (under WalSyncPolicy::kAlways).
    journal_example(*st, st->window.total_appended(), example_id, label, x);
    st->window.append(std::move(x), label, example_id);
    remember_dedup(*st, example_id);
    journal_digest(*st);
    ++st->new_since_train;
    ++st->stats.ingested;
  }
  metrics::counter_add("train.ingested_total");
  if (message) *message = "ingested";
  // Wake the cadence thread: with min_new_examples satisfied it can
  // retrain before the next poll tick.
  run_cv_.notify_one();
  return serve::Status::kOk;
}

void ContinuousTrainer::remember_dedup(ModelState& st, std::int64_t client_id) {
  if (client_id < 0) return;
  if (!st.dedup.insert(client_id).second) return;
  st.dedup_order.push_back(client_id);
  // Bounded at 2x the window: a duplicate arriving later than that could
  // not have landed in the window anyway, so forgetting it is harmless.
  const std::size_t bound = st.cfg.window_capacity * 2;
  while (st.dedup_order.size() > bound) {
    st.dedup.erase(st.dedup_order.front());
    st.dedup_order.pop_front();
  }
}

void ContinuousTrainer::journal_example(ModelState& st, std::int64_t window_id,
                                        std::int64_t client_id, real_t label,
                                        const SparseVector& x) {
  if (!st.stats.journal_enabled) return;
  if (st.stats.journal_degraded && !rearm_journal(st)) return;
  try {
    st.wal->append(encode_journal_example(window_id, client_id, label, x));
  } catch (const std::exception&) {
    // Disk fault (ENOSPC/EIO, or their failpoint stand-ins): stay
    // available. The example lives on in memory, the ack still goes out,
    // and health/kModels surface the narrowed durability contract.
    st.stats.journal_degraded = true;
    ++st.stats.journal_failures_total;
    metrics::counter_add("train.journal.failures_total");
  }
}

void ContinuousTrainer::journal_digest(ModelState& st) {
  if (!st.stats.journal_enabled || st.stats.journal_degraded || !st.wal) {
    return;
  }
  const std::size_t every = opts_.wal_digest_interval;
  if (every == 0 ||
      st.window.total_appended() % static_cast<std::int64_t>(every) != 0) {
    return;
  }
  try {
    st.wal->append(encode_journal_digest(st.window.total_appended(),
                                         st.window.size(),
                                         st.window.content_digest()));
  } catch (const std::exception&) {
    st.stats.journal_degraded = true;
    ++st.stats.journal_failures_total;
    metrics::counter_add("train.journal.failures_total");
  }
}

bool ContinuousTrainer::rearm_journal(ModelState& st) {
  // One attempt per ingest while degraded: cheap when the disk is still
  // sick (the first append fails), a full journal rewrite when it healed.
  //
  // The rewrite goes to a side directory and is promoted by rename only
  // once it is complete. The live journal still holds a durable prefix of
  // the acked stream; rewriting it in place would gamble that prefix on
  // the rewrite succeeding, and a second failure would turn the degraded
  // mode's bounded loss into total loss of history. The cost is transient
  // double disk usage (at most the live window) — a disk with no room
  // even for that stays degraded with its prefix intact.
  WalOptions wopts;
  wopts.segment_bytes = opts_.wal_segment_bytes;
  wopts.retain_records = st.cfg.window_capacity * 2;
  wopts.sync = opts_.wal_sync;
  const std::string side = st.cfg.wal_dir + ".rearm";
  const std::string stale = st.cfg.wal_dir + ".stale";
  try {
    WriteAheadLog::remove_dir(side);  // leftovers of a failed attempt
    auto fresh = std::make_unique<WriteAheadLog>(side, wopts);
    st.window.for_each([&](std::int64_t id, std::int64_t client_id,
                           const SparseVector& x, real_t label) {
      fresh->append(encode_journal_example(id, client_id, label, x));
    });
    if (st.window.size() > 0) {
      fresh->append(encode_journal_digest(st.window.total_appended(),
                                          st.window.size(),
                                          st.window.content_digest()));
    }
    // Swap: both logs closed first so no fd outlives its directory's
    // rename. A crash between the renames is recovered by open_journal,
    // which promotes a complete side journal when the main one is gone.
    fresh.reset();
    st.wal.reset();
    WriteAheadLog::remove_dir(stale);
    if (std::rename(st.cfg.wal_dir.c_str(), stale.c_str()) != 0 &&
        errno != ENOENT) {
      throw Error("rearm: cannot move stale journal aside: " +
                  std::string(std::strerror(errno)));
    }
    if (std::rename(side.c_str(), st.cfg.wal_dir.c_str()) != 0) {
      const int err = errno;
      // Put the stale prefix back: the next restart must still replay it.
      std::rename(stale.c_str(), st.cfg.wal_dir.c_str());
      throw Error("rearm: cannot promote rewritten journal: " +
                  std::string(std::strerror(err)));
    }
    WriteAheadLog::remove_dir(stale);
    st.wal = std::make_unique<WriteAheadLog>(st.cfg.wal_dir, wopts);
  } catch (const std::exception&) {
    ++st.stats.journal_failures_total;
    metrics::counter_add("train.journal.failures_total");
    return false;
  }
  st.stats.journal_degraded = false;
  ++st.stats.journal_rearms_total;
  metrics::counter_add("train.journal.rearms_total");
  return true;
}

bool ContinuousTrainer::journal_degraded() const {
  std::lock_guard<std::mutex> lk(models_mu_);
  for (const auto& [name, st] : models_) {
    std::lock_guard<std::mutex> mlk(st->mu);
    if (st->stats.journal_degraded) return true;
  }
  return false;
}

void ContinuousTrainer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    stopping_ = false;
  }
  cadence_ = std::thread([this] { cadence_loop(); });
}

void ContinuousTrainer::stop() {
  {
    std::lock_guard<std::mutex> lk(run_mu_);
    stopping_ = true;
  }
  run_cv_.notify_all();
  if (cadence_.joinable()) cadence_.join();
  running_.store(false);
}

void ContinuousTrainer::cadence_loop() {
  // steady_clock throughout: a wall-clock jump (NTP step, suspend) must
  // neither stall the retrain cadence nor double-fire it.
  const auto interval =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              opts_.retrain_interval_ms));
  const auto poll = std::min(
      interval / 4,
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::milliseconds(50)));
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(run_mu_);
      run_cv_.wait_for(lk, std::max(poll, interval / 16),
                       [this] { return stopping_; });
      if (stopping_) return;
    }
    std::vector<std::string> due;
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lk(models_mu_);
      for (const auto& [name, st] : models_) {
        std::lock_guard<std::mutex> mlk(st->mu);
        if (st->new_since_train <
            static_cast<std::int64_t>(opts_.min_new_examples)) {
          continue;
        }
        if (now - st->last_train < interval) continue;
        due.push_back(name);
      }
    }
    for (const std::string& name : due) {
      if (running_.load(std::memory_order_acquire)) train_once(name);
    }
  }
}

bool ContinuousTrainer::train_once(const std::string& name) {
  const auto st = find(name);
  if (!st) return false;
  training_.fetch_add(1, std::memory_order_acq_rel);
  struct Release {
    std::atomic<int>* c;
    ~Release() { c->fetch_sub(1, std::memory_order_acq_rel); }
  } release{&training_};

  // Snapshot under the model lock, solve off it: ingest keeps flowing
  // while the solver runs. The rows that arrive mid-solve are counted by
  // new_since_train and picked up by the next cadence tick.
  WindowSnapshot snap;
  std::vector<std::int64_t> prev_ids;
  std::vector<real_t> prev_alpha;
  {
    std::lock_guard<std::mutex> lk(st->mu);
    snap = st->window.snapshot(st->cfg.name);
    if (!snap.trainable()) return false;
    prev_ids = st->prev_ids;
    prev_alpha = st->prev_alpha;
    st->new_since_train = 0;
    st->last_train = std::chrono::steady_clock::now();
  }

  const std::string& ck_path = st->cfg.checkpoint_path;
  index_t warm_seeded = 0;
  bool resumed = false;
  SolveStats stats;
  try {
    const AnyMatrix x = AnyMatrix::from_coo(snap.ds.X, opts_.layout);
    FormatKernelEngine engine(x, opts_.svm.kernel);
    SvmParams params = opts_.svm;
    params.checkpoint_interval = opts_.checkpoint_interval;
    params.checkpoint_path.clear();  // wired manually below
    params.on_checkpoint = [&ck_path](const SmoCheckpoint& ck) {
      save_smo_checkpoint(ck_path, ck);
    };
    KernelCache cache(engine, params.cache_bytes);
    SmoSolver solver(cache, snap.ds.y, params);

    // Warm start: map the previous solution's alphas onto the rows whose
    // ids survived the window slide (new rows seed at zero).
    if (!prev_ids.empty()) {
      std::unordered_map<std::int64_t, real_t> by_id;
      by_id.reserve(prev_ids.size());
      for (std::size_t k = 0; k < prev_ids.size(); ++k) {
        by_id.emplace(prev_ids[k], prev_alpha[k]);
      }
      std::vector<real_t> seed(snap.ids.size(), 0.0);
      bool any = false;
      for (std::size_t k = 0; k < snap.ids.size(); ++k) {
        const auto it = by_id.find(snap.ids[k]);
        if (it != by_id.end() && it->second > 0.0) {
          seed[k] = it->second;
          any = true;
        }
      }
      if (any) warm_seeded = solver.warm_start(seed);
    }

    // Crash resume outranks the warm start: a mid-solve snapshot of THIS
    // exact window (ids sidecar match) is strictly further along.
    if (sidecar_matches(ck_path, snap)) {
      if (const auto ck = try_load_smo_checkpoint(ck_path, snap.ds.rows())) {
        solver.restore(*ck);
        resumed = true;
      }
    }
    // Record what the upcoming checkpoints are snapshots of.
    atomic_write_file(ids_sidecar_path(ck_path), encode_ids(snap),
                      /*with_crc_footer=*/true);

    stats = solver.solve();
    const SvmModel model = build_model(x, snap.ds.y, solver.alpha(),
                                       solver.rho(), params.kernel);
    save_model_file(st->cfg.model_path, model);
    if (stats.converged) {
      remove_checkpoint(ck_path);
      remove_checkpoint(ids_sidecar_path(ck_path));
    }

    std::lock_guard<std::mutex> lk(st->mu);
    st->prev_ids = snap.ids;
    st->prev_alpha.assign(solver.alpha().begin(), solver.alpha().end());
    ++st->stats.trains_total;
    ++st->stats.version;
    st->stats.last_iterations = stats.iterations;
    st->stats.last_warm_seeded = warm_seeded;
    st->stats.last_resumed_from_checkpoint = resumed;
  } catch (const std::exception&) {
    // A failed or interrupted retrain (checkpoint-save failpoint, OOM,
    // torn disk) leaves the last accepted model serving and the last
    // CRC-valid checkpoint on disk for the next attempt to resume from.
    std::lock_guard<std::mutex> lk(st->mu);
    ++st->stats.train_failures_total;
    metrics::counter_add("train.failures_total");
    return false;
  }
  metrics::counter_add("train.retrains_total");

  if (!opts_.publish_unix.empty() || opts_.publish_tcp >= 0) publish(*st);
  return true;
}

bool ContinuousTrainer::publish(ModelState& st) {
  serve::Status status = serve::Status::kInternal;
  std::string report;
  try {
    serve::ClientOptions copts;
    copts.request_timeout_ms = opts_.publish_timeout_ms;
    serve::ServeClient client =
        opts_.publish_unix.empty()
            ? serve::ServeClient::connect_tcp(opts_.publish_tcp, copts)
            : serve::ServeClient::connect_unix(opts_.publish_unix, copts);
    status = client.reload(st.cfg.name, &report);
  } catch (const std::exception& e) {
    report = e.what();
  }
  std::lock_guard<std::mutex> lk(st.mu);
  st.stats.last_publish_report = report;
  if (status == serve::Status::kOk) {
    ++st.stats.publishes_total;
    metrics::counter_add("train.publishes_total");
    return true;
  }
  ++st.stats.publish_failures_total;
  metrics::counter_add("train.publish_failures_total");
  return false;
}

std::vector<std::string> ContinuousTrainer::model_names() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lk(models_mu_);
  names.reserve(models_.size());
  for (const auto& [name, st] : models_) names.push_back(name);
  return names;
}

TrainerModelStats ContinuousTrainer::model_stats(
    const std::string& name) const {
  const auto st = find(name);
  LS_CHECK(st != nullptr, "unknown trainer model '" << name << "'");
  std::lock_guard<std::mutex> lk(st->mu);
  TrainerModelStats s = st->stats;
  s.window_size = st->window.size();
  s.window_digest = st->window.content_digest();
  return s;
}

std::string ContinuousTrainer::stats_text() const {
  std::ostringstream os;
  std::int64_t ingested = 0, trains = 0, failures = 0, publishes = 0,
               publish_failures = 0, duplicates = 0, journal_failures = 0,
               rearms = 0, quarantines = 0;
  for (const std::string& name : model_names()) {
    const TrainerModelStats s = model_stats(name);
    ingested += s.ingested;
    trains += s.trains_total;
    failures += s.train_failures_total;
    publishes += s.publishes_total;
    publish_failures += s.publish_failures_total;
    duplicates += s.duplicates_total;
    journal_failures += s.journal_failures_total;
    rearms += s.journal_rearms_total;
    quarantines += s.journal_quarantines_total;
  }
  os << "ingested_total " << ingested << '\n'
     << "trains_total " << trains << '\n'
     << "train_failures_total " << failures << '\n'
     << "publishes_total " << publishes << '\n'
     << "publish_failures_total " << publish_failures << '\n'
     << "ingest_duplicates_total " << duplicates << '\n'
     << "journal_failures_total " << journal_failures << '\n'
     << "journal_rearms_total " << rearms << '\n'
     << "journal_quarantines_total " << quarantines << '\n';
  os << models_text();
  return os.str();
}

std::string ContinuousTrainer::models_text() const {
  std::ostringstream os;
  for (const std::string& name : model_names()) {
    const TrainerModelStats s = model_stats(name);
    os << "model " << name << " version " << s.version << " window "
       << s.window_size << " ingested " << s.ingested << " trains "
       << s.trains_total << " publishes " << s.publishes_total
       << " publish_failures " << s.publish_failures_total
       << " last_iterations " << s.last_iterations << " warm_seeded "
       << s.last_warm_seeded << " journal "
       << (!s.journal_enabled ? "off"
                              : s.journal_degraded ? "degraded" : "on")
       << " duplicates " << s.duplicates_total << " replayed "
       << s.journal_replayed << '\n';
    if (!s.last_publish_report.empty()) {
      os << "publish_report " << name << ": ";
      // Collapse the (possibly multi-line) reload report to one line.
      for (char c : s.last_publish_report) os << (c == '\n' ? ';' : c);
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace ls::train
