// ContinuousTrainer: the streaming train-and-serve daemon core.
//
// Closes the ROADMAP's continuous-learning loop from parts that already
// exist but had never been composed:
//
//   ingest (LSRV kIngest) --> SlidingWindow per model
//        --cadence-->  retrain: SmoSolver warm-started from the previous
//                      alpha vector (smo.hpp warm_start), mid-solve SMO
//                      snapshots every checkpoint_interval iterations
//                      (svm/checkpoint.hpp: atomic + CRC via fs_atomic)
//        --accept-->   save_model_file (atomic + CRC)
//        --publish-->  ServeClient::reload against one replica or the
//                      router (fan-out); the per-replica reload report is
//                      plumbed back into the trainer's stats
//
// Crash safety: a trainer killed mid-save leaves either the previous
// CRC-valid checkpoint (atomic rename) or a valid newer one; the next
// retrain resumes from whatever try_load_smo_checkpoint accepts. The serve
// tier's content generations guarantee a published reload can never be
// shadowed by a concurrent re-layout of older weights (registry.hpp).
//
// All cadences use steady_clock — wall-clock jumps must not stall or
// double-fire a retrain (DESIGN.md §17 clock audit).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/wal.hpp"
#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"
#include "serve/protocol.hpp"
#include "svm/smo.hpp"
#include "train/window.hpp"

namespace ls::train {

/// One hosted training stream.
struct TrainerModelConfig {
  std::string name;
  /// Where accepted models are published (atomic CRC-verified write); the
  /// serve tier hosts this same path so a reload picks the new weights up.
  std::string model_path;
  /// Mid-solve SMO snapshot file; "" derives `model_path + ".ckpt"`.
  std::string checkpoint_path;
  /// Sliding-window capacity in examples.
  std::size_t window_capacity = 4096;
  /// Ingest-journal directory. Empty = no durability (in-process tests,
  /// throwaway streams): acked examples live only in memory, exactly the
  /// pre-v4 behaviour. Non-empty: every accepted ingest is journaled to a
  /// WriteAheadLog here before the ack, add_model() replays it to rebuild
  /// the window after a crash, and the (model, client id) dedup set
  /// survives restarts with it.
  std::string wal_dir;
};

/// Daemon configuration.
struct TrainerOptions {
  /// Solver parameters for every retrain (kernel, C, tolerance, cache).
  SvmParams svm;
  /// Training-matrix layout. The trainer uses a fixed layout rather than
  /// the empirical scheduler: retrains are frequent and small, so probe
  /// time would dominate (the serve tier's rescheduler already owns the
  /// layout question where it pays — on the inference path).
  Format layout = Format::kCSR;
  /// Retrain cadence (steady_clock) and the news threshold that lets a
  /// quiet model skip its tick.
  double retrain_interval_ms = 1000.0;
  std::size_t min_new_examples = 1;
  /// Solver iterations between mid-solve checkpoint saves (0 = default).
  index_t checkpoint_interval = 256;
  /// Publish target: a serve daemon or router endpoint. Leave both unset
  /// (empty / -1) to train without publishing (tests, warm-up before the
  /// serve tier exists). Publish failures are counted and retried on the
  /// next accepted model, not queued.
  std::string publish_unix;
  int publish_tcp = -1;
  double publish_timeout_ms = 5000.0;
  /// Ingest-journal knobs (per-model journals under cfg.wal_dir).
  /// kAlways holds the acked-implies-durable contract of DESIGN.md §18;
  /// the weaker policies trade a bounded loss window for ingest latency.
  WalSyncPolicy wal_sync = WalSyncPolicy::kAlways;
  std::size_t wal_segment_bytes = 256u << 10;
  /// Journal a window-digest checkpoint every this many accepted examples
  /// (0 = never). Replay verifies the rebuilt window against each one.
  std::size_t wal_digest_interval = 64;
};

/// Per-model counters (snapshot; taken under the model lock).
struct TrainerModelStats {
  std::int64_t ingested = 0;
  std::int64_t rejected_labels = 0;
  std::size_t window_size = 0;
  /// FNV digest of the live window's (id, label, features) content — what
  /// journal replay verifies against; lets a crash harness prove a rebuilt
  /// window is byte-equivalent to the no-crash run.
  std::uint64_t window_digest = 0;
  std::int64_t trains_total = 0;
  std::int64_t train_failures_total = 0;
  std::int64_t publishes_total = 0;
  std::int64_t publish_failures_total = 0;
  /// Trainer-side model version: bumped once per accepted (saved) model.
  /// The serving-side version is minted by the registry on reload; this
  /// one counts how many distinct weight sets this trainer produced.
  std::int64_t version = 0;
  index_t last_iterations = 0;
  index_t last_warm_seeded = 0;
  bool last_resumed_from_checkpoint = false;
  /// Ingest-durability counters (all zero when the journal is off).
  bool journal_enabled = false;
  bool journal_degraded = false;      ///< memory-only: journal writes failing
  std::int64_t duplicates_total = 0;  ///< retried ingests absorbed by dedup
  std::int64_t journal_replayed = 0;  ///< examples rebuilt at startup
  std::int64_t journal_failures_total = 0;   ///< failed journal appends
  std::int64_t journal_rearms_total = 0;     ///< degraded -> journaling again
  std::int64_t journal_quarantines_total = 0;  ///< corrupt journals set aside
  /// The reload report from the last publish: a single replica's status
  /// text, or the router's per-replica fan-out report.
  std::string last_publish_report;
};

/// Streaming trainer daemon core. Thread-safe throughout; start() spawns
/// the cadence thread, ingest() is called from server handler threads.
class ContinuousTrainer {
 public:
  explicit ContinuousTrainer(TrainerOptions opts = {});
  ~ContinuousTrainer();

  ContinuousTrainer(const ContinuousTrainer&) = delete;
  ContinuousTrainer& operator=(const ContinuousTrainer&) = delete;

  /// Registers a training stream. Must be called before start() publishes
  /// traffic for it; adding while running is allowed.
  void add_model(const TrainerModelConfig& cfg);

  /// Appends one labeled example to `model`'s window. Returns kOk,
  /// kUnknownModel, or kBadFrame (label not +-1). Never blocks on a
  /// retrain: windows are guarded separately from the solve.
  ///
  /// With the model's journal enabled, the example is journaled before
  /// this returns kOk (the ack IS the durability promise under
  /// WalSyncPolicy::kAlways). `example_id` is the client's dedup
  /// identity: a non-negative id already seen for this model is absorbed
  /// — counted, acked kOk with message "duplicate", window untouched —
  /// which is what makes wire-level ingest retries safe. Negative = no
  /// dedup. Journal-write failures never fail the ingest: the model flips
  /// to a counted memory-only degraded mode (health answers "degraded")
  /// and re-arms by rewriting the journal from the live window once
  /// writes succeed again.
  serve::Status ingest(const std::string& model, SparseVector x,
                       real_t label, std::string* message = nullptr,
                       std::int64_t example_id = -1);

  /// Spawns the cadence thread (idempotent).
  void start();

  /// Stops the cadence thread and waits for an in-progress retrain to
  /// finish (idempotent; destructor calls it).
  void stop();

  /// Runs one synchronous retrain of `model` if its window is trainable.
  /// Returns true when a model was accepted (solved + saved); false when
  /// the window is not trainable yet or the retrain failed (failure
  /// counted in stats). The cadence thread calls exactly this.
  bool train_once(const std::string& model);

  /// True when no retrain is executing — the drain predicate of the
  /// trainer's socket server (ingest frames are request/response and do
  /// not pend).
  bool idle() const { return training_.load(std::memory_order_acquire) == 0; }

  /// True while any model's journal is failing writes (memory-only
  /// ingest). Surfaced as "degraded" by the trainer's health verb.
  bool journal_degraded() const;

  std::vector<std::string> model_names() const;
  TrainerModelStats model_stats(const std::string& name) const;

  /// Aggregate + per-model stats block (the trainer's kStatsReq reply).
  std::string stats_text() const;

  /// Per-model inventory block (the trainer's kModelsReq reply).
  std::string models_text() const;

  const TrainerOptions& options() const { return opts_; }

 private:
  struct ModelState {
    TrainerModelConfig cfg;
    mutable std::mutex mu;  ///< guards window, prev solution, stats
    SlidingWindow window;
    std::int64_t new_since_train = 0;
    /// Previous accepted solution, keyed by example id — the warm-start
    /// seed for the next retrain.
    std::vector<std::int64_t> prev_ids;
    std::vector<real_t> prev_alpha;
    std::chrono::steady_clock::time_point last_train;
    TrainerModelStats stats;
    /// Ingest journal (null when cfg.wal_dir is empty). Guarded by `mu`
    /// like the window it shadows.
    std::unique_ptr<WriteAheadLog> wal;
    /// Client ids seen, bounded at 2x window capacity (a retry storm older
    /// than the window it could have landed in is no longer a duplicate
    /// worth recognising). Set + FIFO order for O(1) bounded eviction.
    std::unordered_set<std::int64_t> dedup;
    std::deque<std::int64_t> dedup_order;

    explicit ModelState(TrainerModelConfig c)
        : cfg(std::move(c)), window(cfg.window_capacity) {}
  };

  std::shared_ptr<ModelState> find(const std::string& name) const;
  void cadence_loop();
  /// Opens (replaying) or re-opens `st`'s journal per cfg.wal_dir; a
  /// corrupt journal is quarantined (renamed aside) and a fresh one
  /// started. Called from add_model, never with st->mu held by others.
  void open_journal(ModelState& st);
  /// Journals one accepted example under st.mu, re-arming a degraded
  /// journal first. Called before the matching window append (the caller
  /// still owns `x`); a failure flips degraded mode. Never throws.
  void journal_example(ModelState& st, std::int64_t window_id,
                       std::int64_t client_id, real_t label,
                       const SparseVector& x);
  /// Journals a digest checkpoint of the post-append window when the
  /// digest interval comes due (st.mu held). Never throws.
  void journal_digest(ModelState& st);
  /// Rewrites the journal from the live window (st.mu held): every window
  /// example plus a digest checkpoint is written to a side directory that
  /// is promoted by rename only once complete, so a re-arm that fails
  /// halfway leaves the pre-outage journal (a durable prefix of the acked
  /// stream) untouched. Returns false (still degraded) on any failure.
  bool rearm_journal(ModelState& st);
  /// Remembers a client id in the bounded dedup set (st.mu held).
  static void remember_dedup(ModelState& st, std::int64_t client_id);
  /// Publishes `name` to the configured endpoint via reload; records the
  /// report in `st`. Returns true on kOk.
  bool publish(ModelState& st);

  TrainerOptions opts_;
  mutable std::mutex models_mu_;
  std::map<std::string, std::shared_ptr<ModelState>> models_;

  std::thread cadence_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stopping_ = false;
  std::atomic<bool> running_{false};
  std::atomic<int> training_{0};  ///< retrains in progress (drain gate)
};

}  // namespace ls::train
