// ContinuousTrainer: the streaming train-and-serve daemon core.
//
// Closes the ROADMAP's continuous-learning loop from parts that already
// exist but had never been composed:
//
//   ingest (LSRV kIngest) --> SlidingWindow per model
//        --cadence-->  retrain: SmoSolver warm-started from the previous
//                      alpha vector (smo.hpp warm_start), mid-solve SMO
//                      snapshots every checkpoint_interval iterations
//                      (svm/checkpoint.hpp: atomic + CRC via fs_atomic)
//        --accept-->   save_model_file (atomic + CRC)
//        --publish-->  ServeClient::reload against one replica or the
//                      router (fan-out); the per-replica reload report is
//                      plumbed back into the trainer's stats
//
// Crash safety: a trainer killed mid-save leaves either the previous
// CRC-valid checkpoint (atomic rename) or a valid newer one; the next
// retrain resumes from whatever try_load_smo_checkpoint accepts. The serve
// tier's content generations guarantee a published reload can never be
// shadowed by a concurrent re-layout of older weights (registry.hpp).
//
// All cadences use steady_clock — wall-clock jumps must not stall or
// double-fire a retrain (DESIGN.md §17 clock audit).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "formats/format.hpp"
#include "formats/sparse_vector.hpp"
#include "serve/protocol.hpp"
#include "svm/smo.hpp"
#include "train/window.hpp"

namespace ls::train {

/// One hosted training stream.
struct TrainerModelConfig {
  std::string name;
  /// Where accepted models are published (atomic CRC-verified write); the
  /// serve tier hosts this same path so a reload picks the new weights up.
  std::string model_path;
  /// Mid-solve SMO snapshot file; "" derives `model_path + ".ckpt"`.
  std::string checkpoint_path;
  /// Sliding-window capacity in examples.
  std::size_t window_capacity = 4096;
};

/// Daemon configuration.
struct TrainerOptions {
  /// Solver parameters for every retrain (kernel, C, tolerance, cache).
  SvmParams svm;
  /// Training-matrix layout. The trainer uses a fixed layout rather than
  /// the empirical scheduler: retrains are frequent and small, so probe
  /// time would dominate (the serve tier's rescheduler already owns the
  /// layout question where it pays — on the inference path).
  Format layout = Format::kCSR;
  /// Retrain cadence (steady_clock) and the news threshold that lets a
  /// quiet model skip its tick.
  double retrain_interval_ms = 1000.0;
  std::size_t min_new_examples = 1;
  /// Solver iterations between mid-solve checkpoint saves (0 = default).
  index_t checkpoint_interval = 256;
  /// Publish target: a serve daemon or router endpoint. Leave both unset
  /// (empty / -1) to train without publishing (tests, warm-up before the
  /// serve tier exists). Publish failures are counted and retried on the
  /// next accepted model, not queued.
  std::string publish_unix;
  int publish_tcp = -1;
  double publish_timeout_ms = 5000.0;
};

/// Per-model counters (snapshot; taken under the model lock).
struct TrainerModelStats {
  std::int64_t ingested = 0;
  std::int64_t rejected_labels = 0;
  std::size_t window_size = 0;
  std::int64_t trains_total = 0;
  std::int64_t train_failures_total = 0;
  std::int64_t publishes_total = 0;
  std::int64_t publish_failures_total = 0;
  /// Trainer-side model version: bumped once per accepted (saved) model.
  /// The serving-side version is minted by the registry on reload; this
  /// one counts how many distinct weight sets this trainer produced.
  std::int64_t version = 0;
  index_t last_iterations = 0;
  index_t last_warm_seeded = 0;
  bool last_resumed_from_checkpoint = false;
  /// The reload report from the last publish: a single replica's status
  /// text, or the router's per-replica fan-out report.
  std::string last_publish_report;
};

/// Streaming trainer daemon core. Thread-safe throughout; start() spawns
/// the cadence thread, ingest() is called from server handler threads.
class ContinuousTrainer {
 public:
  explicit ContinuousTrainer(TrainerOptions opts = {});
  ~ContinuousTrainer();

  ContinuousTrainer(const ContinuousTrainer&) = delete;
  ContinuousTrainer& operator=(const ContinuousTrainer&) = delete;

  /// Registers a training stream. Must be called before start() publishes
  /// traffic for it; adding while running is allowed.
  void add_model(const TrainerModelConfig& cfg);

  /// Appends one labeled example to `model`'s window. Returns kOk,
  /// kUnknownModel, or kBadFrame (label not +-1). Never blocks on a
  /// retrain: windows are guarded separately from the solve.
  serve::Status ingest(const std::string& model, SparseVector x,
                       real_t label, std::string* message = nullptr);

  /// Spawns the cadence thread (idempotent).
  void start();

  /// Stops the cadence thread and waits for an in-progress retrain to
  /// finish (idempotent; destructor calls it).
  void stop();

  /// Runs one synchronous retrain of `model` if its window is trainable.
  /// Returns true when a model was accepted (solved + saved); false when
  /// the window is not trainable yet or the retrain failed (failure
  /// counted in stats). The cadence thread calls exactly this.
  bool train_once(const std::string& model);

  /// True when no retrain is executing — the drain predicate of the
  /// trainer's socket server (ingest frames are request/response and do
  /// not pend).
  bool idle() const { return training_.load(std::memory_order_acquire) == 0; }

  std::vector<std::string> model_names() const;
  TrainerModelStats model_stats(const std::string& name) const;

  /// Aggregate + per-model stats block (the trainer's kStatsReq reply).
  std::string stats_text() const;

  /// Per-model inventory block (the trainer's kModelsReq reply).
  std::string models_text() const;

  const TrainerOptions& options() const { return opts_; }

 private:
  struct ModelState {
    TrainerModelConfig cfg;
    mutable std::mutex mu;  ///< guards window, prev solution, stats
    SlidingWindow window;
    std::int64_t new_since_train = 0;
    /// Previous accepted solution, keyed by example id — the warm-start
    /// seed for the next retrain.
    std::vector<std::int64_t> prev_ids;
    std::vector<real_t> prev_alpha;
    std::chrono::steady_clock::time_point last_train;
    TrainerModelStats stats;

    explicit ModelState(TrainerModelConfig c)
        : cfg(std::move(c)), window(cfg.window_capacity) {}
  };

  std::shared_ptr<ModelState> find(const std::string& name) const;
  void cadence_loop();
  /// Publishes `name` to the configured endpoint via reload; records the
  /// report in `st`. Returns true on kOk.
  bool publish(ModelState& st);

  TrainerOptions opts_;
  mutable std::mutex models_mu_;
  std::map<std::string, std::shared_ptr<ModelState>> models_;

  std::thread cadence_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stopping_ = false;
  std::atomic<bool> running_{false};
  std::atomic<int> training_{0};  ///< retrains in progress (drain gate)
};

}  // namespace ls::train
