#include "train/handler.hpp"

#include <string>
#include <utility>

#include "serve/protocol.hpp"

namespace ls::train {

using serve::FrameContext;
using serve::FrameDisposition;
using serve::MsgType;
using serve::Status;

FrameDisposition TrainFrameHandler::on_frame(const FrameContext& ctx,
                                             const serve::Frame& frame) {
  const int fd = ctx.fd;
  const serve::FrameTimeouts& t = ctx.timeouts;
  switch (frame.type) {
    case MsgType::kIngestReq: {
      std::string model;
      std::int64_t example_id = -1;
      real_t label = 0.0;
      SparseVector x;
      try {
        serve::decode_ingest_request(frame.payload, model, example_id, label,
                                     x);
      } catch (const std::exception&) {
        ctx.server->note_protocol_error();
        serve::write_frame(
            fd, MsgType::kStatusResp,
            serve::encode_status_response(Status::kBadFrame, "bad frame"),
            t);
        return FrameDisposition::kKeep;
      }
      if (ctx.draining) {
        serve::write_frame(fd, MsgType::kStatusResp,
                           serve::encode_status_response(
                               Status::kShuttingDown, "draining"),
                           t);
        return FrameDisposition::kKeep;
      }
      std::string message;
      const Status s =
          trainer_->ingest(model, std::move(x), label, &message, example_id);
      serve::write_frame(fd, MsgType::kStatusResp,
                         serve::encode_status_response(s, message), t);
      return FrameDisposition::kKeep;
    }
    case MsgType::kStatsReq:
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(
              Status::kOk,
              trainer_->stats_text() + ctx.server->stats_text()),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kModelsReq:
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kOk,
                                        trainer_->models_text()),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kHealthReq:
      // "degraded" = still ingesting and serving, but the journal is
      // failing writes, so acked examples are memory-only until re-arm.
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(
              Status::kOk, ctx.draining           ? "draining"
                           : trainer_->journal_degraded() ? "degraded"
                                                          : "ready"),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kPingReq:
      serve::write_frame(fd, MsgType::kStatusResp,
                         serve::encode_status_response(Status::kOk, "pong"),
                         t);
      return FrameDisposition::kKeep;
    case MsgType::kShutdownReq:
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kOk, "shutting down"), t);
      return FrameDisposition::kStopServer;
    case MsgType::kPredictReq:
      // The trainer scores nothing; predict goes to the serve tier.
      serve::write_frame(fd, MsgType::kPredictResp,
                         serve::encode_predict_response(serve::PredictResult{
                             Status::kBadFrame, 0.0, 0.0}),
                         t);
      return FrameDisposition::kKeep;
    case MsgType::kReloadReq:
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kBadFrame,
                                        "reload not supported here"),
          t);
      return FrameDisposition::kKeep;
    case MsgType::kPredictResp:
    case MsgType::kStatusResp:
      ctx.server->note_protocol_error();
      serve::write_frame(
          fd, MsgType::kStatusResp,
          serve::encode_status_response(Status::kBadFrame,
                                        "response type sent as request"),
          t);
      return FrameDisposition::kKeep;
  }
  return FrameDisposition::kKeep;
}

}  // namespace ls::train
