// TrainFrameHandler: the trainer daemon's face on the LSRV protocol.
//
// Plugs a ContinuousTrainer behind the stock serve::ServeServer (accept
// loop, connection governance, drain) — the same FrameHandler seam the
// engine and the router use. The trainer answers:
//
//   kIngestReq   append one labeled example to a model's window
//   kStatsReq    trainer counters + socket-layer stats
//   kModelsReq   per-stream inventory (version, window, publishes)
//   kPingReq / kHealthReq / kShutdownReq   lifecycle
//
// Predict and reload are a serve-tier concern and answered kBadFrame.
#pragma once

#include "serve/server.hpp"
#include "train/continuous_trainer.hpp"

namespace ls::train {

class TrainFrameHandler final : public serve::FrameHandler {
 public:
  explicit TrainFrameHandler(ContinuousTrainer& trainer)
      : trainer_(&trainer) {}

  serve::FrameDisposition on_frame(const serve::FrameContext& ctx,
                                   const serve::Frame& frame) override;

  /// Drain predicate: ingest frames are answered inline, so the only
  /// asynchronous work is an in-progress retrain.
  bool quiesced() const override { return trainer_->idle(); }

 private:
  ContinuousTrainer* trainer_;
};

}  // namespace ls::train
