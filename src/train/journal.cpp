#include "train/journal.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace ls::train {

namespace {

template <class T>
void put_raw(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked sequential reader (same shape as the wire protocol's).
struct Cursor {
  std::string_view buf;
  std::size_t at = 0;

  template <class T>
  T get_raw(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    LS_CHECK(at + sizeof(T) <= buf.size(),
             "journal record truncated reading " << what);
    T v;
    std::memcpy(&v, buf.data() + at, sizeof(T));
    at += sizeof(T);
    return v;
  }

  void expect_end() const {
    LS_CHECK(at == buf.size(), "journal record has "
                                   << buf.size() - at
                                   << " trailing bytes");
  }
};

}  // namespace

std::string encode_journal_example(std::int64_t window_id,
                                   std::int64_t client_id, real_t label,
                                   const SparseVector& x) {
  LS_CHECK(!std::isnan(label), "journal example label must not be NaN");
  std::string out;
  out.reserve(1 + 16 + sizeof(real_t) + 4 +
              static_cast<std::size_t>(x.nnz()) * (4 + sizeof(real_t)));
  put_raw(out, static_cast<std::uint8_t>(JournalRecordType::kExample));
  put_raw(out, window_id);
  put_raw(out, client_id);
  put_raw(out, label);
  put_raw(out, static_cast<std::uint32_t>(x.nnz()));
  const auto idx = x.indices();
  const auto val = x.values();
  for (index_t k = 0; k < x.nnz(); ++k) {
    const index_t i = idx[static_cast<std::size_t>(k)];
    LS_CHECK(i >= 0 && i <= std::numeric_limits<std::uint32_t>::max(),
             "feature index " << i << " does not fit the journal format");
    put_raw(out, static_cast<std::uint32_t>(i));
    put_raw(out, val[static_cast<std::size_t>(k)]);
  }
  return out;
}

std::string encode_journal_digest(std::int64_t next_window_id,
                                  std::uint64_t window_size,
                                  std::uint64_t digest) {
  std::string out;
  out.reserve(1 + 24);
  put_raw(out, static_cast<std::uint8_t>(JournalRecordType::kDigest));
  put_raw(out, next_window_id);
  put_raw(out, window_size);
  put_raw(out, digest);
  return out;
}

JournalRecord decode_journal_record(std::string_view payload) {
  Cursor c{payload};
  JournalRecord r;
  const auto type = c.get_raw<std::uint8_t>("record type");
  if (type == static_cast<std::uint8_t>(JournalRecordType::kExample)) {
    r.type = JournalRecordType::kExample;
    r.window_id = c.get_raw<std::int64_t>("window id");
    r.client_id = c.get_raw<std::int64_t>("client id");
    r.label = c.get_raw<real_t>("label");
    LS_CHECK(r.label == r.label, "NaN label in journal example");
    const auto nnz = c.get_raw<std::uint32_t>("nnz");
    LS_CHECK(static_cast<std::size_t>(nnz) * (4 + sizeof(real_t)) <=
                 payload.size(),
             "journal nnz " << nnz << " exceeds the record size");
    index_t prev = -1;
    for (std::uint32_t k = 0; k < nnz; ++k) {
      const auto idx = static_cast<index_t>(c.get_raw<std::uint32_t>("index"));
      const auto value = c.get_raw<real_t>("value");
      LS_CHECK(idx > prev, "journal indices must be strictly increasing");
      prev = idx;
      r.x.push_back(idx, value);
    }
  } else if (type == static_cast<std::uint8_t>(JournalRecordType::kDigest)) {
    r.type = JournalRecordType::kDigest;
    r.next_window_id = c.get_raw<std::int64_t>("next window id");
    r.window_size = c.get_raw<std::uint64_t>("window size");
    r.digest = c.get_raw<std::uint64_t>("digest");
  } else {
    LS_CHECK(false, "unknown journal record type " << int(type));
  }
  c.expect_end();
  return r;
}

}  // namespace ls::train
