// Record payloads of the trainer's ingest journal (the WAL wiring of
// DESIGN.md §18). The WriteAheadLog owns framing, checksums and recovery;
// these are the opaque payloads it carries:
//
//   kExample  u8 type, i64 window_id, i64 client_id, f64 label,
//             u32 nnz, nnz x (u32 index, f64 value)
//   kDigest   u8 type, i64 next_window_id, u64 window_size, u64 digest
//
// An example record pins the *window id* the append was assigned, so
// replay rebuilds the exact pre-crash window — same ids, same digest —
// which is what lets checkpoint sidecars and warm-start maps keyed by id
// survive a real process restart. The client id rides along to rebuild
// the dedup set that makes retried ingests idempotent.
//
// A digest record is a checkpoint of the rebuilt window's expected
// fingerprint: replay recomputes SlidingWindow::content_digest() at that
// point and refuses the journal on mismatch — CRC catches torn bytes,
// the digest catches a journal that is internally valid but describes a
// different window than the one it claims (e.g. segments restored from
// the wrong backup).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "formats/sparse_vector.hpp"

namespace ls::train {

enum class JournalRecordType : std::uint8_t {
  kExample = 1,
  kDigest = 2,
};

/// One decoded journal record; which fields are meaningful depends on
/// `type` (kExample: window_id/client_id/label/x; kDigest: the rest).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kExample;
  std::int64_t window_id = 0;
  std::int64_t client_id = -1;
  real_t label = 0.0;
  SparseVector x;
  std::int64_t next_window_id = 0;
  std::uint64_t window_size = 0;
  std::uint64_t digest = 0;
};

std::string encode_journal_example(std::int64_t window_id,
                                   std::int64_t client_id, real_t label,
                                   const SparseVector& x);
std::string encode_journal_digest(std::int64_t next_window_id,
                                  std::uint64_t window_size,
                                  std::uint64_t digest);

/// Throws ls::Error on malformed payloads — the trainer treats that the
/// same as a WAL digest mismatch: quarantine, don't guess.
JournalRecord decode_journal_record(std::string_view payload);

}  // namespace ls::train
