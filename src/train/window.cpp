#include "train/window.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"

namespace ls::train {

namespace {

/// FNV-1a over arbitrary bytes, used to fingerprint window contents.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof v);
}

std::uint64_t fnv1a_real(std::uint64_t h, real_t v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(real_t) <= sizeof(bits));
  std::memcpy(&bits, &v, sizeof v);
  return fnv1a_u64(h, bits);
}

}  // namespace

SlidingWindow::SlidingWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(2, capacity)) {}

std::int64_t SlidingWindow::append(SparseVector x, real_t label,
                                   std::int64_t client_id) {
  LS_CHECK(label == 1.0 || label == -1.0,
           "streamed example label must be +1 or -1, got " << label);
  if (ring_.size() >= capacity_) ring_.pop_front();
  const std::int64_t id = next_id_++;
  ring_.push_back(Example{id, client_id, std::move(x), label});
  return id;
}

void SlidingWindow::restore(std::int64_t id, SparseVector x, real_t label,
                            std::int64_t client_id) {
  LS_CHECK(id >= next_id_,
           "window restore must replay ids in order: got " << id
               << " after " << next_id_ - 1);
  LS_CHECK(label == 1.0 || label == -1.0,
           "restored example label must be +1 or -1, got " << label);
  if (ring_.size() >= capacity_) ring_.pop_front();
  ring_.push_back(Example{id, client_id, std::move(x), label});
  next_id_ = id + 1;
}

WindowSnapshot SlidingWindow::snapshot(const std::string& name) const {
  WindowSnapshot snap;
  snap.ids.reserve(ring_.size());
  index_t cols = 1;
  std::size_t nnz = 0;
  for (const Example& e : ring_) {
    nnz += static_cast<std::size_t>(e.x.nnz());
    if (e.x.nnz() > 0) {
      cols = std::max<index_t>(
          cols, e.x.indices()[static_cast<std::size_t>(e.x.nnz()) - 1] + 1);
    }
  }
  std::vector<Triplet> entries;
  entries.reserve(nnz);
  std::vector<real_t> y;
  y.reserve(ring_.size());
  index_t row = 0;
  for (const Example& e : ring_) {
    snap.ids.push_back(e.id);
    y.push_back(e.label);
    if (e.label > 0) {
      ++snap.positives;
    } else {
      ++snap.negatives;
    }
    const auto idx = e.x.indices();
    const auto val = e.x.values();
    for (index_t k = 0; k < e.x.nnz(); ++k) {
      entries.push_back(Triplet{row, idx[static_cast<std::size_t>(k)],
                                val[static_cast<std::size_t>(k)]});
    }
    ++row;
  }
  snap.ds.name = name;
  snap.ds.X = CooMatrix(row, cols, std::move(entries));
  snap.ds.y = std::move(y);
  snap.digest = content_digest();
  return snap;
}

std::uint64_t SlidingWindow::content_digest() const {
  // Covers (id, label, index bits, value bits) per example — NOT the
  // client dedup ids, so the fingerprint is stable whether the window was
  // filled live or rebuilt by journal replay of pre-dedup records.
  std::uint64_t digest = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const Example& e : ring_) {
    digest = fnv1a_u64(digest, static_cast<std::uint64_t>(e.id));
    digest = fnv1a_real(digest, e.label);
    digest = fnv1a(digest, e.x.indices().data(),
                   static_cast<std::size_t>(e.x.nnz()) * sizeof(index_t));
    digest = fnv1a(digest, e.x.values().data(),
                   static_cast<std::size_t>(e.x.nnz()) * sizeof(real_t));
  }
  return digest;
}

void SlidingWindow::for_each(
    const std::function<void(std::int64_t, std::int64_t, const SparseVector&,
                             real_t)>& fn) const {
  for (const Example& e : ring_) fn(e.id, e.client_id, e.x, e.label);
}

}  // namespace ls::train
