// Bounded sliding window of streamed labeled examples — the continuous
// trainer's view of "the training set right now".
//
// Examples arrive one at a time over the ingest verb; the window keeps the
// most recent `capacity` of them and assigns each a monotonically
// increasing id. The ids are what make warm starts work across retrains:
// a retrain snapshots (ids, Dataset), solves, and remembers (ids, alpha);
// the next retrain maps the previous alphas onto the rows whose ids
// survived the slide and seeds the solver from them (smo.hpp warm_start).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "data/dataset.hpp"
#include "formats/sparse_vector.hpp"

namespace ls::train {

/// Point-in-time copy of the window as a solvable problem. `ids[i]` is the
/// example id behind dataset row i (append order, oldest first).
struct WindowSnapshot {
  std::vector<std::int64_t> ids;
  Dataset ds;
  index_t positives = 0;
  index_t negatives = 0;
  /// FNV-1a fingerprint of the window *contents* (ids, labels, indices,
  /// value bits). The checkpoint sidecar stores it alongside the ids: two
  /// windows with the same id range but different examples (a replay that
  /// diverged) must not resume from each other's checkpoints.
  std::uint64_t digest = 0;

  /// SMO needs both classes present to pose a well-defined dual.
  bool trainable() const { return positives > 0 && negatives > 0; }
};

/// Bounded FIFO of labeled examples (not thread-safe; the trainer guards
/// each model's window with its per-model mutex).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  /// Appends one example, evicting the oldest when full. Returns the
  /// example's id. `label` must be +1 or -1 (checked by the caller's
  /// ingest path; re-checked here). `client_id` is the wire-level dedup
  /// identity (negative = none); it rides along so the journal can be
  /// rewritten from the window, but takes no part in ids or digests.
  std::int64_t append(SparseVector x, real_t label, std::int64_t client_id = -1);

  /// Journal-replay append: re-inserts an example under its original
  /// window id so checkpoint sidecars and warm-start maps keyed by id stay
  /// valid across a real process restart. `id` must be >= the next id
  /// (replay is ordered); ids skipped between records (evicted segments)
  /// are simply never reused.
  void restore(std::int64_t id, SparseVector x, real_t label,
               std::int64_t client_id = -1);

  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Total examples ever appended (ids run [0, total)).
  std::int64_t total_appended() const { return next_id_; }

  /// Builds the current window as a Dataset named `name`. Feature count is
  /// the widest example seen in the *current* window (the model's
  /// num_features follows the live data, and the serve tier's dimension
  /// gate rejects requests wider than the published model).
  WindowSnapshot snapshot(const std::string& name) const;

  /// The WindowSnapshot content fingerprint without building the dataset —
  /// what journal digest records carry and replay re-checks.
  std::uint64_t content_digest() const;

  /// Visits every live example oldest-first (id, client_id, x, label) —
  /// the journal re-arm path rewrites itself from exactly this.
  void for_each(const std::function<void(std::int64_t, std::int64_t,
                                         const SparseVector&, real_t)>& fn)
      const;

 private:
  struct Example {
    std::int64_t id;
    std::int64_t client_id;
    SparseVector x;
    real_t label;
  };

  std::size_t capacity_;
  std::int64_t next_id_ = 0;
  std::deque<Example> ring_;
};

}  // namespace ls::train
