// Tests for the common runtime layer: buffers, RNG, statistics, table
// formatting, CSV escaping and CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/aligned_buffer.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace ls {
namespace {

TEST(AlignedBuffer, AlignmentIs64Bytes) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  AlignedBuffer<std::int64_t> ibuf(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ibuf.data()) % 64, 0u);
}

TEST(AlignedBuffer, ValueInitialisedToZero) {
  AlignedBuffer<double> buf(257);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, CopyPreservesContents) {
  AlignedBuffer<int> a(10);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<int>(i * i);
  AlignedBuffer<int> b = a;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(b[i], a[i]);
  // Deep copy: mutating the copy leaves the original alone.
  b[3] = -1;
  EXPECT_EQ(a[3], 9);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(5, 2.5);
  const double* ptr = a.data();
  AlignedBuffer<double> b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b[4], 2.5);
}

TEST(AlignedBuffer, FillConstructor) {
  AlignedBuffer<double> buf(64, 3.14);
  for (double v : buf) EXPECT_EQ(v, 3.14);
}

TEST(AlignedBuffer, SizeBytes) {
  AlignedBuffer<double> buf(10);
  EXPECT_EQ(buf.size_bytes(), 80u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 6.0, 5 * std::sqrt(n / 6.0));
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Stats, MeanVarianceKnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> xs = {7, 7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> xs = {1, 4, 16};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), Error);
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd = {5, 1, 3};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PearsonPerfectCorrelations) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> up = {2, 4, 6, 8};
  const std::vector<double> down = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelated) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Table, RendersAlignedColumnsAndAllRows) {
  Table t({"Dataset", "Speedup"});
  t.add_row({"adult", "14.3x"});
  t.add_separator();
  t.add_row({"gisette", "3.7x"});
  const std::string s = t.str();
  EXPECT_NE(s.find("adult"), std::string::npos);
  EXPECT_NE(s.find("gisette"), std::string::npos);
  EXPECT_NE(s.find("Dataset"), std::string::npos);
  EXPECT_EQ(t.rows(), 3u);  // 2 data rows + separator
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_speedup(14.29), "14.3x");
  EXPECT_EQ(fmt_speedup(355.0), "355x");
  EXPECT_EQ(fmt_double(1.5000, 3), "1.5");
  EXPECT_EQ(fmt_double(2.0, 2), "2.0");
  EXPECT_EQ(fmt_bytes(2048.0), "2.0 KiB");
  EXPECT_NE(fmt_seconds(0.002).find("ms"), std::string::npos);
  EXPECT_NE(fmt_seconds(7200).find("h"), std::string::npos);
}

TEST(Csv, WritesEscapedFields) {
  const std::string path = ::testing::TempDir() + "/ls_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.write_row({"plain", "has,comma"});
    csv.write_row({"has\"quote", "x"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\",x");
  std::remove(path.c_str());
}

TEST(Cli, ParsesBothFlagForms) {
  CliParser cli("prog", "test");
  cli.add_flag("alpha", "1", "first");
  cli.add_flag("beta", "x", "second");
  const char* argv[] = {"prog", "--alpha", "42", "--beta=hello"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("alpha"), 42);
  EXPECT_EQ(cli.get("beta"), "hello");
}

TEST(Cli, DefaultsSurviveWhenNotPassed) {
  CliParser cli("prog", "test");
  cli.add_flag("gamma", "0.5", "g");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("gamma"), 0.5);
}

TEST(Cli, RejectsUnknownFlagAndBadNumbers) {
  CliParser cli("prog", "test");
  cli.add_flag("x", "1", "x");
  const char* bad[] = {"prog", "--nope", "3"};
  EXPECT_THROW(cli.parse(3, bad), Error);

  CliParser cli2("prog", "test");
  cli2.add_flag("x", "abc", "x");
  const char* ok[] = {"prog"};
  ASSERT_TRUE(cli2.parse(1, ok));
  EXPECT_THROW(cli2.get_double("x"), Error);
}

TEST(Cli, BoolParsing) {
  CliParser cli("prog", "test");
  cli.add_flag("flag", "true", "f");
  const char* argv[] = {"prog", "--flag", "no"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_FALSE(cli.get_bool("flag"));
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1e3 * 0.5);
}

TEST(Timer, TimeBestReturnsPositiveMinimum) {
  const double best = time_best([] {
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
  });
  EXPECT_GT(best, 0.0);
  EXPECT_LT(best, 1.0);
}

TEST(ErrorMacros, ChecksThrowWithContext) {
  try {
    LS_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "LS_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace ls
