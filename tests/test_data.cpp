// Tests for the data substrate: feature extraction (Table IV), the libsvm
// reader/writer, dataset splitting, the synthetic generators and the
// Table V profiles.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/dataset.hpp"
#include "data/features.hpp"
#include "data/libsvm_io.hpp"
#include "data/profiles.hpp"
#include "data/synthetic.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

TEST(Features, HandComputedExample) {
  // 3x4 matrix:
  //   [1 0 2 0]
  //   [0 3 0 0]
  //   [0 0 0 4]
  CooMatrix coo(3, 4,
                {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 3, 4.0}});
  const MatrixFeatures f = extract_features(coo);
  EXPECT_EQ(f.m, 3);
  EXPECT_EQ(f.n, 4);
  EXPECT_EQ(f.nnz, 4);
  // Diagonals (col - row): 0, 2, 0, 1 -> offsets {0, 1, 2} -> ndig = 3.
  EXPECT_EQ(f.ndig, 3);
  EXPECT_NEAR(f.dnnz, 4.0 / 3.0, 1e-12);
  EXPECT_EQ(f.mdim, 2);
  EXPECT_NEAR(f.adim, 4.0 / 3.0, 1e-12);
  // dim = {2, 1, 1}; adim = 4/3; vdim = ((2/3)^2 + (1/3)^2 * 2) / 3 = 2/9.
  EXPECT_NEAR(f.vdim, 2.0 / 9.0, 1e-12);
  EXPECT_NEAR(f.density, 4.0 / 12.0, 1e-12);
}

TEST(Features, DenseMatrixHasZeroVdim) {
  Rng rng(4);
  const CooMatrix coo = make_dense_matrix(10, 6, rng);
  const MatrixFeatures f = extract_features(coo);
  EXPECT_EQ(f.mdim, 6);
  EXPECT_DOUBLE_EQ(f.adim, 6.0);
  EXPECT_DOUBLE_EQ(f.vdim, 0.0);
  EXPECT_DOUBLE_EQ(f.density, 1.0);
  EXPECT_EQ(f.ndig, 10 + 6 - 1);
}

TEST(Features, BandedMatrixCountsDiagonals) {
  Rng rng(5);
  const CooMatrix coo = make_banded(50, 50, {0, 1, -2}, 1.0, rng);
  const MatrixFeatures f = extract_features(coo);
  EXPECT_EQ(f.ndig, 3);
  EXPECT_GT(f.dnnz, 40.0);
}

TEST(Features, ToStringContainsAllNineParameters) {
  CooMatrix coo(2, 2, {{0, 0, 1.0}});
  const std::string s = extract_features(coo).to_string();
  for (const char* key :
       {"M=", "N=", "nnz=", "ndig=", "dnnz=", "mdim=", "adim=", "vdim=",
        "density="}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(LibsvmIo, RoundTripPreservesDataset) {
  Rng rng(6);
  Dataset ds;
  ds.name = "roundtrip";
  ds.X = test::random_matrix(20, 15, 0.3, rng);
  ds.y = plant_labels(ds.X, 0.0, 1);

  std::stringstream buffer;
  write_libsvm(buffer, ds);
  const Dataset back = read_libsvm(buffer, "back", 15);

  ASSERT_EQ(back.rows(), ds.rows());
  ASSERT_EQ(back.cols(), ds.cols());
  ASSERT_EQ(back.X.nnz(), ds.X.nnz());
  for (index_t i = 0; i < ds.rows(); ++i) {
    EXPECT_EQ(back.y[static_cast<std::size_t>(i)],
              ds.y[static_cast<std::size_t>(i)]);
  }
  test::expect_near(back.X.values(), ds.X.values(), 1e-9);
}

TEST(LibsvmIo, ParsesStandardFormatDetails) {
  std::stringstream in("+1 1:0.5 3:2 # trailing comment\n"
                       "\n"
                       "-1 2:1.25\n");
  const Dataset ds = read_libsvm(in, "t");
  ASSERT_EQ(ds.rows(), 2);
  EXPECT_EQ(ds.cols(), 3);  // max index seen
  EXPECT_EQ(ds.y[0], 1.0);
  EXPECT_EQ(ds.y[1], -1.0);
  SparseVector row;
  ds.X.gather_row(0, row);
  ASSERT_EQ(row.nnz(), 2);
  EXPECT_EQ(row.indices()[0], 0);  // 1-based -> 0-based
  EXPECT_DOUBLE_EQ(row.values()[1], 2.0);
}

TEST(LibsvmIo, RejectsMalformedInput) {
  {
    std::stringstream in("+1 3:abc\n");
    EXPECT_THROW(read_libsvm(in, "bad"), Error);
  }
  {
    std::stringstream in("+1 0:1.0\n");  // index must be >= 1
    EXPECT_THROW(read_libsvm(in, "bad"), Error);
  }
  {
    std::stringstream in("+1 3:1 2:1\n");  // not increasing
    EXPECT_THROW(read_libsvm(in, "bad"), Error);
  }
  {
    std::stringstream in("notalabel 1:1\n");
    EXPECT_THROW(read_libsvm(in, "bad"), Error);
  }
}

TEST(LibsvmIo, RandomizedRoundTripSweep) {
  // Property: any dataset the generators can produce survives a write/read
  // cycle bit-for-bit (within the 17-digit text precision).
  Rng rng(0xF022);
  for (int trial = 0; trial < 8; ++trial) {
    const index_t m = rng.uniform_int(1, 40);
    const index_t n = rng.uniform_int(1, 30);
    Dataset ds;
    ds.name = "fuzz" + std::to_string(trial);
    ds.X = test::random_matrix(m, n, rng.uniform(0.05, 0.9), rng);
    ds.y = plant_labels(ds.X, 0.2, static_cast<std::uint64_t>(trial));
    std::stringstream buffer;
    write_libsvm(buffer, ds);
    const Dataset back = read_libsvm(buffer, ds.name, n);
    ASSERT_EQ(back.rows(), ds.rows()) << trial;
    ASSERT_EQ(back.X.nnz(), ds.X.nnz()) << trial;
    test::expect_near(back.X.values(), ds.X.values(), 1e-12);
  }
}

TEST(LibsvmIo, CorruptLinesAlwaysThrowNeverCrash) {
  const char* corrupt[] = {
      "+1 1:1 1:2\n",        // duplicate index (not increasing)
      "+1 -3:1\n",           // negative index
      "+1 2:\n",             // missing value
      "+1 :5\n",             // missing index
      "+1 2:1e\n",           // malformed exponent... strtod stops early
      "nan? 1:1\n",          // bad label token
      "+1 999999999999999999999:1\n",  // index overflow-ish
  };
  for (const char* text : corrupt) {
    std::stringstream in(text);
    EXPECT_THROW(read_libsvm(in, "corrupt"), Error) << text;
  }
}

TEST(Dataset, SplitPartitionsAllRows) {
  Rng rng(7);
  Dataset ds;
  ds.name = "split";
  ds.X = test::random_matrix(50, 10, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.1, 2);
  const auto [train, test] = ds.split(0.8, 42);
  EXPECT_EQ(train.rows() + test.rows(), ds.rows());
  EXPECT_EQ(train.rows(), 40);
  EXPECT_EQ(train.cols(), ds.cols());
  train.validate();
  test.validate();
}

TEST(Dataset, SubsetExtractsRequestedRows) {
  CooMatrix x(3, 2, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 0, 3.0}});
  Dataset ds{"s", std::move(x), {1.0, -1.0, 1.0}};
  const Dataset sub = ds.subset({2, 0}, ".sub");
  ASSERT_EQ(sub.rows(), 2);
  EXPECT_EQ(sub.y[0], 1.0);
  SparseVector row;
  sub.X.gather_row(0, row);
  EXPECT_EQ(row.values()[0], 3.0);  // original row 2 first
}

TEST(Dataset, NumClassesCountsDistinctLabels) {
  Dataset ds{"c", CooMatrix(4, 1, {}), {1.0, 2.0, 1.0, 3.0}};
  EXPECT_EQ(ds.num_classes(), 3);
}

TEST(Synthetic, SampleColumnsDistinctSortedInRange) {
  Rng rng(8);
  for (index_t k : {0, 1, 5, 50, 99, 100}) {
    const auto cols = sample_columns(100, k, rng);
    ASSERT_EQ(static_cast<index_t>(cols.size()), k);
    for (std::size_t i = 1; i < cols.size(); ++i) {
      EXPECT_LT(cols[i - 1], cols[i]);
    }
    if (!cols.empty()) {
      EXPECT_GE(cols.front(), 0);
      EXPECT_LT(cols.back(), 100);
    }
  }
}

TEST(Synthetic, RowLengthsHitExactNnzAndRespectCap) {
  Rng rng(9);
  const auto lens = make_row_lengths(200, 3000, 25.0, 40, rng);
  index_t total = 0;
  for (index_t l : lens) {
    EXPECT_GE(l, 1);
    EXPECT_LE(l, 40);
    total += l;
  }
  EXPECT_EQ(total, 3000);
}

TEST(Synthetic, DiagSpreadProducesExactDiagonalCount) {
  Rng rng(10);
  for (index_t ndig : {1, 4, 16, 64}) {
    const CooMatrix coo = make_diag_spread(256, 256, 4096, ndig, rng);
    const MatrixFeatures f = extract_features(coo);
    EXPECT_EQ(f.ndig, ndig) << "ndig " << ndig;
  }
}

TEST(Synthetic, MdimSpreadHitsTargetMdim) {
  Rng rng(11);
  for (index_t mdim : {2, 8, 64, 256}) {
    const CooMatrix coo = make_mdim_spread(512, 512, 1024, mdim, rng);
    const MatrixFeatures f = extract_features(coo);
    EXPECT_EQ(f.mdim, mdim) << "mdim " << mdim;
    EXPECT_NEAR(static_cast<double>(f.nnz), 1024.0, 8.0);
  }
}

TEST(Synthetic, MdimSpreadCapsAtRowBudget) {
  // mdim = 1 can realise at most m nonzeros (one per row).
  Rng rng(11);
  const CooMatrix coo = make_mdim_spread(512, 512, 1024, 1, rng);
  const MatrixFeatures f = extract_features(coo);
  EXPECT_EQ(f.mdim, 1);
  EXPECT_EQ(f.nnz, 512);
}

TEST(Synthetic, VdimSpreadMonotoneInHeavyShare) {
  Rng rng(12);
  double prev = -1.0;
  // n chosen wide enough that the heavy rows never saturate (4 rows can
  // hold up to 16,000 nonzeros > the 0.8 * 8,000 requested).
  for (double share : {0.0, 0.2, 0.5, 0.8}) {
    const CooMatrix coo = make_vdim_spread(400, 4000, 8000, 4, share, rng);
    const MatrixFeatures f = extract_features(coo);
    EXPECT_GT(f.vdim, prev) << "share " << share;
    prev = f.vdim;
    EXPECT_EQ(f.m, 400);
    EXPECT_NEAR(static_cast<double>(f.nnz), 8000.0, 16.0);
  }
}

TEST(Synthetic, VdimSpreadSaturatesAtFullRows) {
  // When the heavy rows cannot absorb the requested share, they cap at the
  // full row width and the remainder flows to the light rows.
  Rng rng(12);
  const CooMatrix coo = make_vdim_spread(400, 400, 8000, 4, 0.9, rng);
  const MatrixFeatures f = extract_features(coo);
  EXPECT_EQ(f.mdim, 400);
  EXPECT_NEAR(static_cast<double>(f.nnz), 8000.0, 16.0);
}

TEST(Profiles, AllElevenTableVEntriesPresent) {
  const auto& profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 11u);
  const char* expected[] = {"adult",   "breast_cancer", "aloi",
                            "gisette", "mnist",         "sector",
                            "epsilon", "leukemia",      "connect-4",
                            "trefethen", "dna"};
  for (std::size_t i = 0; i < 11; ++i) {
    EXPECT_EQ(profiles[i].name, expected[i]);
  }
}

TEST(Profiles, EvaluatedSetMatchesTableVI) {
  const auto evaluated = evaluated_profiles();
  EXPECT_EQ(evaluated.size(), 9u);  // Table VI rows
  for (const auto& p : evaluated) {
    EXPECT_TRUE(p.reference.worst.has_value());
    EXPECT_GT(p.reference.max_speedup, 1.0);
    EXPECT_GE(p.reference.max_speedup, p.reference.avg_speedup);
  }
}

TEST(Profiles, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(profile_by_name("mnist").paper.m, 450);
  EXPECT_THROW(profile_by_name("imagenet"), Error);
}

TEST(Profiles, GenerationIsDeterministic) {
  const Dataset a = profile_by_name("adult").generate(5);
  const Dataset b = profile_by_name("adult").generate(5);
  ASSERT_EQ(a.X.nnz(), b.X.nnz());
  test::expect_near(a.X.values(), b.X.values(), 0.0);
}

// Every profile's synthetic matrix must land near the paper's published
// statistics at generation scale.
class ProfileFidelity : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileFidelity, SyntheticMatchesPaperStatistics) {
  const DatasetProfile& p = profile_by_name(GetParam());
  const Dataset ds = p.generate(3);
  ds.validate();
  const MatrixFeatures f = extract_features(ds.X);

  EXPECT_EQ(f.m, p.gen_rows);
  EXPECT_EQ(f.n, p.gen_cols);
  // Density within 15% relative (generators are stochastic).
  EXPECT_NEAR(f.density, p.paper.density,
              std::max(0.03, 0.15 * p.paper.density));
  if (!p.scaled) {
    // Unscaled profiles reproduce nnz and adim closely.
    EXPECT_NEAR(static_cast<double>(f.nnz),
                static_cast<double>(p.paper.nnz),
                0.1 * static_cast<double>(p.paper.nnz) + 8.0);
    EXPECT_NEAR(f.adim, p.paper.adim, 0.1 * p.paper.adim + 1.0);
  }
  // Row-length cap honoured.
  EXPECT_LE(f.mdim, std::min<index_t>(p.paper.mdim, p.gen_cols));
  // Both classes present.
  bool pos = false, neg = false;
  for (real_t y : ds.y) {
    pos |= y > 0;
    neg |= y < 0;
  }
  EXPECT_TRUE(pos && neg);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileFidelity,
    ::testing::Values("adult", "breast_cancer", "aloi", "mnist", "sector",
                      "leukemia", "connect-4", "trefethen"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Profiles, TrefethenIsBandedWithTwelveDiagonals) {
  const Dataset ds = profile_by_name("trefethen").generate(3);
  const MatrixFeatures f = extract_features(ds.X);
  EXPECT_EQ(f.ndig, 12);
  EXPECT_GT(f.dnnz, 1000.0);
}

TEST(Profiles, Connect4HasConstantRowLength) {
  const Dataset ds = profile_by_name("connect-4").generate(3);
  const MatrixFeatures f = extract_features(ds.X);
  EXPECT_EQ(f.mdim, 42);
  EXPECT_DOUBLE_EQ(f.adim, 42.0);
  EXPECT_DOUBLE_EQ(f.vdim, 0.0);
}

TEST(PlantLabels, NoiseZeroIsLinearlySeparableish) {
  Rng rng(13);
  const CooMatrix x = test::random_matrix(100, 20, 0.5, rng);
  const auto y = plant_labels(x, 0.0, 77);
  ASSERT_EQ(y.size(), 100u);
  // Median-threshold labelling gives near-balanced classes.
  int pos = 0;
  for (real_t v : y) pos += v > 0;
  EXPECT_NEAR(pos, 50, 2);
}

// ---------------------------------------------------------------------------
// libsvm reader fuzz corpus: every malformed-line family observed in the
// wild must throw (strict) or be skipped atomically (permissive), and
// well-formed variants must parse no matter the line-ending or whitespace
// convention they were written with.

TEST(LibsvmFuzz, RejectsNonFiniteValues) {
  const char* corpus[] = {
      "+1 1:nan\n",  "+1 1:NaN\n",      "+1 1:inf\n",
      "-1 2:-inf\n", "+1 1:infinity\n", "+1 3:1e999\n",  // overflow -> inf
      "nan 1:1\n",                                       // non-finite label
      "inf 1:1\n",
  };
  for (const char* text : corpus) {
    std::stringstream in(text);
    EXPECT_THROW(read_libsvm(in, "nonfinite"), Error) << text;
  }
}

TEST(LibsvmFuzz, RejectsTruncatedTokens) {
  const char* corpus[] = {
      "+1 1:1 2:\n",    // value truncated away
      "+1 1:1 2\n",     // colon truncated away
      "+1 1:1 :\n",     // both halves missing
      "+1 1:1 :2\n",    // index missing
      "+1 1:1 2:3.5e\n",  // exponent cut mid-token
      "+1\t1:1\t2:\n",  // tab-separated truncation
  };
  for (const char* text : corpus) {
    std::stringstream in(text);
    EXPECT_THROW(read_libsvm(in, "truncated"), Error) << text;
  }
}

TEST(LibsvmFuzz, RejectsOutOfOrderIndices) {
  const char* corpus[] = {
      "+1 2:1 1:1\n",      // decreasing
      "+1 1:1 1:2\n",      // duplicate
      "+1 5:1 5:1 6:1\n",  // duplicate then increasing again
  };
  for (const char* text : corpus) {
    std::stringstream in(text);
    EXPECT_THROW(read_libsvm(in, "order"), Error) << text;
  }
}

TEST(LibsvmFuzz, CrlfLinesParseIdenticallyToLf) {
  const std::string lf = "+1 1:0.5 3:2.5\n-1 2:1.25 # comment\n";
  const std::string crlf = "+1 1:0.5 3:2.5\r\n-1 2:1.25 # comment\r\n";
  std::stringstream in_lf(lf);
  std::stringstream in_crlf(crlf);
  const Dataset a = read_libsvm(in_lf, "lf");
  const Dataset b = read_libsvm(in_crlf, "crlf");
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.X.nnz(), b.X.nnz());
  test::expect_bit_identical(a.X.values(), b.X.values());
  test::expect_bit_identical(a.y, b.y);
}

TEST(LibsvmFuzz, WhitespaceAndCommentVariantsParse) {
  std::stringstream in("+1   1:1\t2:2   \n"
                       "# a full-line comment\n"
                       "   \n"
                       "\r\n"
                       "-1 3:3\n");
  const Dataset ds = read_libsvm(in, "ws");
  ASSERT_EQ(ds.rows(), 2);
  EXPECT_EQ(ds.X.nnz(), 3);
  EXPECT_EQ(ds.y[0], 1.0);
  EXPECT_EQ(ds.y[1], -1.0);
}

TEST(LibsvmFuzz, PermissiveModeSkipsBadLinesAtomically) {
  // The third line fails AFTER two valid tokens: atomic rollback means none
  // of its entries may leak into the dataset.
  std::stringstream in("+1 1:1 2:2\n"
                       "bad_label 1:1\n"
                       "-1 1:7 2:8 3:nan\n"
                       "-1 3:3\n"
                       "+1 2:0 4:4\n");  // explicit zero is dropped, row kept
  LibsvmReadOptions opts;
  opts.permissive = true;
  LibsvmReadReport report;
  const Dataset ds = read_libsvm(in, "permissive", opts, &report);
  EXPECT_EQ(ds.rows(), 3);
  EXPECT_EQ(ds.X.nnz(), 4);  // 1:1 2:2 | 3:3 | 4:4
  EXPECT_EQ(report.lines_skipped, 2u);
  ASSERT_EQ(report.errors.size(), 2u);
  EXPECT_NE(report.errors[0].find("label"), std::string::npos);
  EXPECT_NE(report.errors[1].find("finite"), std::string::npos);
}

TEST(LibsvmFuzz, PermissiveErrorCapTruncatesReport) {
  std::string text;
  for (int i = 0; i < 10; ++i) text += "junk 1:1\n";
  std::stringstream in(text);
  LibsvmReadOptions opts;
  opts.permissive = true;
  opts.max_errors = 3;
  LibsvmReadReport report;
  const Dataset ds = read_libsvm(in, "cap", opts, &report);
  EXPECT_EQ(ds.rows(), 0);
  EXPECT_EQ(report.lines_skipped, 10u);
  EXPECT_EQ(report.errors.size(), 3u);
  EXPECT_TRUE(report.errors_truncated());
}

TEST(LibsvmFuzz, RoundTripIsBitExact) {
  // 17-significant-digit formatting must reproduce every double bit-for-bit,
  // including awkward ones (0.1, 1/3, huge, tiny-but-normal, negative zero
  // is unrepresentable in a sparse file so it is not in the corpus).
  Dataset ds;
  ds.name = "bitexact";
  ds.X = CooMatrix(
      3, 4,
      {{0, 0, 0.1},
       {0, 2, 1.0 / 3.0},
       {1, 1, -2.5e17},
       {1, 3, 4.9e-300},
       {2, 0, std::nextafter(1.0, 2.0)}});
  ds.y = {1.0, -1.0, 1.0};
  std::stringstream buffer;
  write_libsvm(buffer, ds);
  const Dataset back = read_libsvm(buffer, "back", 4);
  ASSERT_EQ(back.X.nnz(), ds.X.nnz());
  test::expect_bit_identical(back.X.values(), ds.X.values());
  test::expect_bit_identical(back.y, ds.y);
}

TEST(LibsvmFuzz, RandomizedCorruptionNeverCrashes) {
  // Start from a valid serialized dataset, flip random bytes, and require
  // the strict reader to either parse or throw ls::Error — never crash,
  // hang, or (under ASan) touch memory it should not.
  Rng rng(0xFADEull);
  Dataset ds;
  ds.name = "fuzzbase";
  ds.X = test::random_matrix(12, 9, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.1, 5);
  std::stringstream base;
  write_libsvm(base, ds);
  const std::string clean = base.str();

  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = clean;
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    for (int k = 0; k < flips; ++k) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<index_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.uniform_int(1, 127));
    }
    std::stringstream in(mutated);
    try {
      const Dataset parsed = read_libsvm(in, "mutated");
      EXPECT_LE(parsed.rows(), ds.rows() + 20);  // sanity, not correctness
    } catch (const Error&) {
      // Expected for most mutations.
    }
  }
}

}  // namespace
}  // namespace ls
