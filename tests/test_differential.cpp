// Property-based differential tests: every storage format is checked
// against the brute-force COO oracle (and against its own single-rhs
// kernel) on randomized matrices spanning the structural regimes the
// scheduler distinguishes — sparse, dense, diagonal, empty rows, single
// column/row, all-zero.
//
// Two comparison regimes:
//  * format vs oracle: accumulation ORDER differs by format (CSC folds in
//    column order, DIA in stripe order, ...), so results are compared with
//    the ULP-aware helper;
//  * batched vs single-rhs: every multiply_dense_batch implementation
//    mirrors its format's multiply_dense traversal per output element, so
//    lane k of a batched product must be BIT-identical to the single-rhs
//    product of that lane.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"
#include "test_util.hpp"

namespace {

using namespace ls;

struct MatrixCase {
  std::string name;
  CooMatrix coo;
};

/// A matrix with deliberately empty rows (first, middle, last).
CooMatrix matrix_with_empty_rows(index_t m, index_t n, Rng& rng) {
  std::vector<Triplet> triplets;
  for (index_t i = 0; i < m; ++i) {
    if (i == 0 || i == m / 2 || i == m - 1) continue;
    for (index_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) triplets.push_back({i, j, rng.uniform(-1, 1)});
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

const std::vector<MatrixCase>& structural_cases() {
  static const std::vector<MatrixCase> cases = [] {
    Rng rng(0xD1FFull);
    std::vector<MatrixCase> cs;
    cs.push_back({"sparse_1pct", test::random_matrix(48, 37, 0.01, rng)});
    cs.push_back({"sparse_10pct", test::random_matrix(33, 61, 0.10, rng)});
    cs.push_back({"half_dense", test::random_matrix(40, 40, 0.5, rng)});
    cs.push_back({"dense", make_dense_matrix(29, 23, rng)});
    cs.push_back({"tridiagonal", make_banded(50, 50, {0, 1, -1}, 1.0, rng)});
    cs.push_back(
        {"wide_band", make_banded(41, 41, {0, 2, -2, 5, -5, 9}, 0.8, rng)});
    cs.push_back({"empty_rows", matrix_with_empty_rows(21, 18, rng)});
    cs.push_back({"single_column", test::random_matrix(30, 1, 0.6, rng)});
    cs.push_back({"single_row", test::random_matrix(1, 25, 0.6, rng)});
    cs.push_back({"all_zero", CooMatrix(9, 7, {})});
    cs.push_back({"tall_skinny", test::random_matrix(120, 5, 0.25, rng)});
    cs.push_back({"short_fat", test::random_matrix(4, 90, 0.25, rng)});
    return cs;
  }();
  return cases;
}

/// Runs `fn(case, format, mat)` for every structural case x format pair.
template <class Fn>
void for_each_case_and_format(Fn&& fn) {
  for (const MatrixCase& c : structural_cases()) {
    for (Format f : kExtendedFormats) {
      SCOPED_TRACE(c.name + " / " + std::string(format_name(f)));
      fn(c, AnyMatrix::from_coo(c.coo, f));
    }
  }
}

/// Interleaved batch rhs: lane k of the block is `lanes[k]`.
std::vector<real_t> interleave(const std::vector<std::vector<real_t>>& lanes) {
  const auto b = lanes.size();
  const auto n = lanes.front().size();
  std::vector<real_t> w(n * b);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < b; ++k) w[j * b + k] = lanes[k][j];
  }
  return w;
}

/// Lane k extracted from an interleaved batch result.
std::vector<real_t> lane(const std::vector<real_t>& y, std::size_t b,
                         std::size_t k) {
  std::vector<real_t> out(y.size() / b);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = y[i * b + k];
  return out;
}

void check_batch_matches_single(index_t b_rows) {
  for_each_case_and_format([&](const MatrixCase&, const AnyMatrix& mat) {
    Rng rng(0xBEEFull + static_cast<std::uint64_t>(b_rows));
    const auto b = static_cast<std::size_t>(b_rows);
    std::vector<std::vector<real_t>> lanes(b);
    for (auto& l : lanes) l = test::random_vector(mat.cols(), rng);

    const std::vector<real_t> w = interleave(lanes);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b, -7.0);
    mat.multiply_dense_batch(w, b_rows, y);

    std::vector<real_t> single(static_cast<std::size_t>(mat.rows()));
    for (std::size_t k = 0; k < b; ++k) {
      mat.multiply_dense(lanes[k], single);
      test::expect_bit_identical(lane(y, b, k), single);
    }
  });
}

TEST(Differential, MultiplyMatchesOracleAllFormats) {
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0xACE5ull);
    const std::vector<real_t> w = test::random_vector(mat.cols(), rng);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()), -3.0);
    mat.multiply_dense(w, y);
    test::expect_ulp_near(y, test::reference_multiply(c.coo, w));
  });
}

TEST(Differential, MultiplyWithSparseRhsMatchesOracle) {
  // The SMO workspace is a scattered matrix row: mostly exact zeros. This
  // drives the CSC dead-column skip and the zero-product paths.
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0x5A5Aull);
    std::vector<real_t> w(static_cast<std::size_t>(mat.cols()), 0.0);
    for (auto& x : w) {
      if (rng.bernoulli(0.2)) x = rng.uniform(-2.0, 2.0);
    }
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()), 1.0);
    mat.multiply_dense(w, y);
    test::expect_ulp_near(y, test::reference_multiply(c.coo, w));
  });
}

TEST(Differential, BatchMatchesOracleAllFormats) {
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0xFACEull);
    constexpr std::size_t b = 5;
    std::vector<std::vector<real_t>> lanes(b);
    for (auto& l : lanes) l = test::random_vector(mat.cols(), rng);
    const std::vector<real_t> w = interleave(lanes);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b);
    mat.multiply_dense_batch(w, static_cast<index_t>(b), y);
    for (std::size_t k = 0; k < b; ++k) {
      test::expect_ulp_near(lane(y, b, k),
                            test::reference_multiply(c.coo, lanes[k]));
    }
  });
}

TEST(Differential, BatchLaneBitIdenticalToSingleB1) {
  check_batch_matches_single(1);
}

TEST(Differential, BatchLaneBitIdenticalToSingleB3) {
  check_batch_matches_single(3);
}

TEST(Differential, BatchLaneBitIdenticalToSingleB8) {
  check_batch_matches_single(8);
}

TEST(Differential, BatchLaneBitIdenticalToSingleMaxBatch) {
  check_batch_matches_single(kMaxSmsvBatch);
}

TEST(Differential, BatchWithSparseLanesMatchesOracle) {
  // Lanes with exact zeros: the batched CSC column skip only fires when
  // ALL lanes are zero in that column, which must not change any lane's
  // value beyond accumulation-order noise.
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0x0FF5ull);
    constexpr std::size_t b = 4;
    std::vector<std::vector<real_t>> lanes(
        b, std::vector<real_t>(static_cast<std::size_t>(mat.cols()), 0.0));
    for (auto& l : lanes) {
      for (auto& x : l) {
        if (rng.bernoulli(0.15)) x = rng.uniform(-1.0, 1.0);
      }
    }
    const std::vector<real_t> w = interleave(lanes);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b);
    mat.multiply_dense_batch(w, static_cast<index_t>(b), y);
    for (std::size_t k = 0; k < b; ++k) {
      test::expect_ulp_near(lane(y, b, k),
                            test::reference_multiply(c.coo, lanes[k]));
    }
  });
}

TEST(Differential, GatherRowMatchesOracleAllFormats) {
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    SparseVector row;
    std::vector<real_t> dense(static_cast<std::size_t>(mat.cols()));
    for (index_t i = 0; i < mat.rows(); ++i) {
      mat.gather_row(i, row);
      std::fill(dense.begin(), dense.end(), 0.0);
      row.scatter(dense);

      std::vector<real_t> expected(static_cast<std::size_t>(c.coo.cols()),
                                   0.0);
      const auto rows = c.coo.row_indices();
      const auto cols = c.coo.col_indices();
      const auto vals = c.coo.values();
      for (std::size_t k = 0; k < vals.size(); ++k) {
        if (rows[k] == i) expected[static_cast<std::size_t>(cols[k])] = vals[k];
      }
      test::expect_bit_identical(dense, expected);
    }
  });
}

TEST(Differential, GatherRowsBatchMatchesPerRowGather) {
  // Includes duplicate and out-of-order ids — the batch contract is purely
  // elementwise: out[k] = gather_row(rows[k]).
  for_each_case_and_format([](const MatrixCase&, const AnyMatrix& mat) {
    const index_t m = mat.rows();
    std::vector<index_t> ids = {m - 1, 0, m / 2, 0, m - 1};
    std::vector<SparseVector> batch(ids.size());
    mat.gather_rows_batch(ids, batch);

    SparseVector expected;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      mat.gather_row(ids[k], expected);
      ASSERT_EQ(batch[k].nnz(), expected.nnz()) << "slot " << k;
      for (index_t e = 0; e < expected.nnz(); ++e) {
        const auto eu = static_cast<std::size_t>(e);
        EXPECT_EQ(batch[k].indices()[eu], expected.indices()[eu]);
        EXPECT_EQ(batch[k].values()[eu], expected.values()[eu]);
      }
    }
  });
}

TEST(Differential, CooGatherRowsBatchMatchesPerRowGather) {
  Rng rng(0xC00ull);
  const CooMatrix coo = test::random_matrix(17, 11, 0.3, rng);
  std::vector<index_t> ids = {16, 3, 3, 0, 8};
  std::vector<SparseVector> batch(ids.size());
  coo.gather_rows_batch(ids, batch);
  SparseVector expected;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    coo.gather_row(ids[k], expected);
    ASSERT_EQ(batch[k].nnz(), expected.nnz()) << "slot " << k;
    for (index_t e = 0; e < expected.nnz(); ++e) {
      const auto eu = static_cast<std::size_t>(e);
      EXPECT_EQ(batch[k].indices()[eu], expected.indices()[eu]);
      EXPECT_EQ(batch[k].values()[eu], expected.values()[eu]);
    }
  }
}

TEST(Differential, BatchRejectsBadArguments) {
  Rng rng(0xBADull);
  const AnyMatrix mat =
      AnyMatrix::from_coo(test::random_matrix(6, 5, 0.5, rng), Format::kCSR);
  std::vector<real_t> w(5 * 2, 0.0);
  std::vector<real_t> y(6 * 2, 0.0);
  EXPECT_THROW(mat.multiply_dense_batch(w, 0, y), Error);
  EXPECT_THROW(mat.multiply_dense_batch(w, kMaxSmsvBatch + 1, y), Error);
  EXPECT_THROW(mat.multiply_dense_batch(w, 3, y), Error);  // w sized for b=2
  std::vector<real_t> y_short(6, 0.0);
  EXPECT_THROW(mat.multiply_dense_batch(w, 2, y_short), Error);
  std::vector<SparseVector> out(3);
  std::vector<index_t> two_ids = {0, 1};
  EXPECT_THROW(mat.gather_rows_batch(two_ids, out), Error);
}

TEST(Differential, UlpHelperSanity) {
  EXPECT_EQ(test::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(test::ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(
      test::ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(test::ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  EXPECT_GT(test::ulp_distance(1.0, 1.0 + 1e-9), 1000u);
  EXPECT_EQ(test::ulp_distance(std::numeric_limits<double>::quiet_NaN(), 1.0),
            std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
