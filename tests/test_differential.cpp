// Property-based differential tests: every storage format is checked
// against the brute-force COO oracle (and against its own single-rhs
// kernel) on randomized matrices spanning the structural regimes the
// scheduler distinguishes — sparse, dense, diagonal, empty rows, single
// column/row, all-zero.
//
// Two comparison regimes:
//  * format vs oracle: accumulation ORDER differs by format (CSC folds in
//    column order, DIA in stripe order, ...), so results are compared with
//    the ULP-aware helper;
//  * batched vs single-rhs: every multiply_dense_batch implementation
//    mirrors its format's multiply_dense traversal per output element, so
//    lane k of a batched product must be BIT-identical to the single-rhs
//    product of that lane.
// A third regime covers the SIMD dispatch layer (src/kernels): every
// dispatchable micro-kernel is run at every level the host supports and
// compared against the scalar reference — ULP-bounded across levels
// (accumulation order differs), BIT-identical between a batched lane and
// the single-rhs kernel at the same level. Shapes are adversarial on
// purpose: empty and single-element rows, batch widths 1..kMaxSmsvBatch,
// remainder lengths straddling every vector width (2/4/8), and row
// starts deliberately misaligned from the 64-byte allocation base.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"
#include "kernels/simd.hpp"
#include "test_util.hpp"

namespace {

using namespace ls;

struct MatrixCase {
  std::string name;
  CooMatrix coo;
};

/// A matrix with deliberately empty rows (first, middle, last).
CooMatrix matrix_with_empty_rows(index_t m, index_t n, Rng& rng) {
  std::vector<Triplet> triplets;
  for (index_t i = 0; i < m; ++i) {
    if (i == 0 || i == m / 2 || i == m - 1) continue;
    for (index_t j = 0; j < n; ++j) {
      if (rng.bernoulli(0.3)) triplets.push_back({i, j, rng.uniform(-1, 1)});
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

const std::vector<MatrixCase>& structural_cases() {
  static const std::vector<MatrixCase> cases = [] {
    Rng rng(0xD1FFull);
    std::vector<MatrixCase> cs;
    cs.push_back({"sparse_1pct", test::random_matrix(48, 37, 0.01, rng)});
    cs.push_back({"sparse_10pct", test::random_matrix(33, 61, 0.10, rng)});
    cs.push_back({"half_dense", test::random_matrix(40, 40, 0.5, rng)});
    cs.push_back({"dense", make_dense_matrix(29, 23, rng)});
    cs.push_back({"tridiagonal", make_banded(50, 50, {0, 1, -1}, 1.0, rng)});
    cs.push_back(
        {"wide_band", make_banded(41, 41, {0, 2, -2, 5, -5, 9}, 0.8, rng)});
    cs.push_back({"empty_rows", matrix_with_empty_rows(21, 18, rng)});
    cs.push_back({"single_column", test::random_matrix(30, 1, 0.6, rng)});
    cs.push_back({"single_row", test::random_matrix(1, 25, 0.6, rng)});
    cs.push_back({"all_zero", CooMatrix(9, 7, {})});
    cs.push_back({"tall_skinny", test::random_matrix(120, 5, 0.25, rng)});
    cs.push_back({"short_fat", test::random_matrix(4, 90, 0.25, rng)});
    return cs;
  }();
  return cases;
}

/// Runs `fn(case, format, mat)` for every structural case x format pair.
template <class Fn>
void for_each_case_and_format(Fn&& fn) {
  for (const MatrixCase& c : structural_cases()) {
    for (Format f : kExtendedFormats) {
      SCOPED_TRACE(c.name + " / " + std::string(format_name(f)));
      fn(c, AnyMatrix::from_coo(c.coo, f));
    }
  }
}

/// Interleaved batch rhs: lane k of the block is `lanes[k]`.
std::vector<real_t> interleave(const std::vector<std::vector<real_t>>& lanes) {
  const auto b = lanes.size();
  const auto n = lanes.front().size();
  std::vector<real_t> w(n * b);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < b; ++k) w[j * b + k] = lanes[k][j];
  }
  return w;
}

/// Lane k extracted from an interleaved batch result.
std::vector<real_t> lane(const std::vector<real_t>& y, std::size_t b,
                         std::size_t k) {
  std::vector<real_t> out(y.size() / b);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = y[i * b + k];
  return out;
}

void check_batch_matches_single(index_t b_rows) {
  for_each_case_and_format([&](const MatrixCase&, const AnyMatrix& mat) {
    Rng rng(0xBEEFull + static_cast<std::uint64_t>(b_rows));
    const auto b = static_cast<std::size_t>(b_rows);
    std::vector<std::vector<real_t>> lanes(b);
    for (auto& l : lanes) l = test::random_vector(mat.cols(), rng);

    const std::vector<real_t> w = interleave(lanes);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b, -7.0);
    mat.multiply_dense_batch(w, b_rows, y);

    std::vector<real_t> single(static_cast<std::size_t>(mat.rows()));
    for (std::size_t k = 0; k < b; ++k) {
      mat.multiply_dense(lanes[k], single);
      test::expect_bit_identical(lane(y, b, k), single);
    }
  });
}

TEST(Differential, MultiplyMatchesOracleAllFormats) {
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0xACE5ull);
    const std::vector<real_t> w = test::random_vector(mat.cols(), rng);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()), -3.0);
    mat.multiply_dense(w, y);
    test::expect_ulp_near(y, test::reference_multiply(c.coo, w));
  });
}

TEST(Differential, MultiplyWithSparseRhsMatchesOracle) {
  // The SMO workspace is a scattered matrix row: mostly exact zeros. This
  // drives the CSC dead-column skip and the zero-product paths.
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0x5A5Aull);
    std::vector<real_t> w(static_cast<std::size_t>(mat.cols()), 0.0);
    for (auto& x : w) {
      if (rng.bernoulli(0.2)) x = rng.uniform(-2.0, 2.0);
    }
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()), 1.0);
    mat.multiply_dense(w, y);
    test::expect_ulp_near(y, test::reference_multiply(c.coo, w));
  });
}

TEST(Differential, BatchMatchesOracleAllFormats) {
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0xFACEull);
    constexpr std::size_t b = 5;
    std::vector<std::vector<real_t>> lanes(b);
    for (auto& l : lanes) l = test::random_vector(mat.cols(), rng);
    const std::vector<real_t> w = interleave(lanes);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b);
    mat.multiply_dense_batch(w, static_cast<index_t>(b), y);
    for (std::size_t k = 0; k < b; ++k) {
      test::expect_ulp_near(lane(y, b, k),
                            test::reference_multiply(c.coo, lanes[k]));
    }
  });
}

TEST(Differential, BatchLaneBitIdenticalToSingleB1) {
  check_batch_matches_single(1);
}

TEST(Differential, BatchLaneBitIdenticalToSingleB3) {
  check_batch_matches_single(3);
}

TEST(Differential, BatchLaneBitIdenticalToSingleB8) {
  check_batch_matches_single(8);
}

TEST(Differential, BatchLaneBitIdenticalToSingleMaxBatch) {
  check_batch_matches_single(kMaxSmsvBatch);
}

TEST(Differential, BatchWithSparseLanesMatchesOracle) {
  // Lanes with exact zeros: the batched CSC column skip only fires when
  // ALL lanes are zero in that column, which must not change any lane's
  // value beyond accumulation-order noise.
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    Rng rng(0x0FF5ull);
    constexpr std::size_t b = 4;
    std::vector<std::vector<real_t>> lanes(
        b, std::vector<real_t>(static_cast<std::size_t>(mat.cols()), 0.0));
    for (auto& l : lanes) {
      for (auto& x : l) {
        if (rng.bernoulli(0.15)) x = rng.uniform(-1.0, 1.0);
      }
    }
    const std::vector<real_t> w = interleave(lanes);
    std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b);
    mat.multiply_dense_batch(w, static_cast<index_t>(b), y);
    for (std::size_t k = 0; k < b; ++k) {
      test::expect_ulp_near(lane(y, b, k),
                            test::reference_multiply(c.coo, lanes[k]));
    }
  });
}

TEST(Differential, GatherRowMatchesOracleAllFormats) {
  for_each_case_and_format([](const MatrixCase& c, const AnyMatrix& mat) {
    SparseVector row;
    std::vector<real_t> dense(static_cast<std::size_t>(mat.cols()));
    for (index_t i = 0; i < mat.rows(); ++i) {
      mat.gather_row(i, row);
      std::fill(dense.begin(), dense.end(), 0.0);
      row.scatter(dense);

      std::vector<real_t> expected(static_cast<std::size_t>(c.coo.cols()),
                                   0.0);
      const auto rows = c.coo.row_indices();
      const auto cols = c.coo.col_indices();
      const auto vals = c.coo.values();
      for (std::size_t k = 0; k < vals.size(); ++k) {
        if (rows[k] == i) expected[static_cast<std::size_t>(cols[k])] = vals[k];
      }
      test::expect_bit_identical(dense, expected);
    }
  });
}

TEST(Differential, GatherRowsBatchMatchesPerRowGather) {
  // Includes duplicate and out-of-order ids — the batch contract is purely
  // elementwise: out[k] = gather_row(rows[k]).
  for_each_case_and_format([](const MatrixCase&, const AnyMatrix& mat) {
    const index_t m = mat.rows();
    std::vector<index_t> ids = {m - 1, 0, m / 2, 0, m - 1};
    std::vector<SparseVector> batch(ids.size());
    mat.gather_rows_batch(ids, batch);

    SparseVector expected;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      mat.gather_row(ids[k], expected);
      ASSERT_EQ(batch[k].nnz(), expected.nnz()) << "slot " << k;
      for (index_t e = 0; e < expected.nnz(); ++e) {
        const auto eu = static_cast<std::size_t>(e);
        EXPECT_EQ(batch[k].indices()[eu], expected.indices()[eu]);
        EXPECT_EQ(batch[k].values()[eu], expected.values()[eu]);
      }
    }
  });
}

TEST(Differential, CooGatherRowsBatchMatchesPerRowGather) {
  Rng rng(0xC00ull);
  const CooMatrix coo = test::random_matrix(17, 11, 0.3, rng);
  std::vector<index_t> ids = {16, 3, 3, 0, 8};
  std::vector<SparseVector> batch(ids.size());
  coo.gather_rows_batch(ids, batch);
  SparseVector expected;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    coo.gather_row(ids[k], expected);
    ASSERT_EQ(batch[k].nnz(), expected.nnz()) << "slot " << k;
    for (index_t e = 0; e < expected.nnz(); ++e) {
      const auto eu = static_cast<std::size_t>(e);
      EXPECT_EQ(batch[k].indices()[eu], expected.indices()[eu]);
      EXPECT_EQ(batch[k].values()[eu], expected.values()[eu]);
    }
  }
}

TEST(Differential, BatchRejectsBadArguments) {
  Rng rng(0xBADull);
  const AnyMatrix mat =
      AnyMatrix::from_coo(test::random_matrix(6, 5, 0.5, rng), Format::kCSR);
  std::vector<real_t> w(5 * 2, 0.0);
  std::vector<real_t> y(6 * 2, 0.0);
  EXPECT_THROW(mat.multiply_dense_batch(w, 0, y), Error);
  EXPECT_THROW(mat.multiply_dense_batch(w, kMaxSmsvBatch + 1, y), Error);
  EXPECT_THROW(mat.multiply_dense_batch(w, 3, y), Error);  // w sized for b=2
  std::vector<real_t> y_short(6, 0.0);
  EXPECT_THROW(mat.multiply_dense_batch(w, 2, y_short), Error);
  std::vector<SparseVector> out(3);
  std::vector<index_t> two_ids = {0, 1};
  EXPECT_THROW(mat.gather_rows_batch(two_ids, out), Error);
}

// ------------------------------------------- cross-ISA kernel harness

/// Every dispatch level the running host supports (scalar included).
std::vector<simd::SimdLevel> supported_levels() {
  std::vector<simd::SimdLevel> levels;
  for (int l = 0; l < simd::kNumSimdLevels; ++l) {
    const auto level = static_cast<simd::SimdLevel>(l);
    if (simd::level_supported(level)) levels.push_back(level);
  }
  return levels;
}

/// Lengths that straddle every vector width in play (2, 4, 8): empty,
/// single element, each width +-1, and longer runs with every remainder
/// class around the widest accumulator block.
const std::vector<index_t>& adversarial_lengths() {
  static const std::vector<index_t> lens = {0,  1,  2,  3,  4,  5,  7,  8,
                                            9,  15, 16, 17, 31, 32, 33, 63,
                                            64, 65, 100, 127};
  return lens;
}

/// Fills [0, n) of an aligned buffer with deterministic non-trivial values.
void fill_values(AlignedBuffer<real_t>& buf, Rng& rng) {
  for (auto& x : buf) x = rng.uniform(-2.0, 2.0);
}

/// Scalar version of test::expect_ulp_near — same ULP bound plus the
/// absolute escape hatch for sums that cancel to ~0.
void expect_close(real_t got, real_t want) {
  const std::vector<real_t> g{got}, w{want};
  test::expect_ulp_near(g, w);
}

TEST(CrossIsa, DenseRowDotMatchesScalarAtEveryLevel) {
  Rng rng(0x51D0ull);
  AlignedBuffer<real_t> r(256), w(256);
  fill_values(r, rng);
  fill_values(w, rng);
  for (simd::SimdLevel level : supported_levels()) {
    simd::ScopedSimdLevel guard(level);
    SCOPED_TRACE(std::string(simd::level_name(level)));
    for (index_t n : adversarial_lengths()) {
      // Offsets break the 64-byte base alignment: CSR row starts land on
      // arbitrary element offsets, so the kernels must not assume more
      // than 8-byte alignment.
      for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{7}}) {
        SCOPED_TRACE("n=" + std::to_string(n) + " off=" + std::to_string(off));
        const real_t got =
            simd::kernels().dense_row_dot(r.data() + off, w.data() + off, n);
        real_t want;
        {
          simd::ScopedSimdLevel scalar(simd::SimdLevel::kScalar);
          want =
              simd::kernels().dense_row_dot(r.data() + off, w.data() + off, n);
        }
        expect_close(got, want);
      }
    }
  }
}

TEST(CrossIsa, SparseRowDotMatchesScalarAtEveryLevel) {
  Rng rng(0x51D1ull);
  AlignedBuffer<real_t> v(256), w(97);
  AlignedBuffer<index_t> c(256);
  fill_values(v, rng);
  fill_values(w, rng);
  for (auto& idx : c) idx = rng.uniform_int(0, 96);
  for (simd::SimdLevel level : supported_levels()) {
    simd::ScopedSimdLevel guard(level);
    SCOPED_TRACE(std::string(simd::level_name(level)));
    for (index_t n : adversarial_lengths()) {
      for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
        SCOPED_TRACE("n=" + std::to_string(n) + " off=" + std::to_string(off));
        const real_t got = simd::kernels().sparse_row_dot(
            v.data() + off, c.data() + off, n, w.data());
        real_t want;
        {
          simd::ScopedSimdLevel scalar(simd::SimdLevel::kScalar);
          want = simd::kernels().sparse_row_dot(v.data() + off, c.data() + off,
                                                n, w.data());
        }
        expect_close(got, want);
      }
    }
  }
}

TEST(CrossIsa, BatchKernelLanesBitIdenticalToSingleAtEveryLevel) {
  // The core numerical contract of the dispatch layer: at a FIXED level,
  // lane q of a batched kernel is bit-identical to the single-rhs kernel.
  // Swept over every batch width the engine can issue (1..kMaxSmsvBatch)
  // and lengths around the widest vector block.
  Rng rng(0x51D2ull);
  AlignedBuffer<real_t> r(72);
  AlignedBuffer<index_t> c(72);
  fill_values(r, rng);
  for (auto& idx : c) idx = rng.uniform_int(0, 71);
  AlignedBuffer<real_t> wblock(72 * static_cast<std::size_t>(kMaxSmsvBatch));
  fill_values(wblock, rng);

  for (simd::SimdLevel level : supported_levels()) {
    simd::ScopedSimdLevel guard(level);
    SCOPED_TRACE(std::string(simd::level_name(level)));
    const simd::KernelTable& kt = simd::kernels();
    for (index_t n : {index_t{0}, index_t{1}, index_t{7}, index_t{8},
                      index_t{9}, index_t{33}, index_t{72}}) {
      for (index_t b = 1; b <= kMaxSmsvBatch; ++b) {
        std::vector<real_t> y(static_cast<std::size_t>(b), -7.0);
        kt.dense_row_batch(r.data(), n, wblock.data(), b, y.data());
        std::vector<real_t> ys(static_cast<std::size_t>(b), -9.0);
        kt.sparse_row_batch(r.data(), c.data(), n, wblock.data(), b,
                            ys.data());
        // Lane q of the block sees w[j*b + q]; gather it into a contiguous
        // single-rhs workspace to run the single kernel on the same data.
        std::vector<real_t> wq(72);
        for (index_t q = 0; q < b; ++q) {
          for (std::size_t j = 0; j < 72; ++j) {
            wq[j] = wblock[j * static_cast<std::size_t>(b) +
                           static_cast<std::size_t>(q)];
          }
          const real_t dq = kt.dense_row_dot(r.data(), wq.data(), n);
          const real_t sq = kt.sparse_row_dot(r.data(), c.data(), n, wq.data());
          ASSERT_EQ(y[static_cast<std::size_t>(q)], dq)
              << "dense lane " << q << " of b=" << b << " n=" << n;
          ASSERT_EQ(ys[static_cast<std::size_t>(q)], sq)
              << "sparse lane " << q << " of b=" << b << " n=" << n;
        }
      }
    }
  }
}

TEST(CrossIsa, StripKernelsMatchScalarAtEveryLevel) {
  // gather_axpy (ELL/HYB strips) and gather_scatter_axpy (JDS strips),
  // single and batched, against the scalar table. The scatter variant gets
  // a permutation for rows (its documented precondition).
  Rng rng(0x51D3ull);
  constexpr index_t kLen = 67;  // odd: remainder lanes at every width
  AlignedBuffer<real_t> v(kLen);
  AlignedBuffer<index_t> c(kLen);
  fill_values(v, rng);
  for (auto& idx : c) idx = rng.uniform_int(0, 40);
  AlignedBuffer<real_t> w(41);
  fill_values(w, rng);
  std::vector<index_t> rows(kLen);
  std::iota(rows.begin(), rows.end(), index_t{0});
  shuffle(rows.begin(), rows.end(), rng);

  auto run_level = [&](simd::SimdLevel level, index_t len, index_t b,
                       std::vector<real_t>& y_axpy,
                       std::vector<real_t>& y_scatter,
                       std::vector<real_t>& yb_axpy,
                       std::vector<real_t>& yb_scatter) {
    simd::ScopedSimdLevel guard(level);
    const simd::KernelTable& kt = simd::kernels();
    y_axpy.assign(static_cast<std::size_t>(kLen), 0.25);
    kt.gather_axpy(v.data(), c.data(), len, w.data(), y_axpy.data());
    y_scatter.assign(static_cast<std::size_t>(kLen), -0.5);
    kt.gather_scatter_axpy(v.data(), c.data(), rows.data(), len, w.data(),
                           y_scatter.data());
    AlignedBuffer<real_t> wblock(41 * static_cast<std::size_t>(b));
    Rng wrng(0xB10Cull);  // same block at every level
    fill_values(wblock, wrng);
    yb_axpy.assign(static_cast<std::size_t>(kLen * b), 0.125);
    kt.gather_axpy_batch(v.data(), c.data(), len, wblock.data(), b,
                         yb_axpy.data());
    yb_scatter.assign(static_cast<std::size_t>(kLen * b), 1.5);
    kt.gather_scatter_axpy_batch(v.data(), c.data(), rows.data(), len,
                                 wblock.data(), b, yb_scatter.data());
  };

  for (index_t len : {index_t{0}, index_t{1}, index_t{2}, index_t{3},
                      index_t{8}, index_t{9}, kLen}) {
    for (index_t b : {index_t{1}, index_t{3}, index_t{8}, index_t{13}}) {
      std::vector<real_t> sa, ss, sba, sbs;
      run_level(simd::SimdLevel::kScalar, len, b, sa, ss, sba, sbs);
      for (simd::SimdLevel level : supported_levels()) {
        SCOPED_TRACE(std::string(simd::level_name(level)) + " len=" +
                     std::to_string(len) + " b=" + std::to_string(b));
        std::vector<real_t> la, ls, lba, lbs;
        run_level(level, len, b, la, ls, lba, lbs);
        test::expect_ulp_near(la, sa);
        test::expect_ulp_near(ls, ss);
        test::expect_ulp_near(lba, sba);
        test::expect_ulp_near(lbs, sbs);
      }
    }
  }
}

TEST(CrossIsa, FormatMultipliesMatchScalarAtEveryLevel) {
  // End to end through the format layer: every structural case x every
  // format x every supported level, single and batched, against the same
  // product computed with the scalar table.
  for (simd::SimdLevel level : supported_levels()) {
    if (level == simd::SimdLevel::kScalar) continue;
    for_each_case_and_format([&](const MatrixCase& c, const AnyMatrix& mat) {
      SCOPED_TRACE(std::string(simd::level_name(level)));
      Rng rng(0xC105ull);
      const std::vector<real_t> w = test::random_vector(mat.cols(), rng);
      constexpr std::size_t b = 5;
      std::vector<std::vector<real_t>> lanes(b);
      for (auto& l : lanes) l = test::random_vector(mat.cols(), rng);
      const std::vector<real_t> wb = interleave(lanes);

      std::vector<real_t> y_scalar(static_cast<std::size_t>(mat.rows()));
      std::vector<real_t> yb_scalar(static_cast<std::size_t>(mat.rows()) * b);
      {
        simd::ScopedSimdLevel guard(simd::SimdLevel::kScalar);
        mat.multiply_dense(w, y_scalar);
        mat.multiply_dense_batch(wb, static_cast<index_t>(b), yb_scalar);
      }
      std::vector<real_t> y(static_cast<std::size_t>(mat.rows()));
      std::vector<real_t> yb(static_cast<std::size_t>(mat.rows()) * b);
      {
        simd::ScopedSimdLevel guard(level);
        mat.multiply_dense(w, y);
        mat.multiply_dense_batch(wb, static_cast<index_t>(b), yb);
      }
      test::expect_ulp_near(y, y_scalar);
      test::expect_ulp_near(yb, yb_scalar);
      // And the cross-level results still agree with the COO oracle.
      test::expect_ulp_near(y, test::reference_multiply(c.coo, w));
    });
  }
}

TEST(CrossIsa, FormatBatchLanesBitIdenticalAtEveryLevel) {
  // The format-layer bit-identity guarantee (batch lane == single rhs)
  // holds at every level, not just the env-selected one. Batch widths
  // sweep 1..kMaxSmsvBatch on a remainder-heavy case.
  Rng rng(0x1A9Eull);
  const CooMatrix coo = test::random_matrix(37, 29, 0.35, rng);
  for (simd::SimdLevel level : supported_levels()) {
    simd::ScopedSimdLevel guard(level);
    SCOPED_TRACE(std::string(simd::level_name(level)));
    for (Format f : {Format::kDEN, Format::kCSR, Format::kELL, Format::kJDS,
                     Format::kHYB}) {
      SCOPED_TRACE(std::string(format_name(f)));
      const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
      for (index_t b_rows : {index_t{1}, index_t{2}, index_t{3}, index_t{4},
                             index_t{5}, index_t{7}, index_t{8}, index_t{9},
                             index_t{16}, index_t{17}, index_t{31},
                             index_t{33}, index_t{63},
                             index_t{kMaxSmsvBatch}}) {
        const auto b = static_cast<std::size_t>(b_rows);
        std::vector<std::vector<real_t>> lanes(b);
        for (auto& l : lanes) l = test::random_vector(mat.cols(), rng);
        const std::vector<real_t> w = interleave(lanes);
        std::vector<real_t> y(static_cast<std::size_t>(mat.rows()) * b, -7.0);
        mat.multiply_dense_batch(w, b_rows, y);
        std::vector<real_t> single(static_cast<std::size_t>(mat.rows()));
        for (std::size_t k = 0; k < b; ++k) {
          SCOPED_TRACE("b=" + std::to_string(b_rows) + " lane " +
                       std::to_string(k));
          mat.multiply_dense(lanes[k], single);
          test::expect_bit_identical(lane(y, b, k), single);
        }
      }
    }
  }
}

TEST(Differential, UlpHelperSanity) {
  EXPECT_EQ(test::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(test::ulp_distance(0.0, -0.0), 0u);
  EXPECT_EQ(
      test::ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(test::ulp_distance(-1.0, std::nextafter(-1.0, -2.0)), 1u);
  EXPECT_GT(test::ulp_distance(1.0, 1.0 + 1e-9), 1000u);
  EXPECT_EQ(test::ulp_distance(std::numeric_limits<double>::quiet_NaN(), 1.0),
            std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
