// Tests for the DNN substrate: tensor indexing, finite-difference gradient
// checks for every layer, the SGD+momentum update rule (Eqs. 8-9), real
// training on synthetic data, and the data-parallel equivalence property.
#include <gtest/gtest.h>

#include <cmath>

#include "dnn/cifar.hpp"
#include "dnn/conv_gemm.hpp"
#include "dnn/net.hpp"
#include "dnn/sgd.hpp"
#include "dnn/trainer.hpp"

namespace ls {
namespace {

TEST(Tensor, IndexingIsNchwRowMajor) {
  Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 2 * 3 * 4 * 5);
  EXPECT_EQ(t.sample_size(), 60);
  t.at(1, 2, 3, 4) = 7.0;
  EXPECT_EQ(t[t.size() - 1], 7.0);
  t.at(0, 0, 0, 1) = 3.0;
  EXPECT_EQ(t[1], 3.0);
}

TEST(Tensor, FillAndShapeComparison) {
  Tensor a(1, 2, 2, 2), b(1, 2, 2, 2), c(2, 2, 2, 1);
  a.fill(5.0);
  for (index_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 5.0);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

// ---------------------------------------------------------- grad checks

/// Numerically checks dLoss/dInput and dLoss/dParams of a layer using a
/// random quadratic loss L = 0.5 * sum_i c_i * out_i^2.
void gradient_check(Layer& layer, Tensor in, double tol = 1e-5) {
  Rng rng(0x6ead);
  for (index_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.0, 1.0);

  Tensor out = layer.make_output(in);
  std::vector<real_t> c(static_cast<std::size_t>(out.size()));
  for (auto& x : c) x = rng.uniform(-1.0, 1.0);

  auto loss_of = [&](const Tensor& input) {
    Tensor o = layer.make_output(input);
    layer.forward(input, o);
    double loss = 0.0;
    for (index_t i = 0; i < o.size(); ++i) {
      loss += 0.5 * c[static_cast<std::size_t>(i)] * o[i] * o[i];
    }
    return loss;
  };

  // Analytic gradients.
  layer.forward(in, out);
  Tensor grad_out = layer.make_output(in);
  for (index_t i = 0; i < out.size(); ++i) {
    grad_out[i] = c[static_cast<std::size_t>(i)] * out[i];
  }
  Tensor grad_in(in.n(), in.c(), in.h(), in.w());
  for (ParamBlob* p : layer.params()) p->zero_grad();
  layer.backward(in, grad_out, grad_in);

  const double eps = 1e-6;
  // Input gradient at a sample of positions.
  for (index_t i = 0; i < in.size(); i += std::max<index_t>(1, in.size() / 17)) {
    const real_t saved = in[i];
    in[i] = saved + eps;
    const double up = loss_of(in);
    in[i] = saved - eps;
    const double down = loss_of(in);
    in[i] = saved;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol * (1.0 + std::abs(numeric)))
        << "input grad at " << i;
  }

  // Parameter gradients at a sample of positions.
  for (ParamBlob* p : layer.params()) {
    const index_t n = static_cast<index_t>(p->value.size());
    for (index_t i = 0; i < n; i += std::max<index_t>(1, n / 13)) {
      const auto iu = static_cast<std::size_t>(i);
      const real_t saved = p->value[iu];
      p->value[iu] = saved + eps;
      const double up = loss_of(in);
      p->value[iu] = saved - eps;
      const double down = loss_of(in);
      p->value[iu] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad[iu], numeric, tol * (1.0 + std::abs(numeric)))
          << "param grad at " << i;
    }
  }
}

TEST(GradCheck, Conv2d) {
  Rng rng(51);
  Conv2d conv(2, 3, 3, 1, rng);
  gradient_check(conv, Tensor(2, 2, 5, 5));
}

TEST(GradCheck, Conv2dNoPadding) {
  Rng rng(52);
  Conv2d conv(1, 2, 3, 0, rng);
  gradient_check(conv, Tensor(1, 1, 6, 6));
}

TEST(GradCheck, Linear) {
  Rng rng(53);
  Linear fc(12, 5, rng);
  gradient_check(fc, Tensor(3, 3, 2, 2));
}

TEST(GradCheck, AvgPool) {
  AvgPool2d pool(2, 2);
  gradient_check(pool, Tensor(2, 2, 4, 4));
}

TEST(GradCheck, MaxPool) {
  MaxPool2d pool(2, 2);
  // Looser tolerance: max-pool is piecewise linear (kinks at ties).
  gradient_check(pool, Tensor(2, 2, 4, 4), 1e-4);
}

TEST(GradCheck, ReLU) {
  ReLU relu;
  gradient_check(relu, Tensor(2, 3, 3, 3), 1e-4);
}

TEST(GradCheck, Conv2dGemm) {
  Rng rng(0x6C);
  Conv2dGemm conv(2, 3, 3, 1, rng);
  gradient_check(conv, Tensor(2, 2, 5, 5));
}

TEST(ConvGemm, MatchesNaiveConvolutionExactly) {
  // Same seed -> identical weight initialisation order; outputs and
  // gradients must agree to float round-off.
  Rng rng_a(0x6D), rng_b(0x6D);
  Conv2d naive(3, 4, 5, 2, rng_a);
  Conv2dGemm gemm(3, 4, 5, 2, rng_b);

  Rng data_rng(0x6E);
  Tensor in(2, 3, 8, 8);
  for (index_t i = 0; i < in.size(); ++i) in[i] = data_rng.uniform(-1, 1);

  Tensor out_a = naive.make_output(in);
  Tensor out_b = gemm.make_output(in);
  ASSERT_TRUE(out_a.same_shape(out_b));
  naive.forward(in, out_a);
  gemm.forward(in, out_b);
  for (index_t i = 0; i < out_a.size(); ++i) {
    ASSERT_NEAR(out_a[i], out_b[i], 1e-10) << "forward at " << i;
  }

  // Backward: same upstream gradient -> same input and weight gradients.
  Tensor grad_out = out_a;
  for (index_t i = 0; i < grad_out.size(); ++i) {
    grad_out[i] = data_rng.uniform(-1, 1);
  }
  Tensor gin_a(2, 3, 8, 8), gin_b(2, 3, 8, 8);
  for (ParamBlob* p : naive.params()) p->zero_grad();
  for (ParamBlob* p : gemm.params()) p->zero_grad();
  naive.backward(in, grad_out, gin_a);
  gemm.backward(in, grad_out, gin_b);
  for (index_t i = 0; i < gin_a.size(); ++i) {
    ASSERT_NEAR(gin_a[i], gin_b[i], 1e-10) << "grad_in at " << i;
  }
  const auto pa = naive.params();
  const auto pb = gemm.params();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    ASSERT_EQ(pa[k]->grad.size(), pb[k]->grad.size());
    for (std::size_t i = 0; i < pa[k]->grad.size(); ++i) {
      ASSERT_NEAR(pa[k]->grad[i], pb[k]->grad[i], 1e-10)
          << "param " << k << " grad at " << i;
    }
  }
  EXPECT_DOUBLE_EQ(naive.flops_per_sample(in), gemm.flops_per_sample(in));
}

TEST(SoftmaxCrossEntropy, LossAndGradientAgainstHandValues) {
  SoftmaxCrossEntropy head;
  Tensor logits(1, 2, 1, 1);
  logits[0] = 0.0;
  logits[1] = 0.0;
  Tensor probs(1, 2, 1, 1);
  const real_t loss = head.forward(logits, {0}, probs);
  EXPECT_NEAR(loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(probs[0], 0.5, 1e-12);

  Tensor grad(1, 2, 1, 1);
  head.backward(probs, {0}, grad);
  EXPECT_NEAR(grad[0], -0.5, 1e-12);  // p - 1
  EXPECT_NEAR(grad[1], 0.5, 1e-12);
}

TEST(SoftmaxCrossEntropy, NumericallyStableForLargeLogits) {
  SoftmaxCrossEntropy head;
  Tensor logits(1, 3, 1, 1);
  logits[0] = 1000.0;
  logits[1] = 999.0;
  logits[2] = -1000.0;
  Tensor probs(1, 3, 1, 1);
  const real_t loss = head.forward(logits, {0}, probs);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(probs[0], probs[1]);
  EXPECT_NEAR(probs[2], 0.0, 1e-12);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerSample) {
  SoftmaxCrossEntropy head;
  Rng rng(54);
  Tensor logits(4, 5, 1, 1);
  for (index_t i = 0; i < logits.size(); ++i) logits[i] = rng.normal();
  Tensor probs(4, 5, 1, 1), grad(4, 5, 1, 1);
  head.forward(logits, {0, 1, 2, 3}, probs);
  head.backward(probs, {0, 1, 2, 3}, grad);
  for (index_t n = 0; n < 4; ++n) {
    real_t sum = 0.0;
    for (index_t k = 0; k < 5; ++k) sum += grad[n * 5 + k];
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

// ------------------------------------------------------------------- SGD

TEST(Sgd, ZeroMomentumIsPlainSgd) {
  ParamBlob p;
  p.value = {1.0, 2.0};
  p.grad = {0.5, -1.0};
  SgdOptimizer opt({&p}, 0.1, 0.0);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0 - 0.1 * 0.5, 1e-15);
  EXPECT_NEAR(p.value[1], 2.0 + 0.1, 1e-15);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  // Two steps with constant gradient g: V1 = -eta g; V2 = mu V1 - eta g.
  ParamBlob p;
  p.value = {0.0};
  p.grad = {1.0};
  SgdOptimizer opt({&p}, 0.1, 0.9);
  opt.step();
  EXPECT_NEAR(p.value[0], -0.1, 1e-15);
  opt.step();  // V2 = -0.09 - 0.1 = -0.19; W = -0.1 - 0.19 = -0.29
  EXPECT_NEAR(p.value[0], -0.29, 1e-15);
}

TEST(Sgd, RejectsInvalidHyperParameters) {
  ParamBlob p;
  p.value = {0.0};
  p.grad = {0.0};
  EXPECT_THROW(SgdOptimizer({&p}, -1.0, 0.5), Error);
  EXPECT_THROW(SgdOptimizer({&p}, 0.1, 1.0), Error);
}

// ------------------------------------------------------------------ nets

TEST(Net, Cifar10FullShapeAndFlops) {
  Rng rng(55);
  Net net = make_cifar10_full(10, 3, 32, rng);
  const Tensor in(2, 3, 32, 32);
  Net& n = net;
  const Tensor& logits = n.forward(in);
  EXPECT_EQ(logits.n(), 2);
  EXPECT_EQ(logits.sample_size(), 10);
  // cifar10_full forward cost is dominated by the three conv layers:
  // ~4.9M + ~6.6M + ~6.6M multiply-adds (pool halves spatial dims first).
  const double flops = net.flops_per_sample();
  EXPECT_GT(flops, 1e7);
  EXPECT_LT(flops, 1e8);
  EXPECT_GT(net.num_parameters(), 50000);
}

TEST(Net, PredictReturnsArgmaxClass) {
  Rng rng(56);
  Net net = make_cifar10_small(4, 1, 8, rng);
  const Tensor in(3, 1, 8, 8);
  net.forward(in);
  const auto pred = net.predict();
  ASSERT_EQ(pred.size(), 3u);
  for (index_t p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(Net, EndToEndGradientCheck) {
  // Full net (small) gradient check through softmax loss.
  Rng rng(57);
  Net net = make_cifar10_small(3, 1, 8, rng);
  Tensor in(2, 1, 8, 8);
  for (index_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.0, 1.0);
  const std::vector<index_t> labels = {1, 2};

  net.forward(in);
  net.loss(labels);
  net.zero_grad();
  net.backward(in, labels);

  // Spot-check a handful of parameter gradients numerically.
  const double eps = 1e-5;
  auto params = net.params();
  ASSERT_FALSE(params.empty());
  for (ParamBlob* blob : {params.front(), params.back()}) {
    const index_t n = static_cast<index_t>(blob->value.size());
    for (index_t i = 0; i < n; i += std::max<index_t>(1, n / 5)) {
      const auto iu = static_cast<std::size_t>(i);
      const real_t saved = blob->value[iu];
      blob->value[iu] = saved + eps;
      net.forward(in);
      const double up = net.loss(labels);
      blob->value[iu] = saved - eps;
      net.forward(in);
      const double down = net.loss(labels);
      blob->value[iu] = saved;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(blob->grad[iu], numeric, 1e-4 * (1.0 + std::abs(numeric)));
    }
  }
}

// ------------------------------------------------------- real training

TEST(Training, SmallNetLearnsSyntheticImages) {
  CifarConfig cfg;
  cfg.classes = 4;
  cfg.dim = 8;
  cfg.train_size = 256;
  cfg.test_size = 128;
  cfg.noise = 0.4;
  cfg.seed = 5;
  const CifarData data = make_synthetic_cifar(cfg);

  Rng rng(58);
  Net net = make_cifar10_small(cfg.classes, cfg.channels, cfg.dim, rng);
  const double before = evaluate(net, data.test);

  DnnTrainConfig train_cfg;
  train_cfg.batch_size = 32;
  train_cfg.learning_rate = 0.05;
  train_cfg.momentum = 0.9;
  train_cfg.max_epochs = 6;
  const DnnTrainResult r = train_dnn(net, data, train_cfg);

  EXPECT_EQ(r.epochs_completed, 6);
  EXPECT_EQ(r.iterations, 6 * (256 / 32));
  EXPECT_GT(r.test_accuracy, before + 0.2);
  EXPECT_GT(r.test_accuracy, 0.6);
}

TEST(Training, TargetAccuracyStopsEarly) {
  CifarConfig cfg;
  cfg.classes = 2;
  cfg.dim = 8;
  cfg.train_size = 128;
  cfg.test_size = 64;
  cfg.noise = 0.1;  // easy problem
  cfg.seed = 6;
  const CifarData data = make_synthetic_cifar(cfg);

  Rng rng(59);
  Net net = make_cifar10_small(2, 3, 8, rng);
  DnnTrainConfig train_cfg;
  train_cfg.batch_size = 32;
  train_cfg.learning_rate = 0.05;
  train_cfg.max_epochs = 50;
  train_cfg.target_accuracy = 0.8;
  const DnnTrainResult r = train_dnn(net, data, train_cfg);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.epochs_completed, 50);
}

TEST(Training, DataParallelStepMatchesSingleWorker) {
  // P workers with gradient averaging must produce the same update as one
  // worker over the full batch (Section IV-B's claim).
  CifarConfig cfg;
  cfg.classes = 3;
  cfg.dim = 8;
  cfg.train_size = 64;
  cfg.test_size = 16;
  cfg.seed = 7;
  const CifarData data = make_synthetic_cifar(cfg);

  Tensor batch;
  std::vector<index_t> labels;
  data.train.batch(0, 32, batch, labels);

  auto run = [&](index_t workers) {
    Rng rng(60);  // identical init
    Net net = make_cifar10_small(3, 3, 8, rng);
    SgdOptimizer opt(net.params(), 0.01, 0.9);
    data_parallel_step(net, opt, batch, labels, workers);
    std::vector<real_t> weights;
    for (ParamBlob* p : net.params()) {
      weights.insert(weights.end(), p->value.begin(), p->value.end());
    }
    return weights;
  };

  const auto w1 = run(1);
  const auto w4 = run(4);
  ASSERT_EQ(w1.size(), w4.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    EXPECT_NEAR(w1[i], w4[i], 1e-10);
  }
}

TEST(Training, RejectsIndivisibleWorkerCount) {
  CifarConfig cfg;
  cfg.classes = 2;
  cfg.dim = 8;
  cfg.train_size = 32;
  cfg.test_size = 8;
  const CifarData data = make_synthetic_cifar(cfg);
  Rng rng(61);
  Net net = make_cifar10_small(2, 3, 8, rng);
  SgdOptimizer opt(net.params(), 0.01, 0.9);
  Tensor batch;
  std::vector<index_t> labels;
  data.train.batch(0, 10, batch, labels);
  EXPECT_THROW(data_parallel_step(net, opt, batch, labels, 3), Error);
}

TEST(Cifar, GeneratorShapesAndDeterminism) {
  CifarConfig cfg;
  cfg.train_size = 20;
  cfg.test_size = 10;
  cfg.dim = 16;
  const CifarData a = make_synthetic_cifar(cfg);
  const CifarData b = make_synthetic_cifar(cfg);
  EXPECT_EQ(a.train.size(), 20);
  EXPECT_EQ(a.test.size(), 10);
  EXPECT_EQ(a.train.images.c(), 3);
  EXPECT_EQ(a.train.images.h(), 16);
  for (index_t i = 0; i < a.train.images.size(); ++i) {
    ASSERT_EQ(a.train.images[i], b.train.images[i]);
  }
  for (index_t label : a.train.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(Cifar, BatchExtractionCopiesCorrectSlice) {
  CifarConfig cfg;
  cfg.train_size = 10;
  cfg.test_size = 5;
  cfg.dim = 8;
  const CifarData data = make_synthetic_cifar(cfg);
  Tensor batch;
  std::vector<index_t> labels;
  data.train.batch(4, 3, batch, labels);
  EXPECT_EQ(batch.n(), 3);
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(batch[0], data.train.images[4 * data.train.images.sample_size()]);
  EXPECT_EQ(labels[0], data.train.labels[4]);
  EXPECT_THROW(data.train.batch(9, 3, batch, labels), Error);
}

}  // namespace
}  // namespace ls
