// Tests for the extension modules: the learned decision-tree selector,
// model serialization, the divide-and-conquer distributed SVM, the LRN
// layer, and the extended-format autotuner path.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/profiles.hpp"
#include "data/synthetic.hpp"
#include "dnn/net.hpp"
#include "sched/learned.hpp"
#include "svm/dcsvm.hpp"
#include "svm/serialize.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

// ------------------------------------------------------- decision tree

/// Synthetic corpus with a crisp rule: dense -> DEN, banded -> DIA,
/// everything else -> CSR. The tree must recover it exactly.
std::vector<TrainingExample> rule_corpus() {
  std::vector<TrainingExample> corpus;
  Rng rng(71);
  for (int k = 0; k < 12; ++k) {
    {
      TrainingExample ex;
      ex.features = extract_features(
          make_dense_matrix(20 + 3 * k, 15 + 2 * k, rng));
      ex.best = Format::kDEN;
      corpus.push_back(ex);
    }
    {
      TrainingExample ex;
      ex.features = extract_features(
          make_banded(100 + 10 * k, 100 + 10 * k, {0, 1, -1}, 1.0, rng));
      ex.best = Format::kDIA;
      corpus.push_back(ex);
    }
    {
      std::vector<index_t> lens(static_cast<std::size_t>(100 + 10 * k), 4);
      TrainingExample ex;
      ex.features = extract_features(
          make_random_sparse(100 + 10 * k, 200, lens, rng));
      ex.best = Format::kCSR;
      corpus.push_back(ex);
    }
  }
  return corpus;
}

TEST(DecisionTree, RecoversACrispRule) {
  const auto corpus = rule_corpus();
  const DecisionTree tree = DecisionTree::fit(corpus, 6, 2);
  EXPECT_DOUBLE_EQ(tree.accuracy(corpus), 1.0);
  EXPECT_GT(tree.node_count(), 1);
}

TEST(DecisionTree, GeneralisesToUnseenMatricesOfTheSameFamilies) {
  const DecisionTree tree = DecisionTree::fit(rule_corpus(), 6, 2);
  Rng rng(72);
  MatrixFeatures dense = extract_features(make_dense_matrix(37, 29, rng));
  MatrixFeatures banded = extract_features(
      make_banded(333, 333, {0, 1, -1}, 1.0, rng));
  std::vector<index_t> lens(400, 4);
  MatrixFeatures sparse = extract_features(
      make_random_sparse(400, 200, lens, rng));
  EXPECT_EQ(tree.predict(dense), Format::kDEN);
  EXPECT_EQ(tree.predict(banded), Format::kDIA);
  EXPECT_EQ(tree.predict(sparse), Format::kCSR);
}

TEST(DecisionTree, DepthOneIsAStump) {
  const DecisionTree tree = DecisionTree::fit(rule_corpus(), 1, 2);
  EXPECT_LE(tree.node_count(), 3);  // root + two leaves
}

TEST(DecisionTree, PureCorpusYieldsSingleLeaf) {
  std::vector<TrainingExample> corpus;
  Rng rng(73);
  for (int k = 0; k < 5; ++k) {
    TrainingExample ex;
    ex.features = extract_features(make_dense_matrix(10 + k, 10, rng));
    ex.best = Format::kDEN;
    corpus.push_back(ex);
  }
  const DecisionTree tree = DecisionTree::fit(corpus);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict(corpus[0].features), Format::kDEN);
}

TEST(DecisionTree, ToStringShowsSplitsAndLeaves) {
  const DecisionTree tree = DecisionTree::fit(rule_corpus(), 4, 2);
  const std::string dump = tree.to_string();
  EXPECT_NE(dump.find("if "), std::string::npos);
  EXPECT_NE(dump.find("-> "), std::string::npos);
}

TEST(DecisionTree, RejectsBadInputs) {
  EXPECT_THROW(DecisionTree::fit({}), Error);
  EXPECT_THROW(DecisionTree::fit(rule_corpus(), 0, 1), Error);
  DecisionTree unfitted;
  (void)unfitted;  // predict on default-constructed is guarded by fit()
}

TEST(LearnedSelector, CorpusTrainingPicksReasonableFormats) {
  Rng rng(74);
  AutotuneOptions opts;
  opts.trials = 2;
  const auto corpus = make_training_corpus(3, rng, opts);
  ASSERT_EQ(corpus.size(), 12u);  // 4 families x 3
  const DecisionTree tree = DecisionTree::fit(corpus, 5, 1);
  // Training accuracy on a measured corpus should beat random guessing (5
  // classes -> 0.2) by a wide margin.
  EXPECT_GT(tree.accuracy(corpus), 0.6);

  const LearnedSelector selector{DecisionTree::fit(corpus, 5, 1)};
  const ScheduleDecision d = selector.choose(corpus.front().features);
  EXPECT_NE(d.rationale.find("learned"), std::string::npos);
}

TEST(LearnedSelector, SchedulerPolicyDispatch) {
  Rng rng(75);
  const CooMatrix coo = test::random_matrix(60, 60, 0.2, rng);
  SchedulerOptions opts;
  opts.policy = SchedulePolicy::kLearned;
  const ScheduleDecision d = LayoutScheduler(opts).decide(coo);
  EXPECT_NE(d.rationale.find("learned"), std::string::npos);
  EXPECT_EQ(parse_policy("learned"), SchedulePolicy::kLearned);
}

TEST(TreeInputs, LogScalingAndNames) {
  MatrixFeatures f;
  f.m = 100;
  f.n = 10;
  f.density = 0.5;
  const auto inputs = tree_inputs(f);
  EXPECT_NEAR(inputs[0], std::log1p(100.0), 1e-12);
  EXPECT_DOUBLE_EQ(inputs[8], 0.5);
  EXPECT_STREQ(tree_input_name(0), "log M");
  EXPECT_STREQ(tree_input_name(8), "density");
  EXPECT_THROW(tree_input_name(9), Error);
}

// ------------------------------------------------------- serialization

SvmModel trained_tiny_model() {
  Rng rng(76);
  Dataset ds;
  ds.name = "ser";
  ds.X = test::random_matrix(40, 12, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.05, 20);
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.37;
  return train_fixed_format(ds, params, Format::kCSR).model;
}

TEST(Serialize, ModelRoundTripsExactly) {
  const SvmModel model = trained_tiny_model();
  std::stringstream buffer;
  save_model(buffer, model);
  const SvmModel back = load_model(buffer);

  EXPECT_EQ(back.kernel.type, model.kernel.type);
  EXPECT_DOUBLE_EQ(back.kernel.gamma, model.kernel.gamma);
  EXPECT_DOUBLE_EQ(back.rho, model.rho);
  EXPECT_EQ(back.num_features, model.num_features);
  ASSERT_EQ(back.coef.size(), model.coef.size());
  for (std::size_t k = 0; k < model.coef.size(); ++k) {
    EXPECT_DOUBLE_EQ(back.coef[k], model.coef[k]);
    EXPECT_EQ(back.support_vectors[k].nnz(), model.support_vectors[k].nnz());
  }

  // Identical decisions on fresh probes.
  Rng rng(77);
  for (int t = 0; t < 10; ++t) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t j = 0; j < 12; ++j) {
      if (rng.bernoulli(0.4)) {
        idx.push_back(j);
        val.push_back(rng.uniform(-1.0, 1.0));
      }
    }
    SparseVector probe(idx, val);
    EXPECT_DOUBLE_EQ(back.decision(probe), model.decision(probe));
  }
}

TEST(Serialize, RejectsCorruptedStreams) {
  {
    std::stringstream buffer("not a model\n");
    EXPECT_THROW(load_model(buffer), Error);
  }
  {
    const SvmModel model = trained_tiny_model();
    std::stringstream buffer;
    save_model(buffer, model);
    std::string text = buffer.str();
    text.resize(text.size() / 2);  // truncate mid-stream
    std::stringstream cut(text);
    EXPECT_THROW(load_model(cut), Error);
  }
  {
    std::stringstream buffer("ls_svm_model v1\nkernel warp\n");
    EXPECT_THROW(load_model(buffer), Error);
  }
}

TEST(Serialize, MulticlassRoundTrip) {
  Rng rng(78);
  std::vector<Triplet> t;
  std::vector<real_t> y;
  const real_t centers[3][2] = {{0, 0}, {8, 0}, {0, 8}};
  for (index_t i = 0; i < 60; ++i) {
    const int k = static_cast<int>(i % 3);
    t.push_back({i, 0, centers[k][0] + rng.normal(0, 0.4)});
    t.push_back({i, 1, centers[k][1] + rng.normal(0, 0.4)});
    y.push_back(static_cast<real_t>(k));
  }
  Dataset ds{"tri", CooMatrix(60, 2, std::move(t)), std::move(y)};
  SvmParams params;
  params.c = 10.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const MulticlassResult trained = train_one_vs_one(ds, params, sched);

  std::stringstream buffer;
  save_multiclass(buffer, trained.model);
  const MulticlassModel back = load_multiclass(buffer);
  ASSERT_EQ(back.machines.size(), trained.model.machines.size());
  EXPECT_EQ(back.classes, trained.model.classes);
  EXPECT_DOUBLE_EQ(back.accuracy(ds), trained.model.accuracy(ds));
}

TEST(Serialize, FileRoundTrip) {
  const SvmModel model = trained_tiny_model();
  const std::string path = ::testing::TempDir() + "/ls_model.txt";
  save_model_file(path, model);
  const SvmModel back = load_model_file(path);
  EXPECT_EQ(back.support_vectors.size(), model.support_vectors.size());
  std::remove(path.c_str());
  EXPECT_THROW(load_model_file(path), Error);
}

// ------------------------------------------------------------- DC-SVM

Dataset planted_dataset(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "dc";
  ds.X = test::random_matrix(rows, cols, 0.3, rng);
  ds.y = plant_labels(ds.X, 0.05, seed ^ 0xF00);
  return ds;
}

class DcSvmStrategies : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(DcSvmStrategies, TrainsAndPredictsAboveChance) {
  const Dataset ds = planted_dataset(240, 16, 81);
  const auto [train, test] = ds.split(0.8, 4);

  DcSvmOptions options;
  options.partitions = 4;
  options.strategy = GetParam();
  options.sched.policy = SchedulePolicy::kHeuristic;
  const DcSvmResult r = train_dc_svm(train, options);

  EXPECT_EQ(r.model.locals.size(), 4u);
  EXPECT_EQ(r.model.centroids.size(), 4u);
  EXPECT_EQ(r.partition_formats.size(), 4u);
  index_t total = 0;
  for (index_t s : r.partition_sizes) total += s;
  EXPECT_EQ(total, train.rows());
  // Critical path (P nodes) never exceeds the serial sum (1 node).
  EXPECT_LE(r.critical_seconds, r.total_seconds + 1e-12);
  EXPECT_GT(r.model.accuracy(test), 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    Both, DcSvmStrategies,
    ::testing::Values(PartitionStrategy::kRandom, PartitionStrategy::kCluster),
    [](const auto& info) {
      return info.param == PartitionStrategy::kRandom ? "random" : "cluster";
    });

TEST(DcSvm, SinglePartitionMatchesPlainTraining) {
  const Dataset ds = planted_dataset(120, 10, 82);
  DcSvmOptions options;
  options.partitions = 1;
  options.strategy = PartitionStrategy::kRandom;
  options.sched.policy = SchedulePolicy::kHeuristic;
  const DcSvmResult r = train_dc_svm(ds, options);

  const TrainResult plain = train_adaptive(ds, options.params, options.sched);
  // One partition containing everything: same problem, same accuracy.
  EXPECT_NEAR(r.model.accuracy(ds), plain.model.accuracy(ds), 0.02);
}

TEST(DcSvm, RoutingPicksNearestCentroid) {
  DcSvmModel model;
  model.centroids = {{0.0, 0.0}, {10.0, 10.0}};
  model.locals.resize(2);
  SparseVector near_first({0}, {1.0});
  SparseVector near_second({0, 1}, {9.0, 9.0});
  EXPECT_EQ(model.route(near_first), 0);
  EXPECT_EQ(model.route(near_second), 1);
}

TEST(DcSvm, RejectsDegenerateConfigs) {
  const Dataset ds = planted_dataset(10, 4, 83);
  DcSvmOptions options;
  options.partitions = 0;
  EXPECT_THROW(train_dc_svm(ds, options), Error);
  options.partitions = 11;  // more partitions than samples
  EXPECT_THROW(train_dc_svm(ds, options), Error);
}

// ----------------------------------------------------------------- LRN

TEST(Lrn, ForwardMatchesHandComputation) {
  // Single pixel, 3 channels, window 3, alpha 3 (norm = 1), beta 1, k 1:
  // s_1 = 1 + (a0^2 + a1^2 + a2^2); b_1 = a_1 / s_1.
  Lrn lrn(3, 3.0, 1.0, 1.0);
  Tensor in(1, 3, 1, 1);
  in[0] = 1.0;
  in[1] = 2.0;
  in[2] = 3.0;
  Tensor out = lrn.make_output(in);
  lrn.forward(in, out);
  EXPECT_NEAR(out[1], 2.0 / (1.0 + 14.0), 1e-12);
  // Edge channel 0 sees only channels {0, 1}.
  EXPECT_NEAR(out[0], 1.0 / (1.0 + 5.0), 1e-12);
}

TEST(Lrn, GradientCheck) {
  Lrn lrn(3, 0.5, 0.75, 2.0);
  Rng rng(84);
  Tensor in(2, 4, 3, 3);
  for (index_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1.0, 1.0);
  Tensor out = lrn.make_output(in);
  std::vector<real_t> c(static_cast<std::size_t>(out.size()));
  for (auto& v : c) v = rng.uniform(-1.0, 1.0);

  auto loss_of = [&](const Tensor& input) {
    Tensor o = lrn.make_output(input);
    lrn.forward(input, o);
    double loss = 0.0;
    for (index_t i = 0; i < o.size(); ++i) {
      loss += 0.5 * c[static_cast<std::size_t>(i)] * o[i] * o[i];
    }
    return loss;
  };

  lrn.forward(in, out);
  Tensor grad_out = lrn.make_output(in);
  for (index_t i = 0; i < out.size(); ++i) {
    grad_out[i] = c[static_cast<std::size_t>(i)] * out[i];
  }
  Tensor grad_in(in.n(), in.c(), in.h(), in.w());
  lrn.backward(in, grad_out, grad_in);

  const double eps = 1e-6;
  for (index_t i = 0; i < in.size(); i += 7) {
    const real_t saved = in[i];
    in[i] = saved + eps;
    const double up = loss_of(in);
    in[i] = saved - eps;
    const double down = loss_of(in);
    in[i] = saved;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad_in[i], numeric, 1e-5 * (1.0 + std::abs(numeric)))
        << "at " << i;
  }
}

TEST(Lrn, Cifar10FullNowIncludesNormLayers) {
  Rng rng(85);
  Net net = make_cifar10_full(10, 3, 32, rng);
  EXPECT_EQ(net.num_layers(), 12);  // 3 conv + 3 pool + 3 relu + 2 lrn + fc
  // Still trains a forward/backward pass without shape errors.
  Tensor in(2, 3, 32, 32);
  net.forward(in);
  net.loss({1, 2});
  net.zero_grad();
  net.backward(in, {1, 2});
}

// ----------------------------------------------- extended-format tuning

TEST(ExtendedFormats, AutotunerCanPickCscOrBcsr) {
  AutotuneOptions opts;
  opts.include_extended = true;
  opts.sample_rows = 0;
  // Block-structured matrix: dense 4x4 tiles along the diagonal; BCSR's
  // fill ratio is ~1 while CSR pays an index per nonzero.
  std::vector<Triplet> t;
  for (index_t b = 0; b < 128; ++b) {
    for (index_t r = 0; r < 4; ++r) {
      for (index_t c = 0; c < 4; ++c) {
        t.push_back({b * 4 + r, b * 4 + c, 1.0});
      }
    }
  }
  const CooMatrix coo(512, 512, std::move(t));
  const ScheduleDecision d = EmpiricalAutotuner(opts).choose(coo);
  // All seven formats must have been scored (finite or skipped-by-storage).
  EXPECT_TRUE(std::isfinite(d.score_of(Format::kBCSR)));
  EXPECT_TRUE(std::isfinite(d.score_of(Format::kCSC)));
  // The pick must be the measured argmin over the extended set.
  for (Format f : kExtendedFormats) {
    if (std::isfinite(d.score_of(f))) {
      EXPECT_LE(d.score_of(d.format), d.score_of(f)) << format_name(f);
    }
  }
}

TEST(ExtendedFormats, BasicPolicyIgnoresDerivedFormats) {
  Rng rng(86);
  const CooMatrix coo = test::random_matrix(64, 64, 0.2, rng);
  AutotuneOptions opts;
  opts.sample_rows = 0;  // include_extended defaults to false
  const ScheduleDecision d = EmpiricalAutotuner(opts).choose(coo);
  EXPECT_FALSE(std::isfinite(d.score_of(Format::kCSC)));
  EXPECT_FALSE(std::isfinite(d.score_of(Format::kBCSR)));
}

}  // namespace
}  // namespace ls
