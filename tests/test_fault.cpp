// Fault-tolerance suite: failpoint registry semantics, crash-safe file IO,
// checkpoint/resume equivalence for the SMO and DNN trainers, scheduler
// degradation paths, kernel-cache memory-pressure behaviour, and robust
// libsvm parsing. Every injected failure uses the named-failpoint registry
// (common/failpoint.hpp) so the recovery code under test is the real
// production path, not a mock.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"
#include "common/rng.hpp"
#include "data/libsvm_io.hpp"
#include "dnn/cifar.hpp"
#include "dnn/net.hpp"
#include "dnn/trainer.hpp"
#include "sched/scheduler.hpp"
#include "svm/cache.hpp"
#include "svm/checkpoint.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/multiclass.hpp"
#include "svm/serialize.hpp"
#include "svm/svr.hpp"
#include "svm/trainer.hpp"

namespace ls {
namespace {

using failpoint::Action;
using failpoint::Scoped;
using failpoint::Spec;

std::string tmp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "ls_fault_" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_raw(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

// ------------------------------------------------------------ failpoints

TEST(Failpoint, InactiveSiteIsANoOp) {
  failpoint::clear();
  EXPECT_NO_THROW(LS_FAILPOINT("fault.test.unused"));
  EXPECT_EQ(failpoint::trigger_count("fault.test.unused"), 0u);
}

TEST(Failpoint, ScopedErrorArmsAndDisarms) {
  const std::size_t before = failpoint::trigger_count("fault.test.err");
  {
    Scoped fp("fault.test.err");
    EXPECT_THROW(LS_FAILPOINT("fault.test.err"), Error);
    // Other sites stay unaffected.
    EXPECT_NO_THROW(LS_FAILPOINT("fault.test.other"));
  }
  EXPECT_NO_THROW(LS_FAILPOINT("fault.test.err"));
  EXPECT_EQ(failpoint::trigger_count("fault.test.err"), before + 1);
}

TEST(Failpoint, SkipAndLimitWindow) {
  Spec spec;
  spec.skip = 2;   // pass twice...
  spec.limit = 1;  // ...then trigger exactly once.
  Scoped fp("fault.test.window", spec);
  EXPECT_NO_THROW(LS_FAILPOINT("fault.test.window"));
  EXPECT_NO_THROW(LS_FAILPOINT("fault.test.window"));
  EXPECT_THROW(LS_FAILPOINT("fault.test.window"), Error);
  EXPECT_NO_THROW(LS_FAILPOINT("fault.test.window"));  // limit exhausted
}

TEST(Failpoint, OomActionThrowsBadAlloc) {
  Spec spec;
  spec.action = Action::kOom;
  Scoped fp("fault.test.oom", spec);
  EXPECT_THROW(LS_FAILPOINT("fault.test.oom"), std::bad_alloc);
}

TEST(Failpoint, ConfigureParsesEnvSyntax) {
  failpoint::configure("fault.cfg.a=error@1*1;fault.cfg.b=delay:1");
  EXPECT_NO_THROW(LS_FAILPOINT("fault.cfg.a"));  // skipped once
  EXPECT_THROW(LS_FAILPOINT("fault.cfg.a"), Error);
  EXPECT_NO_THROW(LS_FAILPOINT("fault.cfg.a"));  // limit reached
  EXPECT_NO_THROW(LS_FAILPOINT("fault.cfg.b"));  // delay completes
  failpoint::deactivate("fault.cfg.a");
  failpoint::deactivate("fault.cfg.b");

  EXPECT_THROW(failpoint::configure("missing-equals"), Error);
  EXPECT_THROW(failpoint::configure("site=explode"), Error);
}

// --------------------------------------------------------- atomic file IO

TEST(FsAtomic, Crc32MatchesKnownVector) {
  // The canonical IEEE CRC32 check value.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0u);
  // Seed chaining equals one-shot computation.
  const std::string s = "123456789";
  const std::uint32_t chained = crc32(s.data() + 4, 5, crc32(s.data(), 4));
  EXPECT_EQ(chained, crc32(s));
}

TEST(FsAtomic, RoundTripWithFooter) {
  const std::string path = tmp_path("roundtrip.txt");
  const std::string payload = "line one\nline two\n";
  atomic_write_file(path, payload);
  const std::string raw = read_raw(path);
  EXPECT_NE(raw.find(kCrcFooterTag), std::string::npos);
  EXPECT_GT(raw.size(), payload.size());
  EXPECT_EQ(read_file_verified(path), payload);
  std::remove(path.c_str());
}

TEST(FsAtomic, DetectsBitRot) {
  const std::string path = tmp_path("bitrot.txt");
  atomic_write_file(path, "sensitive payload\n");
  std::string raw = read_raw(path);
  raw[3] ^= 0x20;  // flip one payload bit
  write_raw(path, raw);
  EXPECT_THROW(read_file_verified(path), Error);
  std::remove(path.c_str());
}

TEST(FsAtomic, FooterlessLegacyFileReadsVerbatim) {
  const std::string path = tmp_path("legacy.txt");
  write_raw(path, "old format, no footer\n");
  EXPECT_EQ(read_file_verified(path), "old format, no footer\n");
  std::remove(path.c_str());
}

TEST(FsAtomic, FailedWriteLeavesPreviousFileIntact) {
  const std::string path = tmp_path("intact.txt");
  atomic_write_file(path, "version one\n");
  for (const char* site : {"fs.atomic.write", "fs.atomic.rename"}) {
    Scoped fp(site);
    EXPECT_THROW(atomic_write_file(path, "version two\n"), Error);
    // The old file is untouched and still passes verification.
    EXPECT_EQ(read_file_verified(path), "version one\n");
  }
  // With the failpoints gone the replacement goes through.
  atomic_write_file(path, "version two\n");
  EXPECT_EQ(read_file_verified(path), "version two\n");
  std::remove(path.c_str());
}

TEST(FsAtomic, ShortWriteUnderEnospcLeavesLastGoodFileAndNoTempLitter) {
  const std::string path = tmp_path("enospc.txt");
  atomic_write_file(path, "version one\n");
  {
    // A full disk surfaces as fwrite reporting fewer bytes than asked —
    // an errno-style failure, not an exception at the syscall site. The
    // boolean failpoint drives the production `ok` bookkeeping.
    Scoped fp("fs.atomic.short_write");
    EXPECT_THROW(atomic_write_file(path, "version two\n"), Error);
    EXPECT_GE(failpoint::trigger_count("fs.atomic.short_write"), 1u);
  }
  // Last-good file: intact, verified, byte-identical.
  EXPECT_EQ(read_file_verified(path), "version one\n");
  // No temp litter: the partial ".tmp.<pid>" file was cleaned up, so a
  // retry loop cannot slowly fill the disk it is already starved of.
  EXPECT_FALSE(file_exists(path + ".tmp." + std::to_string(::getpid())));
  // Once space is back the same call succeeds.
  atomic_write_file(path, "version two\n");
  EXPECT_EQ(read_file_verified(path), "version two\n");
  std::remove(path.c_str());
}

TEST(FsAtomic, ShortWriteSiteWithDelayActionIsNotAFailure) {
  const std::string path = tmp_path("enospc_delay.txt");
  // kDelay on a boolean site models slow IO, not failed IO: the write
  // must go through.
  Spec spec;
  spec.action = Action::kDelay;
  spec.delay_ms = 1;
  Scoped fp("fs.atomic.short_write", spec);
  atomic_write_file(path, "slow but fine\n");
  EXPECT_EQ(read_file_verified(path), "slow but fine\n");
  std::remove(path.c_str());
}

// ------------------------------------------------------- model files

/// Builds a dataset directly from dense rows.
Dataset tiny_dataset(const std::vector<std::vector<real_t>>& rows,
                     std::vector<real_t> y) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j] != 0.0) {
        t.push_back({static_cast<index_t>(i), static_cast<index_t>(j),
                     rows[i][j]});
      }
    }
  }
  Dataset ds;
  ds.name = "tiny";
  ds.X = CooMatrix(static_cast<index_t>(rows.size()),
                   static_cast<index_t>(rows[0].size()), std::move(t));
  ds.y = std::move(y);
  return ds;
}

SvmModel trained_tiny_model() {
  const Dataset ds = tiny_dataset(
      {{0.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {1.0, 0.0}},
      {1.0, 1.0, -1.0, -1.0});
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 2.0;
  params.c = 100.0;
  return train_fixed_format(ds, params, Format::kCSR).model;
}

TEST(ModelFiles, InterruptedSaveLeavesPreviousModelLoadable) {
  const SvmModel model = trained_tiny_model();
  const std::string path = tmp_path("model_atomic.txt");
  save_model_file(path, model);
  const std::string original = read_raw(path);

  SvmModel changed = model;
  changed.rho += 1.0;
  {
    Scoped fp("fs.atomic.write");
    EXPECT_THROW(save_model_file(path, changed), Error);
  }
  // Never truncated, never half-new: byte-identical to the first save, and
  // it still loads to the original model.
  EXPECT_EQ(read_raw(path), original);
  const SvmModel reloaded = load_model_file(path);
  EXPECT_DOUBLE_EQ(reloaded.rho, model.rho);
  ASSERT_EQ(reloaded.coef.size(), model.coef.size());
  std::remove(path.c_str());
}

TEST(ModelFiles, EnospcDuringSaveLeavesPreviousModelLoadable) {
  const SvmModel model = trained_tiny_model();
  const std::string path = tmp_path("model_enospc.txt");
  save_model_file(path, model);
  const std::string original = read_raw(path);

  SvmModel changed = model;
  changed.rho += 1.0;
  {
    // Disk full mid-save: the short write flows through fs_atomic's own
    // error handling instead of an injected throw.
    Scoped fp("fs.atomic.short_write");
    EXPECT_THROW(save_model_file(path, changed), Error);
  }
  EXPECT_EQ(read_raw(path), original);
  EXPECT_FALSE(file_exists(path + ".tmp." + std::to_string(::getpid())));
  const SvmModel reloaded = load_model_file(path);
  EXPECT_DOUBLE_EQ(reloaded.rho, model.rho);
  std::remove(path.c_str());
}

TEST(SvmCheckpoint, EnospcDuringSnapshotKeepsLastGoodCheckpoint) {
  const std::string path = tmp_path("smo_ck_enospc.txt");
  SmoCheckpoint ck;
  ck.iteration = 7;
  ck.alpha = {0.5, 0.5};
  ck.f = {1.0, -1.0};
  save_smo_checkpoint(path, ck);

  SmoCheckpoint newer = ck;
  newer.iteration = 8;
  {
    Scoped fp("fs.atomic.short_write");
    EXPECT_THROW(save_smo_checkpoint(path, newer), Error);
  }
  // A resume after the failed save still lands on the last good snapshot.
  const auto back = try_load_smo_checkpoint(path, 2);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->iteration, 7);
  remove_checkpoint(path);
}

TEST(ModelFiles, CorruptFilesThrowLsError) {
  const SvmModel model = trained_tiny_model();
  const std::string path = tmp_path("model_good.txt");
  save_model_file(path, model);
  const std::string good = read_file_verified(path);

  const std::string bad = tmp_path("model_bad.txt");

  // Truncated mid-file (footer stripped too, so parsing hits EOF).
  write_raw(bad, good.substr(0, good.size() / 2));
  EXPECT_THROW(load_model_file(bad), Error);

  // Wrong magic line.
  write_raw(bad, "ls_wrong_magic v9\n" + good);
  EXPECT_THROW(load_model_file(bad), Error);

  // CRC footer that does not match the payload.
  write_raw(bad, good + kCrcFooterTag + "deadbeef\n");
  EXPECT_THROW(load_model_file(bad), Error);

  // Garbage numeric token inside a support-vector line.
  std::string mangled = good;
  const auto colon = mangled.rfind(':');
  ASSERT_NE(colon, std::string::npos);
  mangled[colon + 1] = 'x';
  write_raw(bad, mangled);
  EXPECT_THROW(load_model_file(bad), Error);

  // Empty file.
  write_raw(bad, "");
  EXPECT_THROW(load_model_file(bad), Error);

  EXPECT_THROW(load_model_file(tmp_path("model_missing.txt")), Error);

  std::remove(path.c_str());
  std::remove(bad.c_str());
}

TEST(ModelFiles, CorruptEnsembleAndSvrFilesThrowLsError) {
  // One-vs-one ensemble on a 3-class toy problem.
  const Dataset multi = tiny_dataset(
      {{0.0, 0.0}, {0.1, 0.0}, {1.0, 1.0}, {0.9, 1.0}, {0.0, 2.0},
       {0.1, 2.0}},
      {0.0, 0.0, 1.0, 1.0, 2.0, 2.0});
  SvmParams params;
  params.c = 10.0;
  const MulticlassResult ovo = train_one_vs_one(multi, params);
  const std::string mc_path = tmp_path("ovo_good.txt");
  save_multiclass_file(mc_path, ovo.model);
  const std::string mc_good = read_file_verified(mc_path);

  // ε-SVR on a 1-d linear target.
  const Dataset reg = tiny_dataset({{0.0}, {1.0}, {2.0}, {3.0}},
                                   {0.0, 1.0, 2.0, 3.0});
  SvrParams svr_params;
  svr_params.svm.c = 10.0;
  const SvrModel svr = train_svr(reg, svr_params).model;
  const std::string svr_path = tmp_path("svr_good.txt");
  save_svr_file(svr_path, svr);
  const std::string svr_good = read_file_verified(svr_path);

  const std::string bad = tmp_path("model_bad2.txt");

  // Truncation mid-stream.
  write_raw(bad, mc_good.substr(0, mc_good.size() / 2));
  EXPECT_THROW(load_multiclass_file(bad), Error);
  write_raw(bad, svr_good.substr(0, svr_good.size() / 2));
  EXPECT_THROW(load_svr_file(bad), Error);

  // Wrong magic — including reading one model kind as another.
  write_raw(bad, "ls_wrong_magic v9\n" + mc_good);
  EXPECT_THROW(load_multiclass_file(bad), Error);
  EXPECT_THROW(load_svr_file(mc_path), Error);
  EXPECT_THROW(load_multiclass_file(svr_path), Error);

  // CRC mismatch.
  write_raw(bad, mc_good + kCrcFooterTag + "deadbeef\n");
  EXPECT_THROW(load_multiclass_file(bad), Error);
  write_raw(bad, svr_good + kCrcFooterTag + "deadbeef\n");
  EXPECT_THROW(load_svr_file(bad), Error);

  // The untampered files still round-trip.
  EXPECT_EQ(load_multiclass_file(mc_path).machines.size(),
            ovo.model.machines.size());
  EXPECT_DOUBLE_EQ(load_svr_file(svr_path).rho, svr.rho);

  std::remove(mc_path.c_str());
  std::remove(svr_path.c_str());
  std::remove(bad.c_str());
}

TEST(ModelFiles, SaveAndLoadFailpointsCoverToolPaths) {
  const SvmModel model = trained_tiny_model();
  const std::string path = tmp_path("model_fp.txt");
  {
    Scoped fp("svm.serialize.save");
    EXPECT_THROW(save_model_file(path, model), Error);
    EXPECT_FALSE(file_exists(path));
  }
  save_model_file(path, model);
  {
    Scoped fp("svm.serialize.load");
    EXPECT_THROW(load_model_file(path), Error);
  }
  std::remove(path.c_str());
}

// -------------------------------------------------- SMO checkpoint/resume

/// Noisy two-class problem that needs a few hundred SMO iterations.
Dataset noisy_dataset(index_t n, index_t dim, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<real_t>> rows;
  std::vector<real_t> y;
  for (index_t i = 0; i < n; ++i) {
    std::vector<real_t> row(static_cast<std::size_t>(dim));
    real_t margin = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = rng.uniform(-1.0, 1.0);
      margin += (j % 2 == 0 ? 1.0 : -0.5) * row[j];
    }
    real_t label = margin >= 0 ? 1.0 : -1.0;
    if (rng.uniform() < 0.1) label = -label;  // label noise → more SVs
    rows.push_back(std::move(row));
    y.push_back(label);
  }
  return tiny_dataset(rows, std::move(y));
}

TEST(SvmCheckpoint, SnapshotFileRoundTrips) {
  const std::string path = tmp_path("smo_ck.txt");
  SmoCheckpoint ck;
  ck.iteration = 42;
  ck.alpha = {0.0, 0.25, 1.0};
  ck.f = {-1.0, 0.5, 2.0};
  save_smo_checkpoint(path, ck);

  const SmoCheckpoint back = load_smo_checkpoint(path);
  EXPECT_EQ(back.iteration, 42);
  ASSERT_EQ(back.alpha.size(), 3u);
  EXPECT_DOUBLE_EQ(back.alpha[1], 0.25);
  EXPECT_DOUBLE_EQ(back.f[2], 2.0);

  // Size guard: a snapshot for a different problem is treated as absent.
  EXPECT_TRUE(try_load_smo_checkpoint(path, 3).has_value());
  EXPECT_FALSE(try_load_smo_checkpoint(path, 7).has_value());

  // Corrupt and missing snapshots are treated as absent too.
  write_raw(path, "not a checkpoint at all\n");
  EXPECT_FALSE(try_load_smo_checkpoint(path).has_value());
  EXPECT_THROW(load_smo_checkpoint(path), Error);
  remove_checkpoint(path);
  EXPECT_FALSE(try_load_smo_checkpoint(path).has_value());
}

TEST(SvmCheckpoint, ResumedRunMatchesUninterrupted) {
  const Dataset ds = noisy_dataset(80, 6, 0xFA01);
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.5;
  params.c = 5.0;

  // Reference: one uninterrupted run.
  const TrainResult ref = train_fixed_format(ds, params, Format::kCSR);
  ASSERT_TRUE(ref.stats.converged);
  ASSERT_GT(ref.stats.iterations, 20);

  // Interrupted run: stop halfway, leaving a snapshot behind.
  const std::string path = tmp_path("smo_resume.txt");
  SvmParams capped = params;
  capped.checkpoint_path = path;
  capped.checkpoint_interval = 5;
  capped.max_iterations = ref.stats.iterations / 2;
  const TrainResult interrupted =
      train_fixed_format(ds, capped, Format::kCSR);
  EXPECT_FALSE(interrupted.stats.converged);
  ASSERT_TRUE(file_exists(path));

  // Resume: picks the snapshot up and finishes.
  SvmParams resume = params;
  resume.checkpoint_path = path;
  resume.checkpoint_interval = 5;
  const TrainResult resumed = train_fixed_format(ds, resume, Format::kCSR);
  EXPECT_TRUE(resumed.stats.converged);

  // The solver is deterministic, so the resumed trajectory rejoins the
  // reference exactly: same iteration count, same model to 1e-6.
  EXPECT_EQ(resumed.stats.iterations, ref.stats.iterations);
  EXPECT_NEAR(resumed.model.rho, ref.model.rho, 1e-6);
  ASSERT_EQ(resumed.model.coef.size(), ref.model.coef.size());
  for (std::size_t i = 0; i < ref.model.coef.size(); ++i) {
    EXPECT_NEAR(resumed.model.coef[i], ref.model.coef[i], 1e-6);
  }
  // Converged runs clean their snapshot up.
  EXPECT_FALSE(file_exists(path));
}

// -------------------------------------------------- DNN checkpoint/resume

std::vector<real_t> flat_weights(Net& net) {
  std::vector<real_t> w;
  for (ParamBlob* p : net.params()) {
    w.insert(w.end(), p->value.begin(), p->value.end());
  }
  return w;
}

TEST(DnnCheckpoint, ResumedRunMatchesUninterrupted) {
  CifarConfig cfg;
  cfg.classes = 2;
  cfg.dim = 8;
  cfg.train_size = 64;
  cfg.test_size = 32;
  cfg.noise = 0.4;
  cfg.seed = 11;
  const CifarData data = make_synthetic_cifar(cfg);

  DnnTrainConfig train_cfg;
  train_cfg.batch_size = 16;
  train_cfg.learning_rate = 0.05;
  train_cfg.momentum = 0.9;
  train_cfg.max_epochs = 3;

  // Reference: three uninterrupted epochs.
  Rng rng_a(77);
  Net net_a = make_cifar10_small(cfg.classes, cfg.channels, cfg.dim, rng_a);
  const DnnTrainResult ref = train_dnn(net_a, data, train_cfg);
  const std::vector<real_t> ref_w = flat_weights(net_a);

  // Interrupted run: identical init, dies at the top of epoch 2 — after
  // the epoch-1 snapshot hit disk.
  const std::string path = tmp_path("dnn_resume.txt");
  DnnTrainConfig ck_cfg = train_cfg;
  ck_cfg.checkpoint_path = path;
  {
    Rng rng_b(77);
    Net net_b =
        make_cifar10_small(cfg.classes, cfg.channels, cfg.dim, rng_b);
    Spec spec;
    spec.skip = 2;  // epochs 0 and 1 run, epoch 2 faults
    Scoped fp("dnn.trainer.epoch", spec);
    EXPECT_THROW(train_dnn(net_b, data, ck_cfg), Error);
  }
  ASSERT_TRUE(file_exists(path));
  const auto snapshot = try_load_dnn_checkpoint(path);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->epochs_completed, 2);

  // Resume into a DIFFERENT freshly initialised net: restore must replace
  // every weight, and the shuffle replay must recreate epoch 2's batches.
  Rng rng_c(4242);
  Net net_c = make_cifar10_small(cfg.classes, cfg.channels, cfg.dim, rng_c);
  const DnnTrainResult resumed = train_dnn(net_c, data, ck_cfg);
  EXPECT_EQ(resumed.epochs_completed, 3);
  EXPECT_EQ(resumed.iterations, ref.iterations);
  EXPECT_NEAR(resumed.test_accuracy, ref.test_accuracy, 1e-12);

  const std::vector<real_t> resumed_w = flat_weights(net_c);
  ASSERT_EQ(resumed_w.size(), ref_w.size());
  for (std::size_t i = 0; i < ref_w.size(); ++i) {
    ASSERT_NEAR(resumed_w[i], ref_w[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(DnnCheckpoint, CorruptSnapshotIsIgnoredNotFatal) {
  const std::string path = tmp_path("dnn_corrupt.txt");
  write_raw(path, "ls_dnn_checkpoint v1\nepochs_completed banana\n");
  EXPECT_FALSE(try_load_dnn_checkpoint(path).has_value());
  EXPECT_THROW(load_dnn_checkpoint(path), Error);

  // A training run pointed at the corrupt file starts fresh and replaces it.
  CifarConfig cfg;
  cfg.classes = 2;
  cfg.dim = 8;
  cfg.train_size = 32;
  cfg.test_size = 16;
  cfg.seed = 12;
  const CifarData data = make_synthetic_cifar(cfg);
  Rng rng(13);
  Net net = make_cifar10_small(cfg.classes, cfg.channels, cfg.dim, rng);
  DnnTrainConfig train_cfg;
  train_cfg.batch_size = 16;
  train_cfg.max_epochs = 1;
  train_cfg.checkpoint_path = path;
  const DnnTrainResult r = train_dnn(net, data, train_cfg);
  EXPECT_EQ(r.epochs_completed, 1);
  EXPECT_TRUE(try_load_dnn_checkpoint(path).has_value());
  std::remove(path.c_str());
}

// ------------------------------------------------- scheduler degradation

CooMatrix random_sparse(index_t rows, index_t cols, double density,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      if (rng.uniform() < density) {
        t.push_back({i, j, rng.uniform(-1.0, 1.0)});
      }
    }
  }
  return CooMatrix(rows, cols, std::move(t));
}

TEST(SchedDegrade, AutotunerThrowsWhenEveryCandidateFails) {
  const CooMatrix x = random_sparse(60, 40, 0.2, 0xD1);
  Scoped fp("sched.candidate.materialize");
  EmpiricalAutotuner tuner;
  EXPECT_THROW(tuner.choose(x), Error);
}

TEST(SchedDegrade, SchedulerFallsBackToHeuristicWhenAllCandidatesFail) {
  const CooMatrix x = random_sparse(60, 40, 0.2, 0xD2);
  const LayoutScheduler sched;  // empirical policy
  ScheduleDecision d;
  {
    Scoped fp("sched.candidate.materialize");
    d = sched.decide(x);
  }
  EXPECT_TRUE(d.degraded);
  EXPECT_FALSE(d.dropped.empty());
  EXPECT_NE(d.rationale.find("heuristic"), std::string::npos);
  // The decision is still actionable: the chosen format materialises.
  const AnyMatrix mat = sched.materialize(x, d);
  EXPECT_EQ(mat.rows(), 60);
}

TEST(SchedDegrade, BytesBudgetDropsCandidatesWithNotes) {
  const CooMatrix x = random_sparse(60, 40, 0.2, 0xD3);
  SchedulerOptions opts;
  opts.autotune.candidate_bytes_budget = 1;  // nothing fits
  const LayoutScheduler sched(opts);
  const ScheduleDecision d = sched.decide(x);
  EXPECT_TRUE(d.degraded);
  EXPECT_FALSE(d.dropped.empty());
  EXPECT_NE(d.dropped.front().find("budget"), std::string::npos);
}

TEST(SchedDegrade, MaterializeFallsBackToCsr) {
  const CooMatrix x = random_sparse(30, 20, 0.3, 0xD4);
  const LayoutScheduler sched;
  ScheduleDecision d;
  d.format = Format::kDEN;
  d.rationale = "test decision";
  Spec spec;
  spec.limit = 1;  // only the first (non-CSR) materialise faults
  Scoped fp("sched.materialize", spec);
  const AnyMatrix mat = sched.materialize_or_degrade(x, d);
  EXPECT_EQ(mat.format(), Format::kCSR);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.format, Format::kCSR);
  EXPECT_NE(d.rationale.find("CSR"), std::string::npos);
}

TEST(SchedDegrade, TrainAdaptiveSurvivesTotalCandidateFailure) {
  const Dataset ds = noisy_dataset(40, 5, 0xD5);
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.5;
  params.c = 5.0;
  Scoped fp("sched.candidate.materialize");
  const TrainResult r = train_adaptive(ds, params);
  EXPECT_TRUE(r.stats.converged);
  EXPECT_TRUE(r.decision.degraded);
  EXPECT_GT(r.model.accuracy(ds), 0.7);
}

// -------------------------------------------------- cache memory pressure

TEST(CacheDegrade, OomFreezesResidentSetAndKeepsAnswersCorrect) {
  const Dataset ds = noisy_dataset(12, 4, 0xCA);
  const AnyMatrix x = AnyMatrix::from_coo(ds.X, Format::kCSR);
  KernelParams kernel;
  kernel.type = KernelType::kGaussian;
  kernel.gamma = 0.5;
  FormatKernelEngine engine(x, kernel);
  FormatKernelEngine reference(x, kernel);
  KernelCache cache(engine, 64 << 20);  // budget would allow all rows

  Spec spec;
  spec.action = Action::kOom;
  spec.skip = 2;  // two rows allocate, the third hits memory pressure
  Scoped fp("svm.cache.alloc", spec);

  std::vector<real_t> expected(static_cast<std::size_t>(ds.rows()));
  for (index_t i = 0; i < ds.rows(); ++i) {
    const auto row = cache.get_row(i);
    reference.compute_row(i, expected);
    ASSERT_EQ(row.size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_DOUBLE_EQ(row[k], expected[k]);
    }
  }
  // The cache froze at the pre-failure resident set instead of dying.
  EXPECT_EQ(cache.resident_rows(), 2u);
  EXPECT_EQ(failpoint::trigger_count("svm.cache.alloc"), 1u);
}

TEST(CacheDegrade, TrainingConvergesUnderMemoryPressure) {
  const Dataset ds = noisy_dataset(40, 5, 0xCB);
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.5;
  params.c = 5.0;
  const TrainResult ref = train_fixed_format(ds, params, Format::kCSR);

  Spec spec;
  spec.action = Action::kOom;
  spec.skip = 2;
  Scoped fp("svm.cache.alloc", spec);
  const TrainResult squeezed = train_fixed_format(ds, params, Format::kCSR);
  EXPECT_TRUE(squeezed.stats.converged);
  // A smaller cache changes only the cost, never the trajectory.
  EXPECT_EQ(squeezed.stats.iterations, ref.stats.iterations);
  EXPECT_NEAR(squeezed.model.rho, ref.model.rho, 1e-12);
}

// ----------------------------------------------------- robust libsvm IO

TEST(LibsvmRobust, StrictModeRejectsOverflowAndNonFinite) {
  {
    std::istringstream in("1 1:1e400\n");
    EXPECT_THROW(read_libsvm(in, "t"), Error);
  }
  {
    std::istringstream in("1e400 1:1\n");
    EXPECT_THROW(read_libsvm(in, "t"), Error);
  }
  {
    std::istringstream in("1 1:nan\n");
    EXPECT_THROW(read_libsvm(in, "t"), Error);
  }
  {
    // Subnormal underflow also sets ERANGE but must still be accepted.
    std::istringstream in("1 1:5e-324\n");
    EXPECT_NO_THROW(read_libsvm(in, "t"));
  }
}

TEST(LibsvmRobust, PermissiveModeSkipsBadLinesAtomically) {
  std::istringstream in(
      "1 1:0.5 3:1.5\n"
      "abc 1:1\n"            // bad label
      "-1 2:0.25\n"
      "1 1:1 2:x\n"          // bad value
      "1 2:1 1:2\n"          // non-increasing indices: row must roll back
      "1 1:1e400\n"          // overflow
      "-1 4:2.0\n");
  LibsvmReadOptions opts;
  opts.permissive = true;
  opts.max_errors = 2;
  LibsvmReadReport report;
  const Dataset ds = read_libsvm(in, "mixed", opts, &report);

  EXPECT_EQ(ds.rows(), 3);
  EXPECT_EQ(ds.cols(), 4);
  EXPECT_DOUBLE_EQ(ds.y[0], 1.0);
  EXPECT_DOUBLE_EQ(ds.y[1], -1.0);
  EXPECT_DOUBLE_EQ(ds.y[2], -1.0);
  // Committed nonzeros come only from the three good rows — the rolled-back
  // rows leaked nothing.
  EXPECT_EQ(ds.X.values().size(), 4u);

  EXPECT_EQ(report.lines_skipped, 4u);
  EXPECT_EQ(report.errors.size(), 2u);
  EXPECT_TRUE(report.errors_truncated());
}

TEST(LibsvmRobust, StrictModeStillThrowsOnFirstBadLine) {
  std::istringstream in("1 1:0.5\nabc 1:1\n");
  EXPECT_THROW(read_libsvm(in, "strict"), Error);
}

TEST(LibsvmRobust, InjectedInfrastructureFaultIsNotSwallowed) {
  // An injected IO-layer fault is not a parse error: even permissive mode
  // must propagate it instead of skipping lines forever.
  std::istringstream in("1 1:0.5\n");
  LibsvmReadOptions opts;
  opts.permissive = true;
  Scoped fp("data.libsvm.read");
  EXPECT_THROW(read_libsvm(in, "fp", opts), Error);
}

}  // namespace
}  // namespace ls
