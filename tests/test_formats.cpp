// Tests for the five storage formats: construction invariants, SMSV
// correctness against a brute-force reference, row gathers, conversion
// round-trips and the Table II storage accounting. The parameterised suite
// sweeps all formats over a grid of shapes and densities.
#include <gtest/gtest.h>

#include <tuple>

#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"
#include "formats/storage.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

using test::expect_near;
using test::random_matrix;
using test::random_vector;
using test::reference_multiply;

TEST(Coo, ConstructionSortsAndDeduplicates) {
  std::vector<Triplet> t = {{1, 1, 2.0}, {0, 2, 3.0}, {1, 1, 5.0}, {0, 0, 1.0}};
  CooMatrix coo(2, 3, t);
  EXPECT_EQ(coo.nnz(), 3);  // (1,1) entries summed
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(vals[0], 1.0);
  EXPECT_EQ(rows[2], 1);
  EXPECT_EQ(cols[2], 1);
  EXPECT_EQ(vals[2], 7.0);
}

TEST(Coo, DropsExplicitZerosAndCancellations) {
  std::vector<Triplet> t = {{0, 0, 0.0}, {1, 1, 2.0}, {1, 1, -2.0}};
  CooMatrix coo(2, 2, t);
  EXPECT_EQ(coo.nnz(), 0);
}

TEST(Coo, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CooMatrix(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(CooMatrix(2, 2, {{0, -1, 1.0}}), Error);
}

TEST(Coo, GatherRowReturnsSortedEntries) {
  CooMatrix coo(3, 5, {{1, 4, 4.0}, {1, 0, 1.0}, {0, 2, 9.0}});
  SparseVector row;
  coo.gather_row(1, row);
  ASSERT_EQ(row.nnz(), 2);
  EXPECT_EQ(row.indices()[0], 0);
  EXPECT_EQ(row.indices()[1], 4);
  EXPECT_EQ(row.values()[0], 1.0);
  EXPECT_EQ(row.values()[1], 4.0);
  coo.gather_row(2, row);
  EXPECT_TRUE(row.empty());
}

TEST(Dense, ElementAccessAndNnz) {
  CooMatrix coo(2, 3, {{0, 1, 5.0}, {1, 2, -1.0}});
  DenseMatrix d(coo);
  EXPECT_EQ(d(0, 1), 5.0);
  EXPECT_EQ(d(0, 0), 0.0);
  EXPECT_EQ(d(1, 2), -1.0);
  EXPECT_EQ(d.nnz(), 2);
  EXPECT_EQ(d.stored_elements(), 6);
}

TEST(Dense, RecountNnzAfterMutation) {
  DenseMatrix d(2, 2);
  d(0, 0) = 1.0;
  d(1, 1) = 2.0;
  d.recount_nnz();
  EXPECT_EQ(d.nnz(), 2);
}

TEST(Csr, RowViewsMatchSourceData) {
  CooMatrix coo(3, 4, {{0, 1, 1.0}, {0, 3, 2.0}, {2, 0, 3.0}});
  CsrMatrix csr(coo);
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 0);
  EXPECT_EQ(csr.row_nnz(2), 1);
  EXPECT_EQ(csr.row_cols(0)[1], 3);
  EXPECT_EQ(csr.row_values(2)[0], 3.0);
  EXPECT_EQ(csr.row_ptr().size(), 4u);
}

TEST(Ell, PaddedWidthEqualsMaxRowLength) {
  CooMatrix coo(3, 10, {{0, 0, 1.0}, {0, 5, 1.0}, {0, 9, 1.0}, {1, 2, 1.0}});
  EllMatrix ell(coo);
  EXPECT_EQ(ell.max_row_nnz(), 3);
  EXPECT_EQ(ell.stored_elements(), 9);  // 3 rows x mdim 3
  EXPECT_EQ(ell.nnz(), 4);
}

TEST(Dia, DiagonalCountAndStripeLength) {
  // Entries on offsets 0 and -1 of a tall 4x2 matrix.
  CooMatrix coo(4, 2, {{0, 0, 1.0}, {1, 1, 2.0}, {1, 0, 3.0}, {2, 1, 4.0}});
  DiaMatrix dia(coo);
  EXPECT_EQ(dia.num_diagonals(), 2);
  EXPECT_EQ(dia.stripe_len(), 2);  // min(4, 2)
  EXPECT_EQ(dia.stored_elements(), 4);
  EXPECT_EQ(dia.nnz(), 4);
}

TEST(Dia, GatherRowSkipsPadding) {
  CooMatrix coo(4, 4, {{0, 0, 1.0}, {2, 2, 2.0}, {1, 2, 5.0}});
  DiaMatrix dia(coo);
  SparseVector row;
  dia.gather_row(1, row);  // only the (1,2) entry, offset +1 is padded at 1
  ASSERT_EQ(row.nnz(), 1);
  EXPECT_EQ(row.indices()[0], 2);
  EXPECT_EQ(row.values()[0], 5.0);
}

TEST(Format, NamesRoundTrip) {
  for (Format f : kExtendedFormats) {
    EXPECT_EQ(parse_format(format_name(f)), f);
  }
  EXPECT_THROW(parse_format("BOGUS"), Error);
}

TEST(Csc, ColumnStructureMatchesSource) {
  CooMatrix coo(3, 4, {{0, 1, 1.0}, {0, 3, 2.0}, {2, 1, 3.0}});
  CscMatrix csc(coo);
  EXPECT_EQ(csc.col_nnz(0), 0);
  EXPECT_EQ(csc.col_nnz(1), 2);
  EXPECT_EQ(csc.col_nnz(3), 1);
  EXPECT_EQ(csc.col_ptr().size(), 5u);
  // Rows within a column are sorted ascending.
  EXPECT_EQ(csc.row_indices()[0], 0);
  EXPECT_EQ(csc.row_indices()[1], 2);
}

TEST(Csc, SkipsZeroColumnsOfSparseRhs) {
  // A matrix where column 0 holds almost everything; multiplying by a
  // workspace that is zero there must still be correct.
  std::vector<Triplet> t;
  for (index_t i = 0; i < 50; ++i) t.push_back({i, 0, 1.0});
  t.push_back({7, 3, 2.0});
  CooMatrix coo(50, 4, std::move(t));
  CscMatrix csc(coo);
  std::vector<real_t> w = {0.0, 0.0, 0.0, 5.0};
  std::vector<real_t> y(50, -1.0);
  csc.multiply_dense(w, y);
  EXPECT_DOUBLE_EQ(y[7], 10.0);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(Bcsr, TileAccountingAndFillRatio) {
  // Two nonzeros in the same 4x4 tile, one in another tile.
  CooMatrix coo(8, 8, {{0, 0, 1.0}, {1, 2, 2.0}, {5, 6, 3.0}});
  BcsrMatrix bcsr(coo);
  EXPECT_EQ(bcsr.num_blocks(), 2);
  EXPECT_EQ(bcsr.stored_elements(), 2 * 16);
  EXPECT_DOUBLE_EQ(bcsr.fill_ratio(), 32.0 / 3.0);
  EXPECT_EQ(bcsr.nnz(), 3);
}

TEST(Bcsr, CustomBlockShapeAndRaggedEdges) {
  // 5x5 matrix with 2x3 tiles: edge tiles are clipped by the loop bounds.
  CooMatrix coo(5, 5, {{4, 4, 7.0}, {0, 0, 1.0}});
  BcsrMatrix bcsr(coo, 2, 3);
  EXPECT_EQ(bcsr.block_rows(), 2);
  EXPECT_EQ(bcsr.block_cols(), 3);
  std::vector<real_t> w(5, 1.0);
  std::vector<real_t> y(5, 0.0);
  bcsr.multiply_dense(w, y);
  EXPECT_DOUBLE_EQ(y[4], 7.0);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  // Round-trip drops the fill.
  EXPECT_EQ(bcsr.to_coo().nnz(), 2);
}

TEST(Bcsr, DenseBlocksFillRatioApproachesOne) {
  Rng rng(0xB1E55);
  const CooMatrix coo = test::random_matrix(16, 16, 1.0, rng);
  BcsrMatrix bcsr(coo);
  EXPECT_DOUBLE_EQ(bcsr.fill_ratio(), 1.0);
  EXPECT_EQ(bcsr.num_blocks(), 16);
}

TEST(Hyb, AutoWidthIsCeilOfMeanRowLength) {
  // 4 rows with lengths {1, 1, 2, 4}: nnz = 8, mean = 2 -> width 2 and
  // the length-4 row spills 2 entries into the COO overflow.
  CooMatrix coo(4, 8,
                {{0, 0, 1.0}, {1, 1, 1.0}, {2, 0, 1.0}, {2, 3, 1.0},
                 {3, 0, 1.0}, {3, 2, 1.0}, {3, 5, 1.0}, {3, 7, 1.0}});
  HybMatrix hyb(coo);
  EXPECT_EQ(hyb.ell_width(), 2);
  EXPECT_EQ(hyb.overflow_nnz(), 2);
  EXPECT_EQ(hyb.stored_elements(), 4 * 2 + 2);
  SparseVector row;
  hyb.gather_row(3, row);  // slab part (cols 0, 2) + overflow (cols 5, 7)
  ASSERT_EQ(row.nnz(), 4);
  EXPECT_EQ(row.indices()[2], 5);
}

TEST(Hyb, ExplicitWidthControlsTheSplit) {
  CooMatrix coo(2, 6, {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}, {1, 4, 1.0}});
  HybMatrix hyb(coo, /*ell_width=*/1);
  EXPECT_EQ(hyb.ell_width(), 1);
  EXPECT_EQ(hyb.overflow_nnz(), 2);  // row 0 spills cols 1 and 2
}

TEST(Hyb, SingleLongRowNoLongerInflatesStorage) {
  // ELL's pathology: one row of 64 among 63 rows of 1 forces mdim = 64.
  std::vector<Triplet> t;
  for (index_t j = 0; j < 64; ++j) t.push_back({0, j, 1.0});
  for (index_t i = 1; i < 64; ++i) t.push_back({i, 0, 1.0});
  CooMatrix coo(64, 64, std::move(t));
  const EllMatrix ell(coo);
  const HybMatrix hyb(coo);
  EXPECT_EQ(ell.stored_elements(), 64 * 64);
  EXPECT_LT(hyb.stored_elements(), 3 * coo.nnz());  // ~nnz, not M * mdim
}

TEST(Jds, JaggedDiagonalStructure) {
  // Rows lengths {3, 1, 2}: sorted order is row0, row2, row1.
  CooMatrix coo(3, 5,
                {{0, 0, 1.0}, {0, 2, 2.0}, {0, 4, 3.0}, {1, 1, 4.0},
                 {2, 0, 5.0}, {2, 3, 6.0}});
  JdsMatrix jds(coo);
  EXPECT_EQ(jds.num_jagged(), 3);
  EXPECT_EQ(jds.nnz(), 6);
  const auto perm = jds.permutation();
  EXPECT_EQ(perm[0], 0);
  EXPECT_EQ(perm[1], 2);
  EXPECT_EQ(perm[2], 1);
  // Gather rebuilds each row correctly through the permutation.
  SparseVector row;
  jds.gather_row(2, row);
  ASSERT_EQ(row.nnz(), 2);
  EXPECT_EQ(row.indices()[1], 3);
  EXPECT_EQ(row.values()[1], 6.0);
}

TEST(Jds, NoPaddingEverStored) {
  Rng rng(0x1D5);
  // Highly skewed rows: JDS stores exactly nnz values regardless.
  const CooMatrix coo = make_vdim_spread(128, 512, 2048, 2, 0.6, rng);
  JdsMatrix jds(coo);
  EXPECT_EQ(jds.stored_elements(), coo.nnz());
  EXPECT_EQ(jds.work_flops(), coo.nnz());
}

TEST(AnyMatrix, FormatTagMatchesConstruction) {
  CooMatrix coo(2, 2, {{0, 0, 1.0}});
  for (Format f : kAllFormats) {
    EXPECT_EQ(AnyMatrix::from_coo(coo, f).format(), f);
  }
}

TEST(AnyMatrix, AsAccessesConcreteType) {
  CooMatrix coo(2, 2, {{0, 0, 1.0}});
  AnyMatrix m = AnyMatrix::from_coo(coo, Format::kCSR);
  EXPECT_EQ(m.as<CsrMatrix>().rows(), 2);
  EXPECT_THROW(m.as<DenseMatrix>(), std::bad_variant_access);
}

// ------------------------------------------------------------------------
// Property sweep: every format x several shapes/densities must agree with
// the brute-force reference on multiply, gather, nnz and round-trip.

struct SweepParam {
  Format format;
  index_t m;
  index_t n;
  double density;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  return std::string(format_name(p.format)) + "_" + std::to_string(p.m) +
         "x" + std::to_string(p.n) + "_d" +
         std::to_string(static_cast<int>(p.density * 100));
}

class FormatSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FormatSweep, MultiplyMatchesReference) {
  const auto& p = GetParam();
  Rng rng(0xF00D + static_cast<std::uint64_t>(p.m * 31 + p.n));
  const CooMatrix coo = random_matrix(p.m, p.n, p.density, rng);
  const AnyMatrix mat = AnyMatrix::from_coo(coo, p.format);
  const std::vector<real_t> w = random_vector(p.n, rng);
  std::vector<real_t> y(static_cast<std::size_t>(p.m), -99.0);
  mat.multiply_dense(w, y);
  expect_near(y, reference_multiply(coo, w));
}

TEST_P(FormatSweep, RoundTripThroughCooIsLossless) {
  const auto& p = GetParam();
  Rng rng(0xBEEF + static_cast<std::uint64_t>(p.m));
  const CooMatrix coo = random_matrix(p.m, p.n, p.density, rng);
  const AnyMatrix mat = AnyMatrix::from_coo(coo, p.format);
  const CooMatrix back = mat.to_coo();
  ASSERT_EQ(back.nnz(), coo.nnz());
  expect_near(back.values(), coo.values());
  for (index_t k = 0; k < coo.nnz(); ++k) {
    EXPECT_EQ(back.row_indices()[static_cast<std::size_t>(k)],
              coo.row_indices()[static_cast<std::size_t>(k)]);
    EXPECT_EQ(back.col_indices()[static_cast<std::size_t>(k)],
              coo.col_indices()[static_cast<std::size_t>(k)]);
  }
}

TEST_P(FormatSweep, GatherRowMatchesReference) {
  const auto& p = GetParam();
  Rng rng(0xCAFE + static_cast<std::uint64_t>(p.n));
  const CooMatrix coo = random_matrix(p.m, p.n, p.density, rng);
  const AnyMatrix mat = AnyMatrix::from_coo(coo, p.format);
  SparseVector expect, got;
  for (index_t i = 0; i < p.m; ++i) {
    coo.gather_row(i, expect);
    mat.gather_row(i, got);
    ASSERT_EQ(got.nnz(), expect.nnz()) << "row " << i;
    for (index_t k = 0; k < expect.nnz(); ++k) {
      EXPECT_EQ(got.indices()[static_cast<std::size_t>(k)],
                expect.indices()[static_cast<std::size_t>(k)]);
      EXPECT_DOUBLE_EQ(got.values()[static_cast<std::size_t>(k)],
                       expect.values()[static_cast<std::size_t>(k)]);
    }
  }
}

TEST_P(FormatSweep, DimensionAndNnzAccounting) {
  const auto& p = GetParam();
  Rng rng(0xABCD);
  const CooMatrix coo = random_matrix(p.m, p.n, p.density, rng);
  const AnyMatrix mat = AnyMatrix::from_coo(coo, p.format);
  EXPECT_EQ(mat.rows(), p.m);
  EXPECT_EQ(mat.cols(), p.n);
  EXPECT_EQ(mat.nnz(), coo.nnz());
  EXPECT_GE(mat.stored_elements(), 0);
  EXPECT_GE(mat.work_flops(), 0);
  // Work never undercounts the nonzeros (padding only adds).
  if (coo.nnz() > 0) {
    EXPECT_GE(mat.work_flops(), coo.nnz());
  }
}

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> params;
  const std::vector<std::tuple<index_t, index_t, double>> shapes = {
      {1, 1, 1.0},   {5, 7, 0.3},   {16, 16, 0.1},   {64, 8, 0.5},
      {8, 64, 0.5},  {40, 40, 0.02}, {100, 30, 0.15}, {33, 57, 0.9},
  };
  for (Format f : kExtendedFormats) {
    for (const auto& [m, n, d] : shapes) {
      params.push_back({f, m, n, d});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatSweep,
                         ::testing::ValuesIn(make_sweep()), sweep_name);

// ------------------------------------------------------------------------
// Empty and degenerate matrices must not crash any format.

class EmptyMatrix : public ::testing::TestWithParam<Format> {};

TEST_P(EmptyMatrix, ZeroNnzMultiplyIsZero) {
  CooMatrix coo(4, 3, {});
  const AnyMatrix mat = AnyMatrix::from_coo(coo, GetParam());
  std::vector<real_t> w(3, 1.0), y(4, 5.0);
  mat.multiply_dense(w, y);
  for (real_t v : y) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(mat.nnz(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EmptyMatrix,
                         ::testing::ValuesIn(std::vector<Format>(
                             kExtendedFormats.begin(), kExtendedFormats.end())),
                         [](const auto& info) {
                           return std::string(format_name(info.param));
                         });

// ------------------------------------------------------------------------
// Table II storage accounting: measured bytes must equal the analytic
// formula exactly (the formulas are in element words; every word here is
// 8 bytes).

class StorageAccounting : public ::testing::TestWithParam<Format> {};

TEST_P(StorageAccounting, MeasuredBytesMatchFormula) {
  Rng rng(0x57A6);
  const CooMatrix coo = random_matrix(37, 23, 0.2, rng);
  const AnyMatrix mat = AnyMatrix::from_coo(coo, GetParam());

  StorageShape s;
  s.rows = coo.rows();
  s.cols = coo.cols();
  s.nnz = coo.nnz();
  // ndig / mdim from the materialised structures.
  if (GetParam() == Format::kDIA) {
    s.ndig = mat.as<DiaMatrix>().num_diagonals();
  }
  if (GetParam() == Format::kELL) {
    s.mdim = mat.as<EllMatrix>().max_row_nnz();
  }
  if (GetParam() == Format::kBCSR) {
    s.nblocks = mat.as<BcsrMatrix>().num_blocks();
  }
  if (GetParam() == Format::kHYB) {
    s.hyb_width = mat.as<HybMatrix>().ell_width();
    s.hyb_overflow = mat.as<HybMatrix>().overflow_nnz();
  }
  if (GetParam() == Format::kJDS) {
    s.mdim = mat.as<JdsMatrix>().num_jagged();  // = mdim of the matrix
  }
  const index_t words = storage_words(GetParam(), s);
  EXPECT_EQ(mat.storage_bytes(), static_cast<std::size_t>(words) * 8u);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, StorageAccounting,
                         ::testing::ValuesIn(std::vector<Format>(
                             kExtendedFormats.begin(), kExtendedFormats.end())),
                         [](const auto& info) {
                           return std::string(format_name(info.param));
                         });

TEST(StorageModel, TableIIMinMaxBoundsHold) {
  // For any concrete matrix, storage must lie within the Table II bounds.
  Rng rng(0x7AB1E);
  for (double density : {0.05, 0.3, 1.0}) {
    const CooMatrix coo = random_matrix(20, 30, density, rng);
    for (Format f : kExtendedFormats) {
      const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
      const auto words =
          static_cast<index_t>(mat.storage_bytes() / 8);
      EXPECT_GE(words, storage_words_min(f, 20, 30))
          << format_name(f) << " density " << density;
      EXPECT_LE(words, storage_words_max(f, 20, 30))
          << format_name(f) << " density " << density;
    }
  }
}

TEST(StorageModel, DenseMatrixExtremes) {
  // Fully dense: CSR ~ 2MN + M, COO ~ 3MN, ELL = 2MN — Table II "Max".
  Rng rng(0xD15C);
  const index_t m = 12, n = 9;
  CooMatrix coo = test::random_matrix(m, n, 1.0, rng);
  ASSERT_EQ(coo.nnz(), m * n);
  EXPECT_EQ(AnyMatrix::from_coo(coo, Format::kCSR).storage_bytes() / 8,
            static_cast<std::size_t>(2 * m * n + m + 1));
  EXPECT_EQ(AnyMatrix::from_coo(coo, Format::kCOO).storage_bytes() / 8,
            static_cast<std::size_t>(3 * m * n));
  EXPECT_EQ(AnyMatrix::from_coo(coo, Format::kELL).storage_bytes() / 8,
            static_cast<std::size_t>(2 * m * n));
  // Every diagonal occupied: DIA hits (min(M,N)+1)(M+N-1) within the
  // offsets-array accounting.
  const auto dia_words =
      AnyMatrix::from_coo(coo, Format::kDIA).storage_bytes() / 8;
  EXPECT_EQ(dia_words,
            static_cast<std::size_t>((std::min(m, n) + 1) * (m + n - 1)));
}

TEST(SparseVector, ScatterUnscatterLeavesWorkspaceClean) {
  SparseVector v({1, 3, 7}, {1.0, 2.0, 3.0});
  std::vector<real_t> ws(10, 0.0);
  v.scatter(ws);
  EXPECT_EQ(ws[3], 2.0);
  v.unscatter(ws);
  for (real_t x : ws) EXPECT_EQ(x, 0.0);
}

TEST(SparseVector, DotProductsAgree) {
  SparseVector a({0, 2, 5}, {1.0, 2.0, 3.0});
  SparseVector b({2, 4, 5}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(a.dot_sparse(b), 2.0 * 10.0 + 3.0 * 30.0);
  std::vector<real_t> dense(6, 0.0);
  b.scatter(dense);
  EXPECT_DOUBLE_EQ(a.dot_dense(dense), a.dot_sparse(b));
  EXPECT_DOUBLE_EQ(a.squared_norm(), 1.0 + 4.0 + 9.0);
}

TEST(SparseVector, RejectsUnsortedConstruction) {
  EXPECT_THROW(SparseVector({3, 1}, {1.0, 2.0}), Error);
  EXPECT_THROW(SparseVector({1, 1}, {1.0, 2.0}), Error);
  EXPECT_THROW(SparseVector({1}, {1.0, 2.0}), Error);
}

}  // namespace
}  // namespace ls
