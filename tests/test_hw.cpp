// Tests for the convergence model, the hardware model and the B/eta/mu
// autotuner — these jointly must reproduce Table VII and Figs. 5/6.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dnn/convergence.hpp"
#include "hw/autotune.hpp"
#include "hw/device.hpp"
#include "hw/multigpu.hpp"

namespace ls {
namespace {

// ----------------------------------------------------- convergence model

TEST(Convergence, PaperAnchorPointsReproduce) {
  // Table VII row anchors (epochs computed from iterations x B / 50,000).
  const auto base = epochs_to_target({100, 0.001, 0.90});
  ASSERT_TRUE(base.has_value());
  EXPECT_NEAR(*base, 120.0, 0.5);

  const auto tuned_b = epochs_to_target({512, 0.001, 0.90});
  ASSERT_TRUE(tuned_b.has_value());
  EXPECT_NEAR(*tuned_b, 307.2, 2.0);

  const auto tuned_eta = epochs_to_target({512, 0.003, 0.90});
  ASSERT_TRUE(tuned_eta.has_value());
  EXPECT_NEAR(*tuned_eta, 123.0, 2.0);

  const auto tuned_mu = epochs_to_target({512, 0.003, 0.95});
  ASSERT_TRUE(tuned_mu.has_value());
  EXPECT_NEAR(*tuned_mu, 71.7, 2.0);
}

TEST(Convergence, IterationsDeriveFromEpochs) {
  const auto iters = iterations_to_target({512, 0.003, 0.95});
  ASSERT_TRUE(iters.has_value());
  EXPECT_NEAR(static_cast<double>(*iters), 7000.0, 100.0);  // Table VII
}

TEST(Convergence, LargerEtaConvergesFasterUntilUnstable) {
  double prev = 1e300;
  for (double eta : {0.001, 0.002, 0.003}) {
    const auto e = epochs_to_target({512, eta, 0.90});
    ASSERT_TRUE(e.has_value()) << eta;
    EXPECT_LT(*e, prev);
    prev = *e;
  }
  // 0.004 overshoots at B = 512 (the paper's sweep stopped at 0.003).
  EXPECT_FALSE(converges({512, 0.004, 0.90}));
}

TEST(Convergence, MomentumHelpsUntilOscillation) {
  const auto mu90 = epochs_to_target({512, 0.003, 0.90});
  const auto mu95 = epochs_to_target({512, 0.003, 0.95});
  ASSERT_TRUE(mu90 && mu95);
  EXPECT_LT(*mu95, *mu90);
  // 0.96 pushes the effective learning rate past the stability bound.
  EXPECT_FALSE(converges({512, 0.003, 0.96}));
}

TEST(Convergence, LargeBatchNeedsMoreEpochs) {
  double prev = 0.0;
  for (index_t b : {100, 512, 1024, 4096}) {
    const auto e = epochs_to_target({b, 0.001, 0.90});
    ASSERT_TRUE(e.has_value()) << b;
    EXPECT_GT(*e, prev) << b;
    prev = *e;
  }
}

TEST(Convergence, TuningSpacesMatchThePaper) {
  const auto bs = batch_tuning_space();
  EXPECT_EQ(bs.size(), 9u);
  EXPECT_EQ(bs.front(), 64);
  EXPECT_EQ(bs.back(), 8192);
  const auto lrs = lr_tuning_space();
  EXPECT_EQ(lrs.size(), 16u);
  EXPECT_NEAR(lrs.front(), 0.001, 1e-12);
  EXPECT_NEAR(lrs.back(), 0.016, 1e-12);
  const auto mus = momentum_tuning_space();
  EXPECT_EQ(mus.size(), 10u);
  EXPECT_NEAR(mus.front(), 0.90, 1e-12);
  EXPECT_NEAR(mus.back(), 0.99, 1e-12);
}

TEST(Convergence, RejectsNonsenseConfigs) {
  EXPECT_THROW(converges({0, 0.001, 0.9}), Error);
  EXPECT_THROW(converges({100, -0.1, 0.9}), Error);
  EXPECT_THROW(converges({100, 0.001, 1.0}), Error);
}

// ---------------------------------------------------------- device model

TEST(Device, DatabaseHasAllFivePlatforms) {
  EXPECT_EQ(device_db().size(), 5u);
  EXPECT_EQ(device_by_id("cpu8").price_usd, 1571.0);
  EXPECT_EQ(device_by_id("dgx").gpus, 4);
  EXPECT_THROW(device_by_id("tpu"), Error);
}

TEST(Device, Batch100TimesMatchTableVII) {
  // 60,000 iterations at B = 100 must land on the Table VII totals.
  struct Row {
    const char* id;
    double total_seconds;
  };
  const Row rows[] = {{"cpu8", 29427}, {"knl", 4922},  {"haswell", 1997},
                      {"p100", 503},   {"dgx", 387}};
  for (const Row& r : rows) {
    const DeviceSpec& d = device_by_id(r.id);
    EXPECT_NEAR(d.training_seconds(60000, 100), r.total_seconds,
                r.total_seconds * 1e-9)
        << r.id;
  }
}

TEST(Device, DgxSaturationReproducesTunedBatchRow) {
  // The DGX h parameter was calibrated so 30,000 iterations at B = 512
  // take ~361 s (Table VII "Tune B" row).
  const DeviceSpec& dgx = device_by_id("dgx");
  EXPECT_NEAR(dgx.training_seconds(30000, 512), 361.0, 4.0);
}

TEST(Device, ThroughputImprovesWithBatchSize) {
  // seconds/iteration grows sublinearly in B => samples/second grows.
  const DeviceSpec& dgx = device_by_id("dgx");
  double prev_rate = 0.0;
  for (index_t b : {64, 128, 512, 2048}) {
    const double rate =
        static_cast<double>(b) / dgx.seconds_per_iteration(b);
    EXPECT_GT(rate, prev_rate);
    prev_rate = rate;
  }
}

TEST(Device, SpeedupAndPriceMetrics) {
  EXPECT_DOUBLE_EQ(speedup_vs_baseline(100.0, 1000.0), 10.0);
  EXPECT_DOUBLE_EQ(price_per_speedup(5000.0, 10.0), 500.0);
  EXPECT_THROW(price_per_speedup(100.0, 0.0), Error);
}

TEST(Device, TableVIISpeedupColumn) {
  const double base = device_by_id("cpu8").training_seconds(60000, 100);
  struct Row {
    const char* id;
    double speedup;
    double tol;
  };
  // Paper rounds to integers; allow 1 unit of rounding slack.
  const Row rows[] = {
      {"knl", 6, 0.3}, {"haswell", 15, 0.5}, {"p100", 59, 1.0},
      {"dgx", 76, 1.0}};
  for (const Row& r : rows) {
    const double t = device_by_id(r.id).training_seconds(60000, 100);
    EXPECT_NEAR(speedup_vs_baseline(t, base), r.speedup, r.tol) << r.id;
  }
}

TEST(Device, P100IsMostCostEfficientCpu8Least) {
  // Fig. 6's headline: P100 lowest price-per-speedup, 8-core CPU highest.
  const double base = device_by_id("cpu8").training_seconds(60000, 100);
  double best = 1e300, worst = 0.0;
  std::string best_id, worst_id;
  for (const DeviceSpec& d : device_db()) {
    const double pps = price_per_speedup(
        d.price_usd,
        speedup_vs_baseline(d.training_seconds(60000, 100), base));
    if (pps < best) {
      best = pps;
      best_id = d.id;
    }
    if (pps > worst) {
      worst = pps;
      worst_id = d.id;
    }
  }
  EXPECT_EQ(best_id, "p100");
  EXPECT_EQ(worst_id, "cpu8");
}

// -------------------------------------------------------------- autotune

TEST(Autotune, SequentialTuningReproducesTableVIIRows) {
  const DeviceSpec& dgx = device_by_id("dgx");
  const auto stages = tune_sequential(dgx, {100, 0.001, 0.90});
  ASSERT_EQ(stages.size(), 3u);

  // Stage 1 (Tune B): B = 512, ~30,000 iterations, ~361 s.
  EXPECT_EQ(stages[0].config.batch, 512);
  EXPECT_NEAR(static_cast<double>(stages[0].iterations), 30000.0, 200.0);
  EXPECT_NEAR(stages[0].seconds, 361.0, 10.0);

  // Stage 2 (Tune eta): eta = 0.003, ~12,000 iterations.
  EXPECT_NEAR(stages[1].config.eta, 0.003, 1e-12);
  EXPECT_NEAR(static_cast<double>(stages[1].iterations), 12000.0, 150.0);

  // Stage 3 (Tune mu): mu = 0.95, ~7,000 iterations, ~83 s.
  EXPECT_NEAR(stages[2].config.mu, 0.95, 1e-12);
  EXPECT_NEAR(static_cast<double>(stages[2].iterations), 7000.0, 100.0);
  EXPECT_NEAR(stages[2].seconds, 83.0, 6.0);
}

TEST(Autotune, JointSearchAgreesWithSequential) {
  const DeviceSpec& dgx = device_by_id("dgx");
  const TunedConfig joint = tune_joint(dgx);
  EXPECT_EQ(joint.config.batch, 512);
  EXPECT_NEAR(joint.config.eta, 0.003, 1e-12);
  EXPECT_NEAR(joint.config.mu, 0.95, 1e-12);
}

TEST(Autotune, EveryDeviceProducesAValidTuning) {
  // The tuning spaces and convergence model are device-independent; only
  // the time weighting differs. Every platform must yield a convergent,
  // strictly-improving three-stage tuning.
  for (const DeviceSpec& device : device_db()) {
    const auto stages = tune_sequential(device, {100, 0.001, 0.90});
    ASSERT_EQ(stages.size(), 3u) << device.id;
    const auto start = evaluate_config(device, {100, 0.001, 0.90});
    ASSERT_TRUE(start.has_value());
    // Each stage never regresses on the previous one.
    EXPECT_LE(stages[0].seconds, start->seconds + 1e-9) << device.id;
    EXPECT_LE(stages[1].seconds, stages[0].seconds + 1e-9) << device.id;
    EXPECT_LE(stages[2].seconds, stages[1].seconds + 1e-9) << device.id;
    EXPECT_TRUE(converges(stages[2].config)) << device.id;
  }
}

TEST(Autotune, CpuTuningPrefersSmallerBatchesThanDgx) {
  // CPUs saturate almost immediately (small h), so large batches buy no
  // throughput while still costing extra epochs — the tuned batch on the
  // 8-core CPU must not exceed the DGX's.
  const TunedConfig cpu = tune_batch(device_by_id("cpu8"), 0.001, 0.90);
  const TunedConfig dgx = tune_batch(device_by_id("dgx"), 0.001, 0.90);
  EXPECT_LE(cpu.config.batch, dgx.config.batch);
}

TEST(Autotune, DivergentConfigsAreSkipped) {
  const DeviceSpec& dgx = device_by_id("dgx");
  EXPECT_FALSE(evaluate_config(dgx, {512, 0.016, 0.90}).has_value());
  const auto ok = evaluate_config(dgx, {512, 0.003, 0.90});
  ASSERT_TRUE(ok.has_value());
  EXPECT_GT(ok->seconds, 0.0);
}

// ------------------------------------------------------ multi-GPU model

TEST(MultiGpu, AnchorsReproduceTableVIIRows) {
  const MultiGpuModel m = paper_dgx_model();
  // P100 row: 8.3833 ms/iter at P = 1, B = 100.
  EXPECT_NEAR(m.seconds_per_iteration(1, 100), 503.0 / 60000.0, 1e-6);
  // DGX rows: 6.45 ms (B = 100) and 12.033 ms (B = 512) at P = 4.
  EXPECT_NEAR(m.seconds_per_iteration(4, 100), 387.0 / 60000.0, 1e-6);
  EXPECT_NEAR(m.seconds_per_iteration(4, 512), 361.0 / 30000.0, 1e-6);
}

TEST(MultiGpu, NaivePortGivesOnlyAboutOnePointThreeX) {
  // Section IV-B: "the straightforward porting from one P100 GPU to one
  // DGX station only brings 1.3x speedup".
  const MultiGpuModel m = paper_dgx_model();
  EXPECT_NEAR(m.scaling(4, 100), 1.3, 0.05);
}

TEST(MultiGpu, ScalingApproachesGpuCountAtLargeBatch) {
  const MultiGpuModel m = paper_dgx_model();
  double prev = 0.0;
  for (index_t b : {100, 512, 2048, 8192}) {
    const double s = m.scaling(4, b);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_GT(m.scaling(4, 8192), 3.5);
  EXPECT_LT(m.scaling(4, 8192), 4.0);
}

TEST(MultiGpu, SingleGpuHasNoAllreduceCost) {
  const MultiGpuModel m = paper_dgx_model();
  // t(1, B) must be pure compute: linear in B with slope c.
  const double t1 = m.seconds_per_iteration(1, 100);
  const double t2 = m.seconds_per_iteration(1, 200);
  EXPECT_NEAR(t2 - t1, m.c * 100.0, 1e-9);
}

TEST(MultiGpu, RejectsBadArguments) {
  const MultiGpuModel m = paper_dgx_model();
  EXPECT_THROW(m.seconds_per_iteration(0, 100), Error);
  EXPECT_THROW(m.seconds_per_iteration(4, 0), Error);
}

TEST(Autotune, FullPipelineSpeedupIsAbout355x) {
  // The headline: 8.2 hours on the 8-core CPU down to ~83 s on the DGX.
  const double base = device_by_id("cpu8").training_seconds(60000, 100);
  EXPECT_NEAR(base / 3600.0, 8.17, 0.05);  // "8.2 hours"
  const auto stages = tune_sequential(device_by_id("dgx"), {100, 0.001, 0.90});
  const double speedup = speedup_vs_baseline(stages[2].seconds, base);
  EXPECT_NEAR(speedup, 355.0, 25.0);
}

}  // namespace
}  // namespace ls
