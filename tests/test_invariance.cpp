// Thread-count invariance and pipeline-safety tests.
//
// The deterministic-parallelism contract: for a fixed seed, the scheduler
// decision and the trained SVM model are BIT-identical at any
// OMP_NUM_THREADS. The primitives that make that possible are
// parallel_reduce (chunk-ordered fold) and parallel_argmax (first-max-wins
// merge), which the WSS scans are built on, plus elementwise parallel_for
// updates. The empirical autotuner is exempt by design — it races
// wall-clock timings — so the invariance tests pin the heuristic policy.
//
// The pipeline tests double as ThreadSanitizer targets: they drive the
// KernelCache prefetch worker against the consumer thread and hammer the
// atomic counters from a concurrent reader (see scripts/check.sh's
// LS_SANITIZE=thread stage).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "data/profiles.hpp"
#include "data/synthetic.hpp"
#include "sched/scheduler.hpp"
#include "svm/cache.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/trainer.hpp"
#include "test_util.hpp"

namespace {

using namespace ls;

using test::with_threads;

std::vector<int> thread_counts() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return {1, 4, hw > 0 ? hw : 2};
}

// ---------------------------------------------------------------------------
// Deterministic parallel primitives.

TEST(Invariance, ParallelReduceAssociativeFoldThreadInvariant) {
  // Integer sum and max are associative, so the chunked fold must give the
  // serial answer at every thread count (n > 4096 to cross the parallel
  // threshold).
  const index_t n = 10000;
  Rng rng(0x41u);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform_int(-1000, 1000);
  std::int64_t serial_sum = 0;
  for (auto x : v) serial_sum += x;

  for (int t : thread_counts()) {
    const std::int64_t sum = with_threads(t, [&] {
      return parallel_reduce(
          n, std::int64_t{0},
          [&](index_t i) { return v[static_cast<std::size_t>(i)]; },
          [](std::int64_t a, std::int64_t b) { return a + b; });
    });
    EXPECT_EQ(sum, serial_sum) << "threads=" << t;
  }
}

TEST(Invariance, ParallelReduceSerialBelowThreshold) {
  // Small n must take the exact serial fold regardless of thread count —
  // even a non-associative (floating-point) fold is then bit-stable.
  const index_t n = 1000;
  Rng rng(0x42u);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  real_t serial = 0.0;
  for (auto x : v) serial += x;

  const real_t folded = with_threads(4, [&] {
    return parallel_reduce(
        n, real_t{0.0},
        [&](index_t i) { return v[static_cast<std::size_t>(i)]; },
        [](real_t a, real_t b) { return a + b; });
  });
  EXPECT_EQ(folded, serial);
}

TEST(Invariance, ParallelArgmaxMatchesSerialScan) {
  const index_t n = 9000;
  Rng rng(0x43u);
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-5.0, 5.0);
  index_t serial = -1;
  real_t best = -std::numeric_limits<real_t>::infinity();
  for (index_t i = 0; i < n; ++i) {
    if (v[static_cast<std::size_t>(i)] > best) {
      best = v[static_cast<std::size_t>(i)];
      serial = i;
    }
  }
  for (int t : thread_counts()) {
    const index_t got = with_threads(t, [&] {
      return parallel_argmax(
          n, [&](index_t i) { return v[static_cast<std::size_t>(i)]; });
    });
    EXPECT_EQ(got, serial) << "threads=" << t;
  }
}

TEST(Invariance, ParallelArgmaxTieBreaksToLowestIndex) {
  const index_t n = 8192;
  std::vector<real_t> v(static_cast<std::size_t>(n), 0.0);
  // The same maximal value planted in several chunks: the first index must
  // win no matter how the range was split.
  v[137] = v[4099] = v[8000] = 7.5;
  for (int t : thread_counts()) {
    const index_t got = with_threads(t, [&] {
      return parallel_argmax(
          n, [&](index_t i) { return v[static_cast<std::size_t>(i)]; });
    });
    EXPECT_EQ(got, 137) << "threads=" << t;
  }
}

TEST(Invariance, ParallelArgmaxFloorAndEmpty) {
  EXPECT_EQ(parallel_argmax(0, [](index_t) { return 1.0; }), -1);
  // No score above the floor -> -1, at any thread count.
  const index_t n = 5000;
  for (int t : {1, 4}) {
    const index_t got = with_threads(t, [&] {
      return parallel_argmax(n, [](index_t) { return -1.0; }, 0.0);
    });
    EXPECT_EQ(got, -1) << "threads=" << t;
  }
}

TEST(Invariance, BatchKernelThreadInvariant) {
  Rng rng(0x44u);
  const CooMatrix coo = test::random_matrix(300, 80, 0.2, rng);
  const std::vector<real_t> lane_a = test::random_vector(80, rng);
  const std::vector<real_t> lane_b = test::random_vector(80, rng);
  std::vector<real_t> w(80 * 2);
  for (std::size_t j = 0; j < 80; ++j) {
    w[j * 2] = lane_a[j];
    w[j * 2 + 1] = lane_b[j];
  }
  for (Format f : {Format::kCSR, Format::kDEN, Format::kELL}) {
    const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
    std::vector<real_t> y1(300 * 2), y4(300 * 2);
    with_threads(1, [&] {
      mat.multiply_dense_batch(w, 2, y1);
      return 0;
    });
    with_threads(4, [&] {
      mat.multiply_dense_batch(w, 2, y4);
      return 0;
    });
    test::expect_bit_identical(y1, y4);
  }
}

// ---------------------------------------------------------------------------
// Scheduler and solver invariance.

TEST(Invariance, HeuristicDecisionThreadInvariant) {
  Rng rng(0x45u);
  const CooMatrix coo = make_banded(600, 600, {0, 1, -1, 3, -3}, 1.0, rng);
  const MatrixFeatures base_feat = extract_features(coo);
  const CostCalibration cal = CostCalibration::uniform();
  const ScheduleDecision base = HeuristicSelector(cal).choose(base_feat);

  for (int t : thread_counts()) {
    const ScheduleDecision d = with_threads(t, [&] {
      return HeuristicSelector(cal).choose(extract_features(coo));
    });
    EXPECT_EQ(d.format, base.format) << "threads=" << t;
    test::expect_bit_identical(
        std::span<const real_t>(d.score_seconds),
        std::span<const real_t>(base.score_seconds));
    test::expect_bit_identical(
        std::span<const real_t>(d.batch_score_seconds),
        std::span<const real_t>(base.batch_score_seconds));
  }
}

TEST(Invariance, FeatureExtractionThreadInvariant) {
  Rng rng(0x46u);
  const CooMatrix coo = test::random_matrix(500, 120, 0.08, rng);
  const std::string base = extract_features(coo).to_string();
  for (int t : thread_counts()) {
    const std::string got =
        with_threads(t, [&] { return extract_features(coo).to_string(); });
    EXPECT_EQ(got, base) << "threads=" << t;
  }
}

/// Deterministic training run: fixed CSR layout (no timing in the loop),
/// capped iterations so the test is fast whether or not it converges.
TrainResult train_deterministic(const Dataset& ds, index_t prefetch_rows) {
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.25;
  params.c = 1.0;
  params.max_iterations = 150;
  params.prefetch_rows = prefetch_rows;
  return train_fixed_format(ds, params, Format::kCSR);
}

/// The dataset is big enough (> 4096 samples) that the WSS scans take the
/// genuinely parallel chunked path, not the small-n serial fallback.
Dataset invariance_dataset() {
  Rng rng(0x47u);
  Dataset ds;
  ds.name = "invariance";
  std::vector<index_t> lens(4500, 6);
  ds.X = make_random_sparse(4500, 48, lens, rng);
  ds.y = plant_labels(ds.X, 0.1, 7);
  return ds;
}

void expect_same_model(const TrainResult& a, const TrainResult& b,
                       int context) {
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << context;
  EXPECT_EQ(a.stats.converged, b.stats.converged) << context;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.model.rho),
            std::bit_cast<std::uint64_t>(b.model.rho))
      << context;
  ASSERT_EQ(a.model.coef.size(), b.model.coef.size()) << context;
  test::expect_bit_identical(a.model.coef, b.model.coef);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stats.b_high),
            std::bit_cast<std::uint64_t>(b.stats.b_high))
      << context;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stats.b_low),
            std::bit_cast<std::uint64_t>(b.stats.b_low))
      << context;
}

TEST(Invariance, SvmModelBitIdenticalAcrossThreadCounts) {
  const Dataset ds = invariance_dataset();
  const TrainResult base =
      with_threads(1, [&] { return train_deterministic(ds, 0); });
  EXPECT_GT(base.stats.iterations, 0);
  for (int t : thread_counts()) {
    const TrainResult got =
        with_threads(t, [&] { return train_deterministic(ds, 0); });
    expect_same_model(base, got, t);
  }
}

TEST(Invariance, PrefetchPipelineDoesNotChangeModel) {
  // The pipeline only warms the cache; iterates must be bit-identical with
  // it on or off, at serial and parallel thread counts.
  const Dataset ds = invariance_dataset();
  const TrainResult off =
      with_threads(1, [&] { return train_deterministic(ds, 0); });
  for (int t : {1, 4}) {
    const TrainResult on =
        with_threads(t, [&] { return train_deterministic(ds, 8); });
    expect_same_model(off, on, t);
  }
}

// ---------------------------------------------------------------------------
// Prefetch pipeline unit tests (also the TSan targets).

struct PipelineFixture {
  CooMatrix coo;
  AnyMatrix mat;
  FormatKernelEngine engine;

  explicit PipelineFixture(index_t rows = 64, std::uint64_t seed = 0x50u)
      : coo([&] {
          Rng rng(seed);
          return test::random_matrix(rows, 24, 0.3, rng);
        }()),
        mat(AnyMatrix::from_coo(coo, Format::kCSR)),
        engine(mat, KernelParams{}) {}
};

TEST(Pipeline, PrefetchedRowsAreServedAsHits) {
  PipelineFixture fx;
  KernelCache cache(fx.engine, 1u << 20);  // plenty of headroom
  std::vector<index_t> want = {3, 4, 9};
  cache.prefetch(want);
  EXPECT_EQ(cache.prefetched_rows(), 3);

  // First consumer touch drains the worker's buffer; every prefetched row
  // is then a cache hit and a pipeline hit.
  (void)cache.get_row(3);
  (void)cache.get_row(4);
  (void)cache.get_row(9);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_EQ(cache.pipeline_hits(), 3);
  EXPECT_EQ(cache.pipeline_misses(), 0);
  EXPECT_EQ(fx.engine.rows_computed(), 3);
}

TEST(Pipeline, PrefetchedRowMatchesSynchronousRow) {
  PipelineFixture fx;
  std::vector<real_t> direct(static_cast<std::size_t>(fx.engine.num_rows()));
  fx.engine.compute_row(5, direct);

  KernelCache cache(fx.engine, 1u << 20);
  std::vector<index_t> want = {5};
  cache.prefetch(want);
  const auto row = cache.get_row(5);
  test::expect_bit_identical(row, direct);
}

TEST(Pipeline, PrefetchSkipsResidentRows) {
  PipelineFixture fx;
  KernelCache cache(fx.engine, 1u << 20);
  (void)cache.get_row(7);  // synchronous miss -> resident
  std::vector<index_t> want = {7};
  cache.prefetch(want);
  EXPECT_EQ(cache.prefetched_rows(), 0);  // nothing left to prefetch

  std::vector<index_t> mixed = {7, 7, 11, 11};
  cache.prefetch(mixed);  // resident + duplicates filtered
  (void)cache.get_row(11);
  EXPECT_EQ(cache.prefetched_rows(), 1);
  EXPECT_EQ(cache.pipeline_hits(), 1);
}

TEST(Pipeline, TinyCacheDisablesPrefetch) {
  PipelineFixture fx;
  KernelCache cache(fx.engine, 0);  // clamped to the 2-row minimum
  std::vector<index_t> want = {1, 2, 3};
  cache.prefetch(want);
  (void)cache.get_row(1);
  EXPECT_EQ(cache.prefetched_rows(), 0);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(Pipeline, EvictedPrefetchCountsAsPipelineMiss) {
  PipelineFixture fx(32);
  // Budget for exactly 4 rows: 2 of headroom beyond the 2 live SMO rows.
  const std::size_t row_bytes =
      static_cast<std::size_t>(fx.engine.num_rows()) * sizeof(real_t);
  KernelCache cache(fx.engine, 4 * row_bytes);
  std::vector<index_t> want = {20, 21};
  cache.prefetch(want);
  (void)cache.get_row(0);  // drains the prefetch, then computes row 0
  // 20 and 21 are resident but unused; four fresh misses evict them.
  for (index_t i = 1; i <= 4; ++i) (void)cache.get_row(i);
  EXPECT_EQ(cache.pipeline_hits(), 0);
  EXPECT_EQ(cache.pipeline_misses(), 2);
}

TEST(Pipeline, HammeredPrefetchStaysConsistent) {
  // TSan target: the consumer thread issues interleaved prefetches and
  // gets while a reader thread spins on every atomic counter. Run under
  // LS_SANITIZE=thread this is the pipeline's data-race regression test.
  PipelineFixture fx(96);
  KernelCache cache(fx.engine, 1u << 20);
  std::atomic<bool> stop{false};
  std::int64_t observed_rows = 0;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      observed_rows = fx.engine.rows_computed();
      (void)cache.hits();
      (void)cache.misses();
      (void)cache.prefetched_rows();
      (void)cache.pipeline_hits();
      (void)cache.pipeline_misses();
    }
  });

  Rng rng(0x51u);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<index_t> want(static_cast<std::size_t>(rng.uniform_int(1, 6)));
    for (auto& r : want) r = rng.uniform_int(0, 95);
    cache.prefetch(want);
    (void)cache.get_row(rng.uniform_int(0, 95));
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Every row the cache ever served was computed exactly once somewhere.
  EXPECT_GT(fx.engine.rows_computed(), 0);
  EXPECT_GE(fx.engine.rows_computed(), observed_rows);
  EXPECT_EQ(cache.hits() + cache.misses(), 300);
  EXPECT_LE(cache.pipeline_hits() + cache.pipeline_misses(),
            cache.prefetched_rows());
}

TEST(Pipeline, DestructorJoinsInFlightWorker) {
  PipelineFixture fx(48);
  for (int round = 0; round < 10; ++round) {
    KernelCache cache(fx.engine, 1u << 20);
    std::vector<index_t> want = {1, 2, 3, 4, 5};
    cache.prefetch(want);
    // Destroyed with the prefetch possibly still in flight — must join
    // cleanly, never crash or leak (ASan/TSan verify).
  }
}

TEST(Pipeline, SolverStatsExposePipelineCounters) {
  const Dataset ds = [&] {
    Rng rng(0x52u);
    Dataset d;
    d.name = "pipeline-stats";
    d.X = test::random_matrix(200, 30, 0.2, rng);
    d.y = plant_labels(d.X, 0.1, 3);
    return d;
  }();
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.5;
  params.max_iterations = 200;
  params.prefetch_rows = 6;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  EXPECT_GE(r.stats.pipeline_hits, 0);
  EXPECT_GE(r.stats.pipeline_misses, 0);
  // Without the pipeline the counters must stay zero.
  params.prefetch_rows = 0;
  const TrainResult off = train_fixed_format(ds, params, Format::kCSR);
  EXPECT_EQ(off.stats.pipeline_hits, 0);
  EXPECT_EQ(off.stats.pipeline_misses, 0);
}

TEST(Pipeline, AtomicRowsComputedAcrossBatchAndSingle) {
  PipelineFixture fx(40);
  EXPECT_EQ(fx.engine.rows_computed(), 0);
  std::vector<real_t> out(static_cast<std::size_t>(fx.engine.num_rows()) * 3);
  std::vector<index_t> rows = {1, 2, 3};
  fx.engine.compute_rows(rows, out);
  EXPECT_EQ(fx.engine.rows_computed(), 3);
  fx.engine.compute_row(
      4, std::span<real_t>(out.data(),
                           static_cast<std::size_t>(fx.engine.num_rows())));
  EXPECT_EQ(fx.engine.rows_computed(), 4);
}

}  // namespace
