// Tests for the net-spec parser, the confusion-matrix metrics and the SMO
// convergence trace hook.
#include <gtest/gtest.h>

#include "data/profiles.hpp"
#include "dnn/metrics.hpp"
#include "dnn/net_spec.hpp"
#include "dnn/trainer.hpp"
#include "svm/trainer.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

// --------------------------------------------------------- net specs

TEST(NetSpec, BuildsCifar10FullIdenticalToFactory) {
  Rng rng_a(0xA1), rng_b(0xA1);
  Net factory = make_cifar10_full(10, 3, 32, rng_a);
  Net parsed = build_net_from_spec(cifar10_full_spec(10), 3, 32, rng_b);

  EXPECT_EQ(parsed.num_layers(), factory.num_layers());
  EXPECT_DOUBLE_EQ(parsed.flops_per_sample(), factory.flops_per_sample());
  EXPECT_EQ(parsed.num_parameters(), factory.num_parameters());

  // Same RNG consumption order -> identical outputs on identical input.
  Rng data_rng(0xA2);
  Tensor in(1, 3, 32, 32);
  for (index_t i = 0; i < in.size(); ++i) in[i] = data_rng.uniform(-1, 1);
  const Tensor& out_a = factory.forward(in);
  const Tensor& out_b = parsed.forward(in);
  for (index_t i = 0; i < out_a.size(); ++i) {
    ASSERT_NEAR(out_a[i], out_b[i], 1e-12);
  }
}

TEST(NetSpec, InfersShapesThroughTheStack) {
  Rng rng(0xA3);
  Net net = build_net_from_spec(
      "conv:4,3,1\nmaxpool:2,2\nrelu\nlinear:5\n", 1, 8, rng);
  Tensor in(2, 1, 8, 8);
  const Tensor& logits = net.forward(in);
  EXPECT_EQ(logits.sample_size(), 5);
}

TEST(NetSpec, SupportsGemmConvAndComments) {
  Rng rng(0xA4);
  Net net = build_net_from_spec(
      "# a comment line\n"
      "conv_gemm:4,3,1   # trailing comment\n"
      "\n"
      "relu\nlinear:3\n",
      2, 6, rng);
  EXPECT_EQ(net.num_layers(), 3);
  Tensor in(1, 2, 6, 6);
  net.forward(in);
}

TEST(NetSpec, LrnDefaultsAndExplicitArgs) {
  Rng rng(0xA5);
  Net a = build_net_from_spec("lrn\nlinear:2\n", 4, 4, rng);
  Net b = build_net_from_spec("lrn:3,5e-5,0.75,1\nlinear:2\n", 4, 4, rng);
  Tensor in(1, 4, 4, 4);
  in.fill(0.5);
  const Tensor& oa = a.forward(in);
  const Tensor& ob = b.forward(in);
  // Identical LRN parameters, but independent Linear inits — compare the
  // layer count and shape only.
  EXPECT_EQ(oa.size(), ob.size());
}

TEST(NetSpec, RejectsMalformedSpecs) {
  Rng rng(0xA6);
  EXPECT_THROW(build_net_from_spec("", 1, 8, rng), Error);
  EXPECT_THROW(build_net_from_spec("warp:1\n", 1, 8, rng), Error);
  EXPECT_THROW(build_net_from_spec("conv:abc,3\n", 1, 8, rng), Error);
  EXPECT_THROW(build_net_from_spec("conv:4\n", 1, 8, rng), Error);  // no k
  EXPECT_THROW(build_net_from_spec("linear:0\n", 1, 8, rng), Error);
  // Shape misfit: pooling an 8x8 input down twice then pooling by 8 fails.
  EXPECT_THROW(build_net_from_spec(
                   "maxpool:2,2\nmaxpool:2,2\nmaxpool:8,8\nlinear:2\n", 1, 8,
                   rng),
               Error);
}

// ----------------------------------------------------------- metrics

TEST(Metrics, ConfusionMatrixHandValues) {
  ConfusionMatrix cm;
  cm.classes = 2;
  cm.counts = {8, 2,   // true 0: 8 right, 2 wrong
               1, 9};  // true 1: 1 wrong, 9 right
  EXPECT_EQ(cm.total(), 20);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 17.0 / 20.0);
  const auto recall = cm.recall();
  EXPECT_DOUBLE_EQ(recall[0], 0.8);
  EXPECT_DOUBLE_EQ(recall[1], 0.9);
  const auto precision = cm.precision();
  EXPECT_DOUBLE_EQ(precision[0], 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(precision[1], 9.0 / 11.0);
  EXPECT_NE(cm.to_string().find("true\\pred"), std::string::npos);
}

TEST(Metrics, EvaluateConfusionAgreesWithAccuracy) {
  CifarConfig cfg;
  cfg.classes = 3;
  cfg.dim = 8;
  cfg.train_size = 96;
  cfg.test_size = 48;
  cfg.noise = 0.4;
  const CifarData data = make_synthetic_cifar(cfg);
  Rng rng(0xA7);
  Net net = make_cifar10_small(3, 3, 8, rng);
  DnnTrainConfig tc;
  tc.batch_size = 16;
  tc.learning_rate = 0.05;
  tc.max_epochs = 3;
  train_dnn(net, data, tc);

  const ConfusionMatrix cm = evaluate_confusion(net, data.test);
  EXPECT_EQ(cm.total(), data.test.size());
  EXPECT_NEAR(cm.accuracy(), evaluate(net, data.test), 1e-12);
}

// ---------------------------------------------------------- SMO trace

TEST(SmoTrace, GapShrinksAndObjectiveGrows) {
  Rng rng(0xA8);
  Dataset ds;
  ds.name = "trace";
  ds.X = test::random_matrix(60, 8, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.05, 50);

  std::vector<IterationTrace> traces;
  SvmParams params;
  params.on_trace = [&](const IterationTrace& t) { traces.push_back(t); };
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  ASSERT_TRUE(r.stats.converged);
  ASSERT_GE(traces.size(), 3u);

  // Dual objective is non-decreasing (each analytic step improves it).
  for (std::size_t k = 1; k < traces.size(); ++k) {
    EXPECT_GE(traces[k].objective, traces[k - 1].objective - 1e-9);
  }
  // The optimality gap ends below the start and under 2 * tolerance + eps.
  EXPECT_LT(traces.back().gap(), traces.front().gap());
  // Iterations are labelled 1..N.
  EXPECT_EQ(traces.front().iteration, 1);
  EXPECT_EQ(traces.back().iteration,
            static_cast<index_t>(traces.size()));
}

TEST(SmoTrace, IntervalThinsTheTrace) {
  Rng rng(0xA9);
  Dataset ds;
  ds.name = "thin";
  ds.X = test::random_matrix(50, 6, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.05, 51);
  index_t calls = 0;
  SvmParams params;
  params.on_trace = [&](const IterationTrace&) { ++calls; };
  params.trace_interval = 10;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  EXPECT_LE(calls, r.stats.iterations / 10 + 1);
}

TEST(GemmNetFactory, TrainsLikeTheNaiveVariant) {
  CifarConfig cfg;
  cfg.classes = 2;
  cfg.dim = 8;
  cfg.train_size = 64;
  cfg.test_size = 32;
  cfg.noise = 0.3;
  const CifarData data = make_synthetic_cifar(cfg);
  DnnTrainConfig tc;
  tc.batch_size = 16;
  tc.learning_rate = 0.05;
  tc.max_epochs = 3;

  Rng rng_a(0xAA), rng_b(0xAA);
  Net naive = make_cifar10_small(2, 3, 8, rng_a, /*gemm_conv=*/false);
  Net gemm = make_cifar10_small(2, 3, 8, rng_b, /*gemm_conv=*/true);
  const DnnTrainResult ra = train_dnn(naive, data, tc);
  const DnnTrainResult rb = train_dnn(gemm, data, tc);
  // Identical math, identical shuffling: identical trajectories.
  EXPECT_NEAR(ra.final_train_loss, rb.final_train_loss, 1e-6);
  EXPECT_DOUBLE_EQ(ra.test_accuracy, rb.test_accuracy);
}

}  // namespace
}  // namespace ls
