// Observability suite: metrics registry semantics (counters, gauges, timer
// histograms, annotations, cross-thread aggregation, disabled no-op), trace
// recorder + chrome://tracing schema, JSON/CSV export well-formedness with
// a real adaptive SVM training run as the golden source, the tool-side
// ObservabilityScope wiring, and the correctness fixes riding along in this
// change (CLI trailing-garbage rejection, infinity sentinels in stats.hpp,
// CsvWriter stream checking).

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/observability.hpp"
#include "common/stats.hpp"
#include "common/trace.hpp"
#include "data/profiles.hpp"
#include "svm/trainer.hpp"

namespace ls {
namespace {

std::string tmp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "ls_obs_" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Minimal recursive-descent JSON syntax checker. Validates that the input
// is exactly one well-formed JSON value — enough to guarantee any real
// parser accepts our exports (the acceptance bar for the report files).
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    c.ws();
    if (!c.value()) return false;
    c.ws();
    return c.pos_ == s.size();
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  bool eat(char c) {
    if (eof() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (eof()) return false;
        const char e = s_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
              return false;
            ++pos_;
          }
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    eat('-');
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }
  bool members(char close, bool with_keys) {
    ws();
    if (eat(close)) return true;
    while (true) {
      ws();
      if (with_keys) {
        if (!string()) return false;
        ws();
        if (!eat(':')) return false;
        ws();
      }
      if (!value()) return false;
      ws();
      if (eat(close)) return true;
      if (!eat(',')) return false;
    }
  }
  bool value() {
    if (eof()) return false;
    const char c = peek();
    if (c == '{') { ++pos_; return members('}', true); }
    if (c == '[') { ++pos_; return members(']', false); }
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Each test owns the process-wide registries: start clean, leave clean.
class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::set_enabled(false);
    trace::set_enabled(false);
    metrics::reset();
    trace::reset();
  }
  void TearDown() override { SetUp(); }
};

// ------------------------------------------------------- metrics registry

TEST_F(ObservabilityTest, DisabledRecordingIsANoOp) {
  ASSERT_FALSE(metrics::enabled());
  metrics::counter_add("noop.counter_total", 7);
  metrics::gauge_set("noop.gauge", 1.0);
  metrics::timer_record("noop.timer_seconds", 0.5);
  metrics::annotate("noop.note", "x");
  { metrics::ScopedTimer t("noop.scope_seconds"); }
  const metrics::Report r = metrics::snapshot();
  EXPECT_TRUE(r.counters.empty());
  EXPECT_TRUE(r.gauges.empty());
  EXPECT_TRUE(r.timers.empty());
  EXPECT_TRUE(r.annotations.empty());
}

TEST_F(ObservabilityTest, CountersAccumulateAndMergeAcrossThreads) {
  metrics::set_enabled(true);
  metrics::counter_add("test.hits_total");
  metrics::counter_add("test.hits_total", 4);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics::counter_add("test.threaded_total");
      }
    });
  }
  for (auto& w : workers) w.join();

  const metrics::Report r = metrics::snapshot();
  EXPECT_EQ(r.counters.at("test.hits_total"), 5);
  EXPECT_EQ(r.counters.at("test.threaded_total"), kThreads * kPerThread);
}

TEST_F(ObservabilityTest, TimerStatsOnKnownSamples) {
  metrics::set_enabled(true);
  // 1ms .. 100ms in 1ms steps: every aggregate is known in closed form.
  for (int i = 1; i <= 100; ++i) {
    metrics::timer_record("test.step_seconds", i * 1e-3);
  }
  const metrics::Report r = metrics::snapshot();
  const metrics::TimerStats& s = r.timers.at("test.step_seconds");
  EXPECT_EQ(s.count, 100);
  EXPECT_NEAR(s.total, 5.05, 1e-9);
  EXPECT_NEAR(s.min, 0.001, 1e-9);
  EXPECT_NEAR(s.max, 0.100, 1e-9);
  EXPECT_NEAR(s.mean, 0.0505, 1e-9);
  EXPECT_NEAR(s.p50, 0.050, 2e-3);
  EXPECT_NEAR(s.p95, 0.095, 2e-3);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.max);
}

TEST_F(ObservabilityTest, GaugesLastWriteWinsAndAnnotations) {
  metrics::set_enabled(true);
  metrics::gauge_set("test.gauge", 1.0);
  metrics::gauge_set("test.gauge", 2.5);
  metrics::annotate("test.note", "first");
  metrics::annotate("test.note", "second");
  const metrics::Report r = metrics::snapshot();
  EXPECT_DOUBLE_EQ(r.gauges.at("test.gauge"), 2.5);
  EXPECT_EQ(r.annotations.at("test.note"), "second");
}

TEST_F(ObservabilityTest, ScopedTimerArmsAtConstruction) {
  metrics::set_enabled(true);
  {
    metrics::ScopedTimer t("test.armed_seconds");
    // Disabling mid-scope must not lose the armed sample.
    metrics::set_enabled(false);
  }
  {
    // Constructed while disabled: never records, even if enabled later.
    metrics::ScopedTimer t("test.unarmed_seconds");
    metrics::set_enabled(true);
  }
  const metrics::Report r = metrics::snapshot();
  EXPECT_EQ(r.timers.count("test.armed_seconds"), 1u);
  EXPECT_EQ(r.timers.count("test.unarmed_seconds"), 0u);
}

TEST_F(ObservabilityTest, ResetClearsEverything) {
  metrics::set_enabled(true);
  metrics::counter_add("test.c_total");
  metrics::gauge_set("test.g", 1.0);
  metrics::timer_record("test.t_seconds", 0.1);
  metrics::annotate("test.a", "v");
  metrics::reset();
  const metrics::Report r = metrics::snapshot();
  EXPECT_TRUE(r.counters.empty());
  EXPECT_TRUE(r.gauges.empty());
  EXPECT_TRUE(r.timers.empty());
  EXPECT_TRUE(r.annotations.empty());
}

// --------------------------------------------------------- JSON rendering

TEST(JsonUtil, QuoteEscapesEverythingHostile) {
  EXPECT_EQ(json::quote("plain"), "\"plain\"");
  EXPECT_EQ(json::quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json::quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json::quote(std::string("nul\0byte", 8)), "\"nul\\u0000byte\"");
  EXPECT_TRUE(JsonChecker::valid(json::quote("ctrl\x01\x1f mix\n")));
}

TEST(JsonUtil, NumberRendersNonFiniteAsNull) {
  EXPECT_EQ(json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_TRUE(JsonChecker::valid(json::number(0.1)));
  EXPECT_TRUE(JsonChecker::valid(json::number(-2.5e300)));
}

TEST_F(ObservabilityTest, ReportJsonIsWellFormedUnderHostileNames) {
  metrics::set_enabled(true);
  metrics::counter_add("weird\"name\\with\nescapes_total", 3);
  metrics::gauge_set("test.nan_gauge",
                     std::numeric_limits<double>::quiet_NaN());
  metrics::timer_record("test.t_seconds", 0.25);
  metrics::annotate("test.note", "value with \"quotes\" and\ttabs");
  const std::string js = metrics::to_json(metrics::snapshot());
  EXPECT_TRUE(JsonChecker::valid(js)) << js;
  EXPECT_NE(js.find("ls.metrics.v1"), std::string::npos);
  // NaN gauge must degrade to null, not poison the document.
  EXPECT_NE(js.find("null"), std::string::npos);
}

TEST_F(ObservabilityTest, ReportCsvHasStableHeaderAndRows) {
  metrics::set_enabled(true);
  metrics::counter_add("test.c_total", 2);
  metrics::timer_record("test.t_seconds", 0.5);
  const std::string csv = metrics::to_csv(metrics::snapshot());
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "kind,name,value,count,total,min,mean,p50,p95,max");
  EXPECT_NE(csv.find("counter,test.c_total,2"), std::string::npos);
  EXPECT_NE(csv.find("timer,test.t_seconds,"), std::string::npos);
  // Both clocks of the snapshot ride along as rows.
  EXPECT_NE(csv.find("clock,wall_us,"), std::string::npos);
  EXPECT_NE(csv.find("clock,steady_us,"), std::string::npos);
}

TEST_F(ObservabilityTest, ReportCarriesWallAndSteadyClocks) {
  metrics::set_enabled(true);
  const metrics::Report report = metrics::snapshot();
  // Wall time is epoch micros (sanity: after 2020-01-01, before 2100);
  // steady time is monotonic and positive.
  EXPECT_GT(report.wall_us, 1.5778e15);
  EXPECT_LT(report.wall_us, 4.1025e15);
  EXPECT_GT(report.steady_us, 0.0);
  const std::string js = metrics::to_json(report);
  EXPECT_TRUE(JsonChecker::valid(js)) << js;
  EXPECT_NE(js.find("\"clock\""), std::string::npos);
  EXPECT_NE(js.find("\"wall_us\""), std::string::npos);
  EXPECT_NE(js.find("\"steady_us\""), std::string::npos);
  // Two snapshots must never run backwards on the steady axis, whatever
  // the wall clock does in between (the §17 no-time-travel contract).
  const metrics::Report later = metrics::snapshot();
  EXPECT_GE(later.steady_us, report.steady_us);
}

// ----------------------------------------------------------------- trace

TEST_F(ObservabilityTest, TraceChromeJsonSchema) {
  trace::set_enabled(true);
  {
    trace::ScopedEvent span("unit.span", "test");
    span.arg("key", "value \"quoted\"");
  }
  trace::emit_counter("unit.series", 42.0);
  trace::emit_instant("unit.marker", "test");
  EXPECT_EQ(trace::event_count(), 3u);
  EXPECT_EQ(trace::dropped_count(), 0u);

  const std::string js = trace::to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(js)) << js;
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(js.find("\"pid\""), std::string::npos);
  EXPECT_NE(js.find("\"tid\""), std::string::npos);
  EXPECT_NE(js.find("\"unit.span\""), std::string::npos);
  // The wall anchor pins the steady timebase to real time so traces from
  // a crash/restart pair order correctly.
  EXPECT_NE(js.find("\"otherData\""), std::string::npos);
  EXPECT_NE(js.find("\"wall_anchor_us\""), std::string::npos);
  EXPECT_GT(trace::wall_anchor_us(), 1.5778e15);
}

TEST_F(ObservabilityTest, TraceCsvFlavour) {
  trace::set_enabled(true);
  trace::emit_counter("unit.series", 1.5);
  const std::string csv = trace::to_csv();
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "phase,name,cat,ts_us,wall_us,dur_us,value,tid,args");
  EXPECT_NE(csv.find("C,unit.series,counter,"), std::string::npos);
}

TEST_F(ObservabilityTest, TraceDisabledRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  trace::emit_counter("noop.series", 1.0);
  { trace::ScopedEvent span("noop.span", "test"); }
  EXPECT_EQ(trace::event_count(), 0u);
}

// ------------------------------------------------ golden SVM training run

TEST_F(ObservabilityTest, AdaptiveTrainExportsDecisionProvenance) {
  metrics::set_enabled(true);
  trace::set_enabled(true);

  const Dataset ds = profile_by_name("breast_cancer").generate(7);
  SvmParams params;
  params.max_iterations = 2000;
  const TrainResult result = train_adaptive(ds, params);
  ASSERT_GT(result.stats.iterations, 0);

  const std::string path = tmp_path("svm_run.json");
  metrics::write_json(path);
  const std::string js = read_raw(path);
  ASSERT_FALSE(js.empty());
  EXPECT_TRUE(JsonChecker::valid(js)) << "export not parseable JSON";

  const metrics::Report r = metrics::snapshot();
  // SMO progress.
  EXPECT_EQ(r.counters.at("svm.smo.iterations_total"),
            result.stats.iterations);
  // Kernel-cache effectiveness.
  const double hit_rate = r.gauges.at("svm.cache.hit_rate");
  EXPECT_GE(hit_rate, 0.0);
  EXPECT_LE(hit_rate, 1.0);
  EXPECT_TRUE(r.counters.count("svm.cache.hits_total"));
  // Total wall time.
  EXPECT_TRUE(r.timers.count("svm.train.total_seconds"));
  EXPECT_GT(r.timers.at("svm.train.total_seconds").total, 0.0);
  // Scheduler decision provenance: chosen format + per-candidate scores.
  EXPECT_EQ(r.annotations.at("sched.chosen_format"),
            format_name(result.decision.format));
  EXPECT_TRUE(r.counters.count("sched.decisions_total"));
  bool has_score = false;
  for (const auto& [name, value] : r.gauges) {
    if (name.rfind("sched.score_seconds.", 0) == 0) {
      has_score = true;
      EXPECT_GT(value, 0.0) << name;
    }
  }
  EXPECT_TRUE(has_score) << "no per-candidate probe scores recorded";
  // Probe timings feed the timer histograms too.
  bool has_probe_timer = false;
  for (const auto& [name, stats] : r.timers) {
    if (name.rfind("sched.probe_seconds.", 0) == 0) {
      has_probe_timer = true;
      EXPECT_GT(stats.count, 0) << name;
    }
  }
  EXPECT_TRUE(has_probe_timer);
  // All of it must appear in the exported document as well.
  EXPECT_NE(js.find("svm.smo.iterations_total"), std::string::npos);
  EXPECT_NE(js.find("sched.chosen_format"), std::string::npos);
  EXPECT_NE(js.find("svm.cache.hit_rate"), std::string::npos);

  // The trace should have the autotune + solve spans.
  const std::string trace_js = trace::to_chrome_json();
  EXPECT_TRUE(JsonChecker::valid(trace_js));
  EXPECT_NE(trace_js.find("\"smo.solve\""), std::string::npos);
  EXPECT_NE(trace_js.find("\"decide\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObservabilityTest, WriteReportPicksFormatFromExtension) {
  metrics::set_enabled(true);
  metrics::counter_add("test.c_total");
  const std::string json_path = tmp_path("report.json");
  const std::string csv_path = tmp_path("report.csv");
  metrics::write_report(json_path);
  metrics::write_report(csv_path);
  EXPECT_TRUE(JsonChecker::valid(read_raw(json_path)));
  EXPECT_EQ(read_raw(csv_path).rfind(
                "kind,name,value,count,total,min,mean,p50,p95,max", 0),
            0u);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST_F(ObservabilityTest, ObservabilityScopeWiresFlagsToExports) {
  const std::string mpath = tmp_path("scope_metrics.json");
  const std::string tpath = tmp_path("scope_trace.json");
  {
    CliParser cli("prog", "test");
    add_observability_flags(cli);
    const std::string marg = "--metrics-out=" + mpath;
    const std::string targ = "--trace-out=" + tpath;
    const char* argv[] = {"prog", marg.c_str(), targ.c_str()};
    ASSERT_TRUE(cli.parse(3, argv));
    const ObservabilityScope scope(cli);
    EXPECT_TRUE(metrics::enabled());
    EXPECT_TRUE(trace::enabled());
    metrics::counter_add("test.scope_total");
    trace::emit_instant("test.marker", "test");
  }
  EXPECT_TRUE(JsonChecker::valid(read_raw(mpath)));
  EXPECT_TRUE(JsonChecker::valid(read_raw(tpath)));
  EXPECT_NE(read_raw(mpath).find("test.scope_total"), std::string::npos);
  std::remove(mpath.c_str());
  std::remove(tpath.c_str());
}

// --------------------------------------------- satellite correctness fixes

TEST(CliStrict, RejectsTrailingGarbageWithFlagName) {
  CliParser cli("prog", "test");
  cli.add_flag("c", "1.0", "penalty");
  cli.add_flag("iters", "100", "iterations");
  const char* argv[] = {"prog", "--c", "1.5x", "--iters", "12abc"};
  ASSERT_TRUE(cli.parse(5, argv));
  try {
    cli.get_double("c");
    FAIL() << "expected Error for --c 1.5x";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("c"), std::string::npos);
  }
  try {
    cli.get_int("iters");
    FAIL() << "expected Error for --iters 12abc";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("iters"), std::string::npos);
  }
}

TEST(CliStrict, StillAcceptsCleanNumbers) {
  CliParser cli("prog", "test");
  cli.add_flag("c", "1.0", "penalty");
  cli.add_flag("iters", "100", "iterations");
  const char* argv[] = {"prog", "--c", "1.5", "--iters", "12"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("c"), 1.5);
  EXPECT_EQ(cli.get_int("iters"), 12);
}

TEST(StatsSentinels, EmptyRangesReturnInfinities) {
  const std::vector<double> empty;
  EXPECT_EQ(min_value(empty), std::numeric_limits<double>::infinity());
  EXPECT_EQ(max_value(empty), -std::numeric_limits<double>::infinity());
  const std::vector<double> xs = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 3.0);
  // Values beyond the old ±1e300 sentinels are now handled correctly.
  const std::vector<double> huge = {1e301, -1e301};
  EXPECT_DOUBLE_EQ(min_value(huge), -1e301);
  EXPECT_DOUBLE_EQ(max_value(huge), 1e301);
}

TEST(CsvWriterChecks, WriteAfterCloseFailsLoudly) {
  const std::string path = tmp_path("csv_close.csv");
  CsvWriter csv(path, {"a", "b"});
  csv.write_row({"1", "2"});
  csv.close();
  csv.close();  // idempotent
  EXPECT_THROW(csv.write_row({"3", "4"}), Error);
  std::remove(path.c_str());
}

TEST(CsvWriterChecks, FullDiskSurfacesAsError) {
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  auto csv = std::make_unique<CsvWriter>("/dev/full",
                                         std::vector<std::string>{"a"});
  try {
    // The stream buffers, so the failure may surface on a later write_row
    // or at close(); either way it must be an Error, not silence.
    for (int i = 0; i < 100000; ++i) {
      csv->write_row({"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"});
    }
    csv->close();
    FAIL() << "writing to /dev/full should have thrown";
  } catch (const Error&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace ls
