// Tests of the online serving-side layout rescheduler: the shared switch
// policy, cost-model arm priors, bandit convergence, the atomic swap's
// value stability under concurrent traffic, the max-switch budget and the
// failed-re-materialisation recovery path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "data/features.hpp"
#include "sched/cost_model.hpp"
#include "sched/learned.hpp"
#include "serve/engine.hpp"
#include "serve/rescheduler.hpp"
#include "svm/reschedule.hpp"
#include "svm/serialize.hpp"

namespace ls::serve {
namespace {

/// Hand-built Gaussian model over `d` features (mirrors test_serve.cpp).
SvmModel make_model(index_t n_sv, index_t d, std::uint64_t seed) {
  Rng rng(seed);
  SvmModel model;
  model.kernel.type = KernelType::kGaussian;
  model.kernel.gamma = 0.5;
  model.rho = 0.0;
  model.num_features = d;
  for (index_t s = 0; s < n_sv; ++s) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(0.3)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    model.support_vectors.emplace_back(std::move(idx), std::move(val));
    model.coef.push_back(s % 2 == 0 ? 1.0 : -1.0);
  }
  return model;
}

std::vector<SparseVector> make_requests(index_t count, index_t d,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SparseVector> rows;
  for (index_t r = 0; r < count; ++r) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(0.3)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    rows.emplace_back(std::move(idx), std::move(val));
  }
  return rows;
}

std::string temp_model_path(const std::string& name) {
  return ::testing::TempDir() + "ls_resched_" + name;
}

SchedulerOptions fixed_csr() {
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  sched.fixed_format = Format::kCSR;
  return sched;
}

/// Deterministic policy for tests: the background thread is effectively
/// dormant (huge interval — tests call tick() directly), exploration is
/// off so arm values are exactly means/priors, and hysteresis is zero.
ReschedulerOptions test_policy() {
  ReschedulerOptions r;
  r.enabled = true;
  r.interval_ms = 3600.0 * 1000.0;
  r.min_observations = 4;
  r.switch_threshold = 1.1;
  r.max_switches = 8;
  r.hysteresis_ms = 0.0;
  r.ucb_exploration = 0.0;
  return r;
}

/// Installs a CSR-layout model named "m" into `reg` and returns it.
std::shared_ptr<const LoadedModel> host_model(ModelRegistry& reg,
                                              const std::string& tag) {
  const std::string path = temp_model_path(tag);
  save_model_file(path, make_model(8, 16, 0x5EED));
  const LoadTicket t = reg.reserve_load("m");
  auto loaded = std::make_shared<LoadedModel>("m", path, fixed_csr(), 8,
                                              t.version, t.content_gen);
  EXPECT_TRUE(reg.put_if_newer(loaded));
  return loaded;
}

// --- shared switch-decision policy ---------------------------------------

TEST(Rescheduler, DecisivelyBetterIsTheSharedSwitchGate) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Exactly at the margin switches; just under it does not.
  EXPECT_TRUE(decisively_better(1.2, 1.0, 1.2));
  EXPECT_FALSE(decisively_better(1.19, 1.0, 1.2));
  // A current format that was never viable always loses to a finite best.
  EXPECT_TRUE(decisively_better(kInf, 1.0, 1.2));
  // A non-finite best is never worth switching to.
  EXPECT_FALSE(decisively_better(1.0, kInf, 1.2));
  EXPECT_FALSE(decisively_better(kInf, kInf, 1.2));
}

// --- cost-model arm priors -----------------------------------------------

TEST(Rescheduler, CostModelSeedsEveryArmWithAFinitePrior) {
  const SvmModel model = make_model(8, 16, 0xA11);
  const MatrixFeatures feat =
      extract_features(support_vector_matrix(model));
  const auto priors =
      predicted_arm_priors(feat, CostCalibration::instance());
  for (Format f : kExtendedFormats) {
    const double p = priors[static_cast<std::size_t>(f)];
    EXPECT_TRUE(std::isfinite(p)) << format_name(f);
    // A zero prior would read as "this layout is free" and win every
    // bandit comparison — the seeding must cover all nine arms.
    EXPECT_GT(p, 0.0) << format_name(f);
  }
}

// --- bandit convergence + swap -------------------------------------------

TEST(Rescheduler, SwitchesToDecisivelyFasterMeasuredArm) {
  TelemetryIngest::instance().clear();
  ModelRegistry reg;
  const auto first = host_model(reg, "converge.txt");
  LayoutRescheduler rs(reg, 8, test_policy());

  // CSR (the current layout) measures slow; ELL measures far below any
  // plausible cost-model prior, so the bandit's best arm is deterministic.
  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 8 * 1e-3);
    rs.observe_arm("m", first->content_gen, Format::kELL, 8, 8 * 1e-15);
  }
  rs.tick();

  EXPECT_EQ(rs.reschedules_total(), 1);
  const auto swapped = reg.get("m");
  ASSERT_NE(swapped, nullptr);
  EXPECT_EQ(swapped->predictor.layout(), Format::kELL);
  EXPECT_GT(swapped->version, first->version);
  EXPECT_EQ(rs.preferred("m").value(), Format::kELL);

  // The swap changes layout only: same kernel, coefficients and rho.
  EXPECT_EQ(swapped->model.support_vectors.size(),
            first->model.support_vectors.size());
  EXPECT_EQ(swapped->model.rho, first->model.rho);

  // The measured arms fed the selector-v2 telemetry sink, and two observed
  // formats for one signature is enough to harvest a training example.
  EXPECT_GE(TelemetryIngest::instance().observations(), 2u);
  EXPECT_GE(TelemetryIngest::instance().harvest().size(), 1u);

  // Stats expose both arms with their pulls.
  const auto stats = rs.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].model, "m");
  EXPECT_EQ(stats[0].current, Format::kELL);
  EXPECT_EQ(stats[0].switches, 1);
  std::int64_t csr_pulls = 0;
  for (const ArmStats& a : stats[0].arms) {
    if (a.format == Format::kCSR) csr_pulls = a.pulls;
  }
  EXPECT_EQ(csr_pulls, 8);
}

TEST(Rescheduler, InsufficientObservationsNeverSwitch) {
  ModelRegistry reg;
  const auto first = host_model(reg, "minobs.txt");
  LayoutRescheduler rs(reg, 8, test_policy());

  // Only 3 pulls on the current arm with min_observations = 4: however
  // bad the measurements look, the bandit may not judge it yet.
  for (int i = 0; i < 3; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 8 * 1e-3);
    rs.observe_arm("m", first->content_gen, Format::kELL, 8, 8 * 1e-15);
  }
  rs.tick();
  EXPECT_EQ(rs.reschedules_total(), 0);
  EXPECT_EQ(reg.get("m")->predictor.layout(), Format::kCSR);
}

TEST(Rescheduler, MaxSwitchBudgetCapsOnlineSwaps) {
  ModelRegistry reg;
  const auto first = host_model(reg, "budget.txt");
  ReschedulerOptions opts = test_policy();
  opts.max_switches = 1;
  LayoutRescheduler rs(reg, 8, opts);

  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 8 * 1e-3);
    rs.observe_arm("m", first->content_gen, Format::kELL, 8, 8 * 1e-15);
  }
  rs.tick();
  ASSERT_EQ(rs.reschedules_total(), 1);
  const auto after_first = reg.get("m");
  EXPECT_EQ(after_first->predictor.layout(), Format::kELL);

  // ELL now measures terribly and COO looks decisively better — but the
  // per-model budget is spent, so the layout must stay put.
  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", after_first->content_gen, Format::kELL, 8, 8 * 1e-2);
    rs.observe_arm("m", after_first->content_gen, Format::kCOO, 8, 8 * 1e-15);
  }
  rs.tick();
  EXPECT_EQ(rs.reschedules_total(), 1);
  EXPECT_EQ(reg.get("m")->predictor.layout(), Format::kELL);
  EXPECT_EQ(reg.get("m")->version, after_first->version);
}

TEST(Rescheduler, FailedMaterializationLeavesLastGoodServing) {
  ModelRegistry reg;
  const auto first = host_model(reg, "matfail.txt");
  LayoutRescheduler rs(reg, 8, test_policy());

  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 8 * 1e-3);
    rs.observe_arm("m", first->content_gen, Format::kELL, 8, 8 * 1e-15);
  }
  {
    // The re-materialisation build blows up: the swap must not happen and
    // the last-good layout keeps serving.
    failpoint::Scoped broken("serve.reschedule.materialize");
    rs.tick();
  }
  EXPECT_EQ(rs.reschedules_total(), 0);
  EXPECT_EQ(rs.reschedule_failures_total(), 1);
  const auto still = reg.get("m");
  ASSERT_NE(still, nullptr);
  EXPECT_EQ(still.get(), first.get());
  EXPECT_EQ(still->predictor.layout(), Format::kCSR);
  // The model still scores.
  EXPECT_TRUE(std::isfinite(still->model.decision(SparseVector({0}, {1.0}))));

  // Once the fault clears, the next pass retries and succeeds (hysteresis
  // is zero in the test policy; in production the failure backs off one
  // dwell window).
  rs.tick();
  EXPECT_EQ(rs.reschedules_total(), 1);
  EXPECT_EQ(reg.get("m")->predictor.layout(), Format::kELL);
}

TEST(Rescheduler, SwapLosesToConcurrentHotReload) {
  ModelRegistry reg;
  const auto first = host_model(reg, "lostrace.txt");
  LayoutRescheduler rs(reg, 8, test_policy());

  // Simulate a hot reload finishing while the rescheduler would be
  // re-materialising: once the hosted entry moved on, the stale layout
  // build must be dropped by the compare-and-swap.
  const std::int64_t v2 = reg.reserve_version("m");
  auto reloaded = std::make_shared<const LoadedModel>(*first, Format::kCSR,
                                                      8, v2);
  ASSERT_TRUE(reg.replace_if_current(first.get(), reloaded));

  auto stale = std::make_shared<const LoadedModel>(*first, Format::kELL, 8,
                                                   reg.reserve_version("m"));
  EXPECT_FALSE(reg.replace_if_current(first.get(), std::move(stale)));
  EXPECT_EQ(reg.get("m").get(), reloaded.get());
}

TEST(Rescheduler, ReloadNeverLosesToConcurrentRelayoutOfOldContent) {
  ModelRegistry reg;
  const auto first = host_model(reg, "reloadrace.txt");

  // The opposite interleaving of SwapLosesToConcurrentHotReload: a hot
  // reload reserves its ticket FIRST...
  const LoadTicket reload = reg.reserve_load("m");
  EXPECT_GT(reload.content_gen, first->content_gen);

  // ...then, while the reload is still building, the rescheduler reserves
  // a LATER version and swaps in a re-layout of the OLD weights. The
  // re-layout carries the old content generation.
  const std::int64_t swap_v = reg.reserve_version("m");
  EXPECT_GT(swap_v, reload.version);
  auto relayout =
      std::make_shared<const LoadedModel>(*first, Format::kELL, 8, swap_v);
  EXPECT_EQ(relayout->content_gen, first->content_gen);
  ASSERT_TRUE(reg.replace_if_current(first.get(), relayout));

  // The reload finishes with new on-disk content. Its reserved version is
  // now below the hosted one, but its content is strictly newer — the
  // install must WIN (this used to be silently dropped as "stale", losing
  // the new weights), with a re-minted version above the re-layout's so
  // hosted versions stay strictly increasing.
  const std::string path2 = temp_model_path("reloadrace2.txt");
  save_model_file(path2, make_model(12, 16, 0xF00D));
  auto reloaded = std::make_shared<LoadedModel>(
      "m", path2, fixed_csr(), 8, reload.version, reload.content_gen);
  EXPECT_TRUE(reg.put_if_newer(reloaded));

  const auto hosted = reg.get("m");
  ASSERT_NE(hosted, nullptr);
  EXPECT_EQ(hosted.get(), reloaded.get());
  EXPECT_EQ(hosted->content_gen, reload.content_gen);
  EXPECT_EQ(hosted->model.support_vectors.size(), 12u);
  EXPECT_GT(hosted->version, swap_v);
  // The version counter moved past the re-mint: later reservations stay
  // above everything ever hosted.
  EXPECT_GT(reg.reserve_version("m"), hosted->version);
}

TEST(Rescheduler, HotReloadInFlightSurvivesConcurrentSwap) {
  // Engine-level version of the race above: the reload stalls in its
  // build (delay failpoint) while the policy thread swaps the OLD weights
  // into a new layout at a later version. Whatever the interleaving, the
  // reload's new content must end up serving.
  const std::string path = temp_model_path("reloadswap.txt");
  save_model_file(path, make_model(8, 16, 0x5EED));
  ServeOptions opts;
  opts.sched = fixed_csr();
  opts.reschedule = test_policy();
  ServeEngine engine(opts);
  engine.load_model("m", path);
  const auto first = engine.model("m");
  ASSERT_NE(engine.rescheduler(), nullptr);
  LayoutRescheduler& rs = *engine.rescheduler();

  // New, recognisable on-disk content for the reload.
  save_model_file(path, make_model(12, 16, 0xF00D));

  failpoint::Spec delay;
  delay.action = failpoint::Action::kDelay;
  delay.delay_ms = 150;
  failpoint::Scoped slow_load("serve.model.load", delay);
  std::thread reloader([&] { engine.reload_model("m"); });

  // While the reload sleeps in its build, make the bandit swap the old
  // weights to ELL at a later version.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 8 * 1e-3);
    rs.observe_arm("m", first->content_gen, Format::kELL, 8, 8 * 1e-15);
  }
  rs.tick();
  reloader.join();

  const auto hosted = engine.model("m");
  ASSERT_NE(hosted, nullptr);
  EXPECT_EQ(hosted->model.support_vectors.size(), 12u);
  EXPECT_GT(hosted->version, first->version);
  EXPECT_GT(hosted->content_gen, first->content_gen);
  EXPECT_EQ(engine.stats().reloads_total, 1);
}

TEST(Rescheduler, SelfSwapKeepsArmsAndReloadResetsThem) {
  ModelRegistry reg;
  const auto first = host_model(reg, "selfswap.txt");
  LayoutRescheduler rs(reg, 8, test_policy());

  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 8 * 1e-3);
    rs.observe_arm("m", first->content_gen, Format::kELL, 8, 8 * 1e-15);
  }
  rs.tick();
  ASSERT_EQ(rs.reschedules_total(), 1);
  const auto swapped = reg.get("m");
  ASSERT_EQ(swapped->predictor.layout(), Format::kELL);
  EXPECT_EQ(swapped->content_gen, first->content_gen);

  // A worker observing the freshly swapped-in model — in any order
  // relative to the policy thread's post-swap bookkeeping — must not be
  // mistaken for a hot reload: the arms and priors survive a self-swap.
  rs.observe_arm("m", swapped->content_gen, Format::kELL, 8, 8 * 1e-15);
  auto stats = rs.stats();
  ASSERT_EQ(stats.size(), 1u);
  for (const ArmStats& a : stats[0].arms) {
    if (a.format == Format::kCSR) EXPECT_EQ(a.pulls, 8);
    if (a.format == Format::kELL) EXPECT_EQ(a.pulls, 9);
    EXPECT_GT(a.prior_row_seconds, 0.0);  // priors still seeded
  }

  // A genuine hot reload (content-generation bump) DOES reset the bandit:
  // every timing the arms held described the old weights.
  rs.observe_arm("m", swapped->content_gen + 1, Format::kELL, 8, 8 * 1e-3);
  stats = rs.stats();
  ASSERT_EQ(stats.size(), 1u);
  for (const ArmStats& a : stats[0].arms) {
    if (a.format == Format::kCSR) EXPECT_EQ(a.pulls, 0);
    if (a.format == Format::kELL) EXPECT_EQ(a.pulls, 1);
  }
}

TEST(Rescheduler, OptimismAloneNeverTriggersASwap) {
  // The UCB exploration bonus steers which arm gets considered, but the
  // switch gate compares exploitation values: with the current layout
  // measuring (unbeatably) fast, no candidate — however large its
  // optimism radius makes it look during selection — may trigger a
  // re-materialisation on zero measurements of its own.
  ModelRegistry reg;
  const auto first = host_model(reg, "optimism.txt");
  ReschedulerOptions opts = test_policy();
  opts.ucb_exploration = 50.0;  // radius dwarfs every prior
  LayoutRescheduler rs(reg, 8, opts);

  for (int i = 0; i < 8; ++i) {
    rs.observe_arm("m", first->content_gen, Format::kCSR, 8, 0.0);
  }
  rs.tick();
  EXPECT_EQ(rs.reschedules_total(), 0);
  EXPECT_EQ(reg.get("m").get(), first.get());
  EXPECT_EQ(reg.get("m")->predictor.layout(), Format::kCSR);
}

// --- swap atomicity under concurrent traffic -----------------------------

TEST(Rescheduler, SwapsAreValueStableUnderConcurrentPredicts) {
  const std::string path = temp_model_path("swapstable.txt");
  save_model_file(path, make_model(10, 20, 0x4E4E));

  ServeOptions opts;
  opts.workers = 2;
  opts.batcher.max_batch = 8;
  opts.batcher.deadline_ms = 0.0;
  opts.sched = fixed_csr();
  opts.reschedule = test_policy();
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();
  ASSERT_NE(engine.rescheduler(), nullptr);

  // Per-format expected values, computed from the engine's own
  // deserialized model so serialization round-trip effects cancel out.
  // Batched-vs-single scoring is bit-identical within one format (the
  // PR 3 invariant), so every served decision must equal one of these
  // five per-request values exactly — a torn swap would produce a value
  // outside the set.
  const SvmModel served = engine.model("m")->model;
  const std::vector<SparseVector> requests = make_requests(8, 20, 0x77);
  std::vector<std::vector<real_t>> expected;  // [format][request]
  for (Format f : kAllFormats) {
    SchedulerOptions sched;
    sched.policy = SchedulePolicy::kFixed;
    sched.fixed_format = f;
    const BatchPredictor bp(served, sched, opts.batcher.max_batch);
    std::vector<real_t> vals(requests.size());
    bp.decision_values(std::span<const SparseVector>(requests.data(),
                                                     requests.size()),
                       std::span<real_t>(vals.data(), vals.size()));
    expected.push_back(std::move(vals));
  }

  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::atomic<std::int64_t> scored{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 3; ++t) {
    hammers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (std::size_t r = 0; r < requests.size(); ++r) {
          const PredictResult res = engine.predict("m", requests[r]);
          if (res.status != Status::kOk) continue;
          scored.fetch_add(1);
          bool known = false;
          for (const auto& per_format : expected) {
            if (res.decision == per_format[r]) known = true;
          }
          if (!known) mismatches.fetch_add(1);
        }
      }
    });
  }

  // Drive the policy through several forced switches while traffic runs:
  // each round makes the current layout look terrible and the next basic
  // format look measured-perfect.
  LayoutRescheduler& rs = *engine.rescheduler();
  int switches_forced = 0;
  for (int round = 0; round < 4; ++round) {
    const auto current = engine.model("m");
    const Format cur = current->predictor.layout();
    std::size_t cur_idx = 0;
    for (std::size_t i = 0; i < kAllFormats.size(); ++i) {
      if (kAllFormats[i] == cur) cur_idx = i;
    }
    const Format target = kAllFormats[(cur_idx + 1) % kAllFormats.size()];
    for (int i = 0; i < 8; ++i) {
      rs.observe_arm("m", current->content_gen, cur, 8, 8 * 1e-2);
      rs.observe_arm("m", current->content_gen, target, 8, 8 * 1e-15);
    }
    const std::int64_t before = rs.reschedules_total();
    rs.tick();
    if (rs.reschedules_total() > before) ++switches_forced;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  done.store(true, std::memory_order_release);
  for (std::thread& th : hammers) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(scored.load(), 0);
  // Re-measured arms from earlier rounds may win over the intended target,
  // but most rounds must produce an actual swap.
  EXPECT_GE(switches_forced, 2);
  EXPECT_EQ(engine.stats().reschedules_total, rs.reschedules_total());
  engine.stop();
}

// --- engine wiring -------------------------------------------------------

TEST(Rescheduler, EngineReportsBanditInStatsText) {
  const std::string path = temp_model_path("statstext.txt");
  save_model_file(path, make_model(6, 12, 0x57A7));
  ServeOptions opts;
  opts.sched = fixed_csr();
  opts.reschedule = test_policy();
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(engine.predict("m", SparseVector({0}, {1.0})).status,
              Status::kOk);
  }
  const std::string text = engine.stats_text();
  EXPECT_NE(text.find("reschedules_total 0"), std::string::npos);
  EXPECT_NE(text.find("reschedule_failures_total 0"), std::string::npos);
  EXPECT_NE(text.find("bandit m current CSR"), std::string::npos);
  EXPECT_NE(text.find("arm m CSR"), std::string::npos);
  engine.stop();
}

TEST(Rescheduler, DisabledPolicyMeansNoRescheduler) {
  ServeOptions opts;
  opts.sched = fixed_csr();
  ServeEngine engine(opts);
  EXPECT_EQ(engine.rescheduler(), nullptr);
  const std::string text = engine.stats_text();
  // The counters still print (as zeros) so scrapers see a stable schema.
  EXPECT_NE(text.find("reschedules_total 0"), std::string::npos);
  EXPECT_EQ(text.find("bandit"), std::string::npos);
}

}  // namespace
}  // namespace ls::serve
