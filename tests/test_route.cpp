// Tests of the router tier: consistent-hash ring placement, circuit
// breaker state machine, endpoint parsing, health probing and the full
// router-over-replicas request path (failover, breaker failpoints,
// reload fan-out).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "route/breaker.hpp"
#include "route/prober.hpp"
#include "route/replica.hpp"
#include "route/ring.hpp"
#include "route/router.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "svm/serialize.hpp"

namespace ls::route {
namespace {

// --- consistent-hash ring -----------------------------------------------

std::vector<std::string> keyset(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("model-" + std::to_string(i % 7) + "\x1f" +
                   std::to_string(i));
  }
  return keys;
}

TEST(HashRing, SpreadAcrossReplicasIsBounded) {
  HashRing ring;
  ring.add("r0");
  ring.add("r1");
  ring.add("r2");
  std::map<std::string, int> share;
  const std::vector<std::string> keys = keyset(1000);
  for (const std::string& k : keys) ++share[ring.owner(k)];
  ASSERT_EQ(share.size(), 3u);
  for (const auto& [id, n] : share) {
    // With 64 vnodes each of 3 replicas owns roughly a third; the bound
    // is loose enough to be seed-stable but tight enough to catch a
    // broken hash (everything on one replica) or a missing vnode loop.
    EXPECT_GE(n, 100) << id << " starved: " << n << "/1000";
    EXPECT_LE(n, 600) << id << " overloaded: " << n << "/1000";
  }
}

TEST(HashRing, AddRemapsOnlyMovedKeysAndOnlyToTheNewMember) {
  HashRing ring;
  ring.add("r0");
  ring.add("r1");
  ring.add("r2");
  const std::vector<std::string> keys = keyset(1000);
  std::map<std::string, std::string> before;
  for (const std::string& k : keys) before[k] = ring.owner(k);

  ring.add("r3");
  std::size_t moved = 0;
  for (const std::string& k : keys) {
    const std::string after = ring.owner(k);
    if (after != before[k]) {
      // Consistent hashing's contract: growth steals keys for the new
      // member, it never shuffles keys between the old members.
      EXPECT_EQ(after, "r3") << "key " << k << " moved " << before[k]
                             << " -> " << after;
      ++moved;
    }
  }
  // The new member should take roughly 1/4 of the keyspace, and nothing
  // close to a full reshuffle (which would be ~75% moved).
  EXPECT_GT(moved, 100u);
  EXPECT_LT(moved, 500u);
}

TEST(HashRing, RemoveRestoresThePriorMapping) {
  HashRing ring;
  ring.add("r0");
  ring.add("r1");
  ring.add("r2");
  const std::vector<std::string> keys = keyset(1000);
  std::map<std::string, std::string> before;
  for (const std::string& k : keys) before[k] = ring.owner(k);

  ring.add("r3");
  ASSERT_TRUE(ring.remove("r3"));
  for (const std::string& k : keys) {
    EXPECT_EQ(ring.owner(k), before[k]);
  }
  EXPECT_FALSE(ring.remove("r3"));  // already gone
}

TEST(HashRing, PreferenceOrderIsAPermutationOfMembership) {
  HashRing ring;
  for (const char* id : {"a", "b", "c", "d"}) ring.add(id);
  for (const std::string& k : keyset(64)) {
    const std::vector<std::string> order = ring.route(k, ring.size());
    std::set<std::string> distinct(order.begin(), order.end());
    EXPECT_EQ(order.size(), 4u);
    EXPECT_EQ(distinct.size(), 4u);
  }
}

TEST(HashRing, OrderIndependentOfInsertionHistory) {
  HashRing a;
  a.add("r0");
  a.add("r1");
  a.add("r2");

  HashRing b;
  b.add("r2");
  b.add("ghost");
  b.add("r0");
  ASSERT_TRUE(b.remove("ghost"));
  b.add("r1");

  for (const std::string& k : keyset(200)) {
    EXPECT_EQ(a.route(k, 3), b.route(k, 3)) << "key " << k;
  }
}

TEST(HashRing, EmptyAndSingleMemberEdges) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner("anything"), "");
  EXPECT_TRUE(ring.route("anything", 3).empty());

  ring.add("only");
  for (const std::string& k : keyset(32)) {
    EXPECT_EQ(ring.owner(k), "only");
  }
  EXPECT_EQ(ring.route("k", 5).size(), 1u);  // n > size caps at size
}

// TSan target: routing while membership churns must be free of data races
// and must settle to the same deterministic order as a fresh ring.
TEST(HashRing, ConcurrentMembershipUpdatesKeepRoutingDeterministic) {
  HashRing ring;
  ring.add("r0");
  ring.add("r1");
  ring.add("r2");
  std::atomic<bool> stop{false};

  std::thread churn([&] {
    for (int i = 0; i < 200; ++i) {
      ring.add("extra-" + std::to_string(i % 3));
      ring.remove("extra-" + std::to_string((i + 1) % 3));
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      const std::string key = "key-" + std::to_string(t);
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<std::string> order = ring.route(key, 2);
        // Membership is never below the three stable replicas.
        ASSERT_GE(order.size(), 2u);
        ASSERT_NE(order[0], order[1]);
      }
    });
  }
  churn.join();
  for (std::thread& th : readers) th.join();

  // Determinism: a fresh ring with the final membership agrees exactly.
  HashRing fresh;
  for (const std::string& m : ring.members()) fresh.add(m);
  for (const std::string& k : keyset(100)) {
    EXPECT_EQ(ring.route(k, ring.size()), fresh.route(k, fresh.size()));
  }
}

// --- circuit breaker -----------------------------------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  BreakerOptions opts;
  opts.failure_threshold = 3;
  opts.open_ms = 100.0;
  CircuitBreaker breaker(opts);

  EXPECT_TRUE(breaker.allow(0.0));
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  EXPECT_EQ(breaker.state(3.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  EXPECT_TRUE(breaker.allow(3.0));

  breaker.record_failure(4.0);  // third consecutive: trips
  EXPECT_EQ(breaker.state(5.0), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow(5.0));
  EXPECT_EQ(breaker.opens_total(), 1);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  BreakerOptions opts;
  opts.failure_threshold = 3;
  CircuitBreaker breaker(opts);
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  breaker.record_success(3.0);
  breaker.record_failure(4.0);
  breaker.record_failure(5.0);
  EXPECT_EQ(breaker.state(6.0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(6.0));
}

TEST(CircuitBreaker, HalfOpenTrialSuccessCloses) {
  BreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_ms = 100.0;
  opts.half_open_trials = 1;
  CircuitBreaker breaker(opts);
  breaker.record_failure(0.0);
  EXPECT_FALSE(breaker.allow(50.0));  // still cooling down
  EXPECT_EQ(breaker.state(150.0), BreakerState::kHalfOpen);

  EXPECT_TRUE(breaker.allow(150.0));   // claims the single trial slot
  EXPECT_FALSE(breaker.allow(151.0));  // no second concurrent trial
  breaker.record_success(160.0);
  EXPECT_EQ(breaker.state(161.0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(161.0));
}

TEST(CircuitBreaker, HalfOpenTrialFailureReopens) {
  BreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_ms = 100.0;
  CircuitBreaker breaker(opts);
  breaker.record_failure(0.0);
  EXPECT_TRUE(breaker.allow(120.0));  // half-open trial
  breaker.record_failure(121.0);      // trial failed: back to open
  EXPECT_EQ(breaker.state(122.0), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow(150.0));  // new cooldown runs from 121
  EXPECT_TRUE(breaker.allow(222.0));   // expires again
  EXPECT_EQ(breaker.opens_total(), 2);
}

TEST(CircuitBreaker, ForceOpenShortCircuitsImmediately) {
  CircuitBreaker breaker;
  EXPECT_TRUE(breaker.allow(0.0));
  breaker.force_open(1.0);
  EXPECT_FALSE(breaker.allow(2.0));
  EXPECT_EQ(breaker.state(2.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens_total(), 1);
}

// --- replica endpoints and states ----------------------------------------

TEST(ReplicaEndpoint, ParsesAllSpecForms) {
  EXPECT_EQ(parse_replica_endpoint("unix:/tmp/a.sock").id(),
            "unix:/tmp/a.sock");
  EXPECT_EQ(parse_replica_endpoint("/tmp/a.sock").id(), "unix:/tmp/a.sock");
  EXPECT_EQ(parse_replica_endpoint("tcp:9000").id(), "tcp:9000");
  EXPECT_EQ(parse_replica_endpoint("9000").id(), "tcp:9000");
  EXPECT_THROW(parse_replica_endpoint(""), ls::Error);
  EXPECT_THROW(parse_replica_endpoint("tcp:ninety"), ls::Error);

  const auto list =
      parse_replica_list("unix:/a.sock,tcp:9001,/b.sock");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].id(), "unix:/a.sock");
  EXPECT_EQ(list[1].id(), "tcp:9001");
  EXPECT_EQ(list[2].id(), "unix:/b.sock");
}

TEST(ReplicaState, HealthTextMapsToStatesAndRoutability) {
  EXPECT_EQ(replica_state_from_health("ready"), ReplicaState::kReady);
  EXPECT_EQ(replica_state_from_health("live"), ReplicaState::kLive);
  EXPECT_EQ(replica_state_from_health("draining"), ReplicaState::kDraining);
  EXPECT_EQ(replica_state_from_health("degraded"), ReplicaState::kDegraded);
  EXPECT_EQ(replica_state_from_health("gibberish"), ReplicaState::kDown);

  EXPECT_TRUE(replica_state_routable(ReplicaState::kUnknown));
  EXPECT_TRUE(replica_state_routable(ReplicaState::kReady));
  EXPECT_TRUE(replica_state_routable(ReplicaState::kLive));
  EXPECT_TRUE(replica_state_routable(ReplicaState::kDegraded));
  EXPECT_FALSE(replica_state_routable(ReplicaState::kDraining));
  EXPECT_FALSE(replica_state_routable(ReplicaState::kDown));
}

TEST(RouteProtocol, DecodePredictModelReadsOnlyThePrefix) {
  SparseVector x({1, 5, 9}, {0.5, -2.0, 3.25});
  const std::string payload =
      serve::encode_predict_request("my-model", x, 123.0);
  EXPECT_EQ(serve::decode_predict_model(payload), "my-model");
  EXPECT_THROW(serve::decode_predict_model(""), ls::Error);
}

// --- router over real replicas -------------------------------------------

SvmModel route_test_model(std::uint64_t seed) {
  Rng rng(seed);
  SvmModel model;
  model.kernel.type = KernelType::kGaussian;
  model.kernel.gamma = 0.5;
  model.rho = 0.0;
  model.num_features = 16;
  for (index_t s = 0; s < 6; ++s) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < 16; ++c) {
      if (rng.bernoulli(0.4)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    model.support_vectors.emplace_back(std::move(idx), std::move(val));
    model.coef.push_back(s % 2 == 0 ? 1.0 : -1.0);
  }
  return model;
}

std::string route_socket_path(const char* tag, int i) {
  return ::testing::TempDir() + "ls_route_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(i) + ".sock";
}

serve::ServeOptions fixed_engine_options() {
  serve::ServeOptions opts;
  opts.sched.policy = SchedulePolicy::kFixed;
  opts.sched.fixed_format = Format::kCSR;
  return opts;
}

RouterOptions fast_router_options() {
  RouterOptions ropts;
  // Sped-up clocks so recovery paths run inside a unit test's budget.
  ropts.probe.interval_ms = 20.0;
  ropts.probe.probe_timeout_ms = 200.0;
  ropts.probe.backoff_max_ms = 100.0;
  ropts.breaker.failure_threshold = 2;
  ropts.breaker.open_ms = 50.0;
  ropts.upstream_connect_timeout_ms = 500.0;
  ropts.upstream_request_timeout_ms = 2000.0;
  return ropts;
}

/// N in-process replicas over one shared engine, plus a router fronting
/// them on its own socket. Mirrors the replicated serve_chaos topology.
struct RouterFixture {
  std::string model_path;
  serve::ServeEngine engine;
  std::vector<serve::ServerOptions> rep_listen;
  std::vector<std::unique_ptr<serve::ServeServer>> reps;
  std::unique_ptr<Router> router;
  serve::ServerOptions front_listen;
  std::unique_ptr<serve::ServeServer> front;

  explicit RouterFixture(const char* tag, int n_replicas,
                         RouterOptions ropts = fast_router_options())
      : model_path(::testing::TempDir() + "ls_route_model_" + tag + ".txt"),
        engine(fixed_engine_options()) {
    save_model_file(model_path, route_test_model(0x407E5));
    engine.load_model("m", model_path);
    engine.start();

    std::vector<ReplicaEndpoint> endpoints;
    for (int i = 0; i < n_replicas; ++i) {
      serve::ServerOptions listen;
      listen.unix_path = route_socket_path(tag, i);
      rep_listen.push_back(listen);
      reps.push_back(std::make_unique<serve::ServeServer>(engine, listen));
      reps.back()->start();
      endpoints.push_back(ReplicaEndpoint{listen.unix_path, -1});
    }
    router = std::make_unique<Router>(endpoints, ropts);
    router->start();

    front_listen.unix_path = route_socket_path(tag, 999);
    front = std::make_unique<serve::ServeServer>(*router, front_listen);
    front->start();
  }

  void stop_replica(int i) {
    const auto idx = static_cast<std::size_t>(i);
    if (reps[idx]) {
      reps[idx]->stop();
      reps[idx].reset();
    }
  }

  void restart_replica(int i) {
    const auto idx = static_cast<std::size_t>(i);
    reps[idx] =
        std::make_unique<serve::ServeServer>(engine, rep_listen[idx]);
    reps[idx]->start();
  }

  serve::ServeClient client(int retries = 0) {
    serve::ClientOptions copts;
    copts.max_retries = retries;
    copts.request_timeout_ms = 2000.0;
    return serve::ServeClient::connect_unix(front_listen.unix_path, copts);
  }

  ~RouterFixture() {
    if (front) front->stop();
    if (router) router->stop();
    for (auto& rep : reps) {
      if (rep) rep->stop();
    }
    engine.stop();
  }
};

TEST(Router, EndToEndPredictMatchesDirectEngine) {
  RouterFixture fx("e2e", 3);
  serve::ServeClient c = fx.client();
  EXPECT_TRUE(c.ping());

  Rng rng(0xABC);
  for (int i = 0; i < 16; ++i) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t f = 0; f < 16; ++f) {
      if (rng.bernoulli(0.4)) {
        idx.push_back(f);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    const SparseVector x(std::move(idx), std::move(val));
    const serve::PredictResult via_router = c.predict("m", x);
    ASSERT_EQ(via_router.status, serve::Status::kOk);
    const serve::PredictResult direct = fx.engine.predict("m", x);
    // The router forwards payload bytes verbatim, so the answer must be
    // bit-identical to asking the engine directly.
    EXPECT_EQ(via_router.decision, direct.decision);
    EXPECT_EQ(via_router.label, direct.label);
  }

  const RouterStats stats = fx.router->stats();
  EXPECT_EQ(stats.requests_total, 16);
  EXPECT_EQ(stats.proxied_ok_total, 16);
  EXPECT_EQ(stats.exhausted_total, 0);
}

TEST(Router, HealthAggregatesAndStatsExposeReplicas) {
  RouterFixture fx("verbs", 3);
  serve::ServeClient c = fx.client();

  // All three replicas answer probes, so the aggregate converges on
  // "ready" (kUnknown before the first probe also counts as routable).
  EXPECT_EQ(c.health(), "ready");

  const std::string stats = c.stats();
  EXPECT_NE(stats.find("router_replicas 3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("route_requests_total"), std::string::npos);
  // Per-replica lines and the socket layer's own block both present.
  EXPECT_NE(stats.find("replica unix:"), std::string::npos);
  EXPECT_NE(stats.find("connections_open"), std::string::npos);
}

TEST(Router, ReloadFansOutToEveryReplica) {
  RouterFixture fx("reload", 3);
  serve::ServeClient c = fx.client();
  std::string report;
  EXPECT_EQ(c.reload("m", &report), serve::Status::kOk);
  // One report line per replica, each ok.
  for (const auto& rep : fx.router->replicas()) {
    EXPECT_NE(report.find(rep->id + ": ok"), std::string::npos) << report;
  }
  EXPECT_EQ(fx.router->stats().reload_fanouts_total, 1);
}

TEST(Router, FailsOverWhenAReplicaDies) {
  RouterFixture fx("failover", 3);
  fx.stop_replica(0);
  fx.stop_replica(1);

  // Whatever replica each connection's key prefers, every request must
  // end up on the sole survivor with zero client-visible failures.
  for (int conn = 0; conn < 6; ++conn) {
    serve::ServeClient c = fx.client();
    for (int i = 0; i < 4; ++i) {
      const serve::PredictResult r =
          c.predict("m", SparseVector({0, 3}, {1.0, -0.5}));
      ASSERT_EQ(r.status, serve::Status::kOk)
          << "conn " << conn << " req " << i;
    }
  }
  const RouterStats stats = fx.router->stats();
  EXPECT_EQ(stats.exhausted_total, 0);
  EXPECT_EQ(stats.proxied_ok_total, 24);
}

TEST(Router, ExhaustionAnswersShuttingDownAndRecovers) {
  RouterFixture fx("exhaust", 2);
  fx.stop_replica(0);
  fx.stop_replica(1);

  serve::ServeClient c = fx.client();
  const serve::PredictResult refused =
      c.predict("m", SparseVector({0}, {1.0}));
  // The whole fleet is dark: the router answers with the retryable
  // refusal instead of an error, exactly like one draining server would.
  EXPECT_EQ(refused.status, serve::Status::kShuttingDown);
  EXPECT_GT(fx.router->stats().exhausted_total, 0);

  fx.restart_replica(0);
  // A retrying client bridges the outage on its own.
  serve::ServeClient retrying = fx.client(/*retries=*/8);
  const serve::PredictResult ok =
      retrying.predict("m", SparseVector({0}, {1.0}));
  EXPECT_EQ(ok.status, serve::Status::kOk);
}

TEST(Router, BreakerForceOpenFailpointSkipsAReplica) {
  RouterFixture fx("fp_breaker", 3);
  serve::ServeClient c = fx.client();
  ASSERT_EQ(c.predict("m", SparseVector({0}, {1.0})).status,
            serve::Status::kOk);

  // Force-open the first replica attempted for exactly one request; the
  // router must absorb it via failover, not surface it.
  failpoint::Scoped fp("route.breaker.force_open",
                       {failpoint::Action::kError, 0, 0, 1});
  const serve::PredictResult r = c.predict("m", SparseVector({0}, {1.0}));
  EXPECT_EQ(r.status, serve::Status::kOk);

  const RouterStats stats = fx.router->stats();
  EXPECT_GT(stats.breaker_short_circuit_total, 0);
  std::int64_t opens = 0;
  for (const auto& rep : fx.router->replicas()) {
    opens += rep->breaker.opens_total();
  }
  EXPECT_EQ(opens, 1);
}

TEST(Router, DrainingReplicaIsSkippedViaFailover) {
  RouterFixture fx("draining", 2);
  serve::ServeClient c = fx.client();
  ASSERT_EQ(c.predict("m", SparseVector({0, 2}, {1.0, 2.0})).status,
            serve::Status::kOk);

  // Which replica served this connection's key? Its cached upstream
  // connection is what survives the drain below.
  const auto& reps = fx.router->replicas();
  int owner = -1;
  for (std::size_t i = 0; i < reps.size(); ++i) {
    if (reps[i]->requests_total.load() == 1) owner = static_cast<int>(i);
  }
  ASSERT_NE(owner, -1);

  // Stop the prober so it cannot re-mark states mid-test, then drain the
  // owner: its listener closes but the router's cached connection stays
  // up and predicts on it now answer kShuttingDown — a healthy refusal
  // the router must fail over WITHOUT feeding the breaker.
  fx.router->stop();
  fx.reps[static_cast<std::size_t>(owner)]->begin_drain();

  const serve::PredictResult r =
      c.predict("m", SparseVector({0, 2}, {1.0, 2.0}));
  EXPECT_EQ(r.status, serve::Status::kOk);
  for (const auto& rep : reps) {
    EXPECT_EQ(rep->breaker.opens_total(), 0) << rep->id;
  }
  // The refusal also marked the replica draining ahead of the next probe.
  EXPECT_EQ(reps[static_cast<std::size_t>(owner)]->state.load(),
            ReplicaState::kDraining);
}

// --- prober --------------------------------------------------------------

TEST(HealthProber, ProbeSetsStateAndBacksOffOnFailure) {
  ProberOptions popts;
  popts.interval_ms = 10.0;
  popts.probe_timeout_ms = 100.0;
  popts.backoff_max_ms = 80.0;
  popts.jitter_frac = 0.0;  // exact bounds below

  BreakerOptions bopts;
  auto dead = std::make_shared<Replica>(
      ReplicaEndpoint{::testing::TempDir() + "ls_route_nowhere.sock", -1},
      bopts);
  HealthProber prober({dead}, popts);  // never started: probe_now directly

  for (int i = 0; i < 6; ++i) prober.probe_now(*dead);
  EXPECT_EQ(dead->state.load(), ReplicaState::kDown);
  EXPECT_FALSE(dead->routable_state());
  EXPECT_EQ(dead->probe_failures.load(), 6);
  EXPECT_EQ(dead->probe_ok_total.load(), 0);
  EXPECT_EQ(dead->probe_fail_total.load(), 6);
  // Backoff is capped: the next due time is at most backoff_max_ms out.
  const double due = dead->next_probe_ms.load() - steady_now_ms();
  EXPECT_GT(due, 0.0);
  EXPECT_LE(due, popts.backoff_max_ms + 1.0);
}

TEST(HealthProber, SuccessfulProbeRecoversStateAndBreaker) {
  RouterFixture fx("probe_ok", 1);
  auto& rep = *fx.router->replicas()[0];

  // Simulate a breaker tripped by request-path failures and a probe-dead
  // state; one good probe must repair both.
  rep.breaker.force_open(steady_now_ms());
  rep.state.store(ReplicaState::kDown);

  ProberOptions popts;
  popts.interval_ms = 10.0;
  popts.probe_timeout_ms = 500.0;
  HealthProber prober({fx.router->replicas()[0]}, popts);
  prober.probe_now(rep);

  EXPECT_EQ(rep.state.load(), ReplicaState::kReady);
  EXPECT_EQ(rep.breaker.state(steady_now_ms()), BreakerState::kClosed);
  EXPECT_EQ(rep.probe_failures.load(), 0);
  EXPECT_GT(rep.probe_ok_total.load(), 0);
}

TEST(HealthProber, ProbeDelayFailpointFailsTheProbe) {
  RouterFixture fx("probe_fp", 1);
  auto& rep = *fx.router->replicas()[0];
  ProberOptions popts;
  popts.interval_ms = 10.0;
  popts.probe_timeout_ms = 500.0;
  HealthProber prober({fx.router->replicas()[0]}, popts);

  {
    // An error action at the probe site fails the probe before any socket
    // traffic — the replica is marked down even though it is healthy.
    failpoint::Scoped fp("route.probe.delay",
                         {failpoint::Action::kError, 0, 0, 1});
    prober.probe_now(rep);
    EXPECT_EQ(rep.state.load(), ReplicaState::kDown);
    EXPECT_GT(rep.probe_fail_total.load(), 0);
  }

  prober.probe_now(rep);  // failpoint disarmed: recovery
  EXPECT_EQ(rep.state.load(), ReplicaState::kReady);
}

TEST(HealthProber, BackgroundLoopConvergesReplicaStates) {
  RouterFixture fx("probe_loop", 2);
  fx.stop_replica(1);

  // The router's own prober (20ms cadence) must notice one dead and one
  // live replica without any request traffic.
  const auto& reps = fx.router->replicas();
  for (int spin = 0; spin < 100; ++spin) {
    if (reps[0]->state.load() == ReplicaState::kReady &&
        reps[1]->state.load() == ReplicaState::kDown) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(reps[0]->state.load(), ReplicaState::kReady);
  EXPECT_EQ(reps[1]->state.load(), ReplicaState::kDown);
  EXPECT_EQ(fx.router->stats().routable_replicas, 1u);
  EXPECT_STREQ(fx.router->health_name(), "degraded");
}

}  // namespace
}  // namespace ls::route
