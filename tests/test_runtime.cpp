// Tests for the runtime extensions: batch prediction, OSKI-style BCSR
// block-shape tuning, and mid-training layout re-scheduling.
#include <gtest/gtest.h>

#include <sstream>

#include "data/profiles.hpp"
#include "data/synthetic.hpp"
#include "common/timer.hpp"
#include "data/features.hpp"
#include "sched/selector.hpp"
#include "svm/batch_predict.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/reschedule.hpp"
#include "svm/serialize.hpp"
#include "svm/trainer.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

// ------------------------------------------------------ batch predictor

Dataset planted(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "bp";
  ds.X = test::random_matrix(rows, cols, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.05, seed ^ 0xAB);
  return ds;
}

class BatchPredictKernels : public ::testing::TestWithParam<KernelType> {};

TEST_P(BatchPredictKernels, MatchesPerRowPrediction) {
  const Dataset ds = planted(80, 12, 60);
  const auto [train, test] = ds.split(0.7, 5);
  SvmParams params;
  params.kernel.type = GetParam();
  params.kernel.gamma = 0.4;
  params.kernel.coef0 = 1.0;
  const TrainResult r = train_fixed_format(train, params, Format::kCSR);
  ASSERT_TRUE(r.stats.converged);

  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const BatchPredictor batch(r.model, sched);

  SparseVector row;
  const std::vector<real_t> values = batch.decision_values(test);
  for (index_t i = 0; i < test.rows(); ++i) {
    test.X.gather_row(i, row);
    EXPECT_NEAR(values[static_cast<std::size_t>(i)], r.model.decision(row),
                1e-9)
        << "row " << i;
  }
  EXPECT_NEAR(batch.accuracy(test), r.model.accuracy(test), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, BatchPredictKernels,
                         ::testing::Values(KernelType::kLinear,
                                           KernelType::kGaussian,
                                           KernelType::kPolynomial),
                         [](const auto& info) {
                           return kernel_name(info.param);
                         });

TEST(BatchPredictor, SchedulesTheSupportVectorMatrix) {
  const Dataset ds = planted(100, 10, 61);
  SvmParams params;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kEmpirical;
  sched.autotune.sample_rows = 0;
  const BatchPredictor batch(r.model, sched);
  // A layout was chosen (any of the basic five).
  bool known = false;
  for (Format f : kAllFormats) known |= batch.layout() == f;
  EXPECT_TRUE(known);
}

TEST(BatchPredictor, RejectsEmptyModelsAndWideData) {
  SvmModel empty;
  empty.num_features = 4;
  EXPECT_THROW(BatchPredictor{empty}, Error);

  const Dataset ds = planted(30, 6, 62);
  SvmParams params;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  const BatchPredictor batch(r.model, sched);
  Dataset wide = planted(5, 9, 63);  // more features than the model
  EXPECT_THROW(batch.decision_values(wide), Error);
}

// --------------------------------------------------- block-shape tuning

TEST(BlockShape, FindsTheNativeTileOfABlockMatrix) {
  // Isolated aligned 2x3 dense tiles with empty space between them: fill
  // is exactly 1 at (2, 3) and strictly worse for any larger tile (each
  // would swallow empty neighbourhood), so the search must return (2, 3).
  std::vector<Triplet> t;
  for (index_t b = 0; b < 16; ++b) {
    const index_t r0 = (b % 4) * 6, c0 = (b / 4) * 9;  // gaps of 4 and 6
    for (index_t r = 0; r < 2; ++r) {
      for (index_t c = 0; c < 3; ++c) {
        t.push_back({r0 + r, c0 + c, 1.0});
      }
    }
  }
  const CooMatrix coo(24, 36, std::move(t));
  const BlockShapeChoice choice = choose_block_shape(coo, 4, 4);
  EXPECT_DOUBLE_EQ(choice.fill_ratio, 1.0);
  EXPECT_EQ(choice.rows, 2);
  EXPECT_EQ(choice.cols, 3);
}

TEST(BlockShape, ScatteredMatrixPrefersTinyBlocks) {
  Rng rng(64);
  std::vector<index_t> lens(200, 2);
  const CooMatrix coo = make_random_sparse(200, 400, lens, rng);
  const BlockShapeChoice choice = choose_block_shape(coo, 4, 4);
  // Scattered nonzeros: any tile >1x1 mostly holds fill; expect 1x1-ish.
  EXPECT_LE(choice.rows * choice.cols, 2);
  EXPECT_THROW(choose_block_shape(coo, 0, 4), Error);
}

TEST(BlockShape, ChosenShapeBuildsAValidMatrix) {
  Rng rng(65);
  const CooMatrix coo = make_banded(64, 64, {0, 1}, 1.0, rng);
  const BlockShapeChoice choice = choose_block_shape(coo);
  const BcsrMatrix bcsr(coo, choice.rows, choice.cols);
  EXPECT_NEAR(bcsr.fill_ratio(), choice.fill_ratio, 1e-12);
  // Multiply still correct at the tuned shape.
  std::vector<real_t> w = test::random_vector(64, rng);
  std::vector<real_t> y(64);
  bcsr.multiply_dense(w, y);
  test::expect_near(y, test::reference_multiply(coo, w));
}

// --------------------------------------------------- SVR serialization

TEST(SvrSerialize, RoundTripPreservesPredictions) {
  // Fit sin-like targets, save, reload, compare predictions exactly.
  Dataset ds;
  ds.name = "svr_ser";
  std::vector<Triplet> t;
  std::vector<real_t> y;
  for (index_t i = 0; i < 40; ++i) {
    const real_t x = 0.1 * static_cast<real_t>(i + 1);
    t.push_back({i, 0, x});
    y.push_back(std::sin(x));
  }
  ds.X = CooMatrix(40, 1, std::move(t));
  ds.y = std::move(y);

  SvrParams params;
  params.epsilon = 0.02;
  params.svm.c = 20.0;
  params.svm.kernel.type = KernelType::kGaussian;
  params.svm.kernel.gamma = 2.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const SvrResult r = train_svr(ds, params, sched);
  ASSERT_FALSE(r.model.support_vectors.empty());

  std::stringstream buffer;
  save_svr(buffer, r.model);
  const SvrModel back = load_svr(buffer);
  for (real_t x : {0.15, 1.3, 2.7, 3.9}) {
    SparseVector probe({0}, {x});
    EXPECT_DOUBLE_EQ(back.predict(probe), r.model.predict(probe));
  }
  // An SVR stream must not load as a classification model and vice versa.
  std::stringstream again;
  save_svr(again, r.model);
  EXPECT_THROW(load_model(again), Error);
}

// ------------------------------------------------------ linear weights

TEST(LinearWeights, PrimalFormMatchesTheKernelExpansion) {
  const Dataset ds = planted(70, 9, 71);
  SvmParams params;  // linear kernel
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  const std::vector<real_t> w = r.model.linear_weights();
  ASSERT_EQ(w.size(), 9u);

  SparseVector row;
  for (index_t i = 0; i < ds.rows(); i += 7) {
    ds.X.gather_row(i, row);
    const real_t primal = row.dot_dense(w) - r.model.rho;
    EXPECT_NEAR(primal, r.model.decision(row), 1e-9) << "row " << i;
  }
}

TEST(LinearWeights, RejectsNonlinearKernels) {
  SvmModel model;
  model.kernel.type = KernelType::kGaussian;
  model.num_features = 3;
  EXPECT_THROW(model.linear_weights(), Error);
}

// -------------------------------------------- heuristic sanity property

TEST(HeuristicSanity, NeverPicksACatastrophicFormat) {
  // On every evaluated profile, the heuristic's pick must measure within
  // 5x of the best format (it routinely lands within ~1.2x; the loose
  // bound keeps the test robust to timing noise while still catching a
  // broken cost model, which would err by 10-300x).
  KernelParams kernel;
  for (const DatasetProfile& profile : evaluated_profiles()) {
    const Dataset ds = profile.generate();
    const ScheduleDecision d =
        HeuristicSelector().choose(extract_features(ds.X));
    double best = 1e300;
    double picked = 0.0;
    for (Format f : kAllFormats) {
      const AnyMatrix mat = AnyMatrix::from_coo(ds.X, f);
      FormatKernelEngine engine(mat, kernel);
      std::vector<real_t> row(static_cast<std::size_t>(ds.rows()));
      const double s = time_best([&] { engine.compute_row(7, row); }, 3,
                                 0.002);
      best = std::min(best, s);
      if (f == d.format) picked = s;
    }
    EXPECT_LT(picked, 5.0 * best) << profile.name << " picked "
                                  << format_name(d.format);
  }
}

// ----------------------------------------------------------------- AUC

TEST(RocAuc, PerfectAndRandomRankings) {
  const Dataset ds = planted(120, 10, 70);
  SvmParams params;
  params.c = 10.0;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  const double auc = roc_auc(r.model, ds);
  // Planted labels with 5% noise: the ranking should be far above chance.
  EXPECT_GT(auc, 0.85);
  EXPECT_LE(auc, 1.0);
}

TEST(RocAuc, HandComputedTies) {
  // A model with one SV so decision = coef * K - rho is monotone in the
  // single feature; craft a dataset with a tie.
  SvmModel model;
  model.num_features = 1;
  model.support_vectors.push_back(SparseVector({0}, {1.0}));
  model.coef = {1.0};
  model.rho = 0.0;  // decision(x) = x

  Dataset ds;
  ds.name = "auc";
  // Scores: -1 (neg), 1 (pos), 1 (neg), 2 (pos)  => pairs: (pos>neg):
  // 1>-1 ok, 1 vs 1 tie (0.5), 2>-1 ok, 2>1 ok => AUC = 3.5/4.
  ds.X = CooMatrix(4, 1,
                   {{0, 0, -1.0}, {1, 0, 1.0}, {2, 0, 1.0}, {3, 0, 2.0}});
  ds.y = {-1.0, 1.0, -1.0, 1.0};
  EXPECT_NEAR(roc_auc(model, ds), 3.5 / 4.0, 1e-12);

  // Single-class input throws.
  ds.y = {1.0, 1.0, 1.0, 1.0};
  EXPECT_THROW(roc_auc(model, ds), Error);
}

// ------------------------------------------------- runtime rescheduling

TEST(Reschedule, RecoversFromADeliberatelyBadLayout) {
  // trefethen-like banded matrix: DEN is catastrophic, DIA/CSR are right.
  const Dataset ds = profile_by_name("trefethen").generate(66);
  SvmParams params;
  params.tolerance = 1e-2;
  params.max_iterations = 400;

  RescheduleOptions opts;
  opts.check_after_rows = 8;
  // Rescheduling races wall-clock probes; pin to one thread so an
  // oversubscribed OMP_NUM_THREADS run cannot skew the measurements.
  const TrainResult r = test::with_threads(1, [&] {
    return train_reschedulable(ds, params, Format::kDEN, opts);
  });
  EXPECT_NE(r.decision.format, Format::kDEN);  // switched away
  EXPECT_NE(r.decision.rationale.find("started DEN"), std::string::npos);
}

TEST(Reschedule, StaysPutWhenTheLayoutIsAlreadyGood) {
  Rng rng(67);
  Dataset ds;
  ds.name = "good";
  ds.X = test::random_matrix(300, 40, 0.1, rng);
  ds.y = plant_labels(ds.X, 0.05, 67);
  SvmParams params;
  params.tolerance = 1e-2;

  RescheduleOptions opts;
  opts.check_after_rows = 8;
  opts.switch_threshold = 1.5;
  // Timing-based: with oversubscribed OpenMP threads the probe can
  // legitimately measure another format faster, so pin to one thread. The
  // "already good" starting layout is whatever the same empirical probe
  // ranks best right now — which format that is depends on the active
  // SIMD kernel level, so ask rather than hard-code.
  Format good = Format::kCSR;
  const TrainResult r = test::with_threads(1, [&] {
    good = EmpiricalAutotuner(opts.autotune).choose(ds.X).format;
    return train_reschedulable(ds, params, good, opts);
  });
  EXPECT_EQ(r.decision.format, good);
}

TEST(Reschedule, SolutionMatchesFixedFormatTraining) {
  Rng rng(68);
  Dataset ds;
  ds.name = "same";
  ds.X = test::random_matrix(120, 15, 0.3, rng);
  ds.y = plant_labels(ds.X, 0.05, 68);
  SvmParams params;

  RescheduleOptions opts;
  opts.check_after_rows = 16;
  const TrainResult resched =
      train_reschedulable(ds, params, Format::kELL, opts);
  const TrainResult fixed = train_fixed_format(ds, params, Format::kCSR);
  ASSERT_TRUE(resched.stats.converged);
  // Same QP regardless of layout churn: objectives agree.
  EXPECT_NEAR(resched.stats.objective, fixed.stats.objective,
              1e-3 * std::abs(fixed.stats.objective) + 1e-6);
}

TEST(Reschedule, RespectsTheSwitchBudget) {
  Rng rng(69);
  Dataset ds;
  ds.name = "budget";
  ds.X = test::random_matrix(80, 10, 0.3, rng);
  ds.y = plant_labels(ds.X, 0.05, 69);

  RescheduleOptions opts;
  opts.check_after_rows = 4;
  opts.max_switches = 2;
  ReschedulingKernelEngine engine(ds.X, KernelParams{}, Format::kCOO, opts);
  std::vector<real_t> row(static_cast<std::size_t>(ds.rows()));
  for (index_t i = 0; i < 40; ++i) {
    engine.compute_row(i % ds.rows(), row);
  }
  EXPECT_LE(engine.switches(), 2);
  EXPECT_THROW(ReschedulingKernelEngine(ds.X, KernelParams{}, Format::kCOO,
                                        RescheduleOptions{0, 1.25, 1, {}}),
               Error);
}

}  // namespace
}  // namespace ls
