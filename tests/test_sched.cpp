// Tests for the layout scheduler: the analytic cost model, the heuristic
// selector, the empirical autotuner and the simulated many-core makespan
// model.
#include <gtest/gtest.h>

#include "data/features.hpp"
#include "data/synthetic.hpp"
#include "formats/any_matrix.hpp"
#include "sched/cost_model.hpp"
#include "sched/parallel_model.hpp"
#include "sched/scheduler.hpp"
#include "sched/selector.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

TEST(CostModel, ModeledFlopsMatchMaterializedWork) {
  Rng rng(21);
  const CooMatrix coo = test::random_matrix(60, 40, 0.2, rng);
  MatrixFeatures f = extract_features(coo);
  for (Format fmt : kAllFormats) {
    const AnyMatrix mat = AnyMatrix::from_coo(coo, fmt);
    const double modeled = modeled_flops(fmt, f);
    const double actual = static_cast<double>(mat.work_flops());
    // DIA's model uses the ndig * min(M,N) stripe bound (>= actual work).
    if (fmt == Format::kDIA) {
      EXPECT_GE(modeled, actual);
      EXPECT_LE(modeled, actual * 2.0 + 1.0);
    } else {
      EXPECT_DOUBLE_EQ(modeled, actual) << format_name(fmt);
    }
  }
}

TEST(CostModel, BytesScaleWithIndexOverhead) {
  MatrixFeatures f;
  f.m = 100;
  f.n = 100;
  f.nnz = 1000;
  f.mdim = 10;
  f.ndig = 199;
  // COO streams value + two indices per nonzero; CSR value + one index.
  EXPECT_GT(modeled_bytes(Format::kCOO, f), modeled_bytes(Format::kCSR, f));
  // DEN streams M*N values, no indices.
  EXPECT_DOUBLE_EQ(modeled_bytes(Format::kDEN, f), 100.0 * 100.0 * 8.0);
}

TEST(CostModel, UniformCalibrationRanksByPureFlops) {
  const CostCalibration cal = CostCalibration::uniform();
  MatrixFeatures f;
  f.m = 100;
  f.n = 50;
  f.nnz = 500;   // sparse: CSR/COO work = 500
  f.mdim = 40;   // ELL work = 4000
  f.ndig = 149;  // DIA work = 149 * 50 = 7450
  const CostPrediction p = predict_cost(f, cal);
  EXPECT_LT(p.seconds_of(Format::kCSR), p.seconds_of(Format::kDEN));
  EXPECT_LT(p.seconds_of(Format::kCSR), p.seconds_of(Format::kELL));
  EXPECT_LT(p.seconds_of(Format::kDEN), p.seconds_of(Format::kDIA));
  EXPECT_DOUBLE_EQ(p.seconds_of(Format::kCSR), p.seconds_of(Format::kCOO));
}

TEST(CostCalibration, MeasuredCostsArePositiveAndSane) {
  const CostCalibration& cal = CostCalibration::instance();
  for (Format f : kAllFormats) {
    EXPECT_GT(cal.seconds_per_op(f), 0.0) << format_name(f);
    EXPECT_LT(cal.seconds_per_op(f), 1e-5) << format_name(f);
  }
  const std::string s = cal.to_string();
  EXPECT_NE(s.find("CSR="), std::string::npos);
}

TEST(HeuristicSelector, BandedMatrixExcludesExplosiveFormats) {
  // A 3-diagonal matrix: DIA, CSR and COO all do ~nnz work; DEN does
  // M * N (~170x more). With uniform per-op costs the selector must pick a
  // compact format and rank DEN last. (DIA only *wins* once the measured
  // calibration rewards its index-free unit-stride loop; the uniform
  // calibration is a pure flop counter, and DIA work >= nnz by padding.)
  Rng rng(22);
  const CooMatrix coo = make_banded(512, 512, {0, 1, -1}, 1.0, rng);
  const ScheduleDecision d =
      HeuristicSelector(CostCalibration::uniform()).choose(
          extract_features(coo));
  EXPECT_NE(d.format, Format::kDEN);
  for (Format f : {Format::kCSR, Format::kCOO, Format::kDIA, Format::kELL}) {
    EXPECT_LT(d.score_of(f), d.score_of(Format::kDEN)) << format_name(f);
  }
  // DIA's modelled cost sits within padding distance of the winner.
  EXPECT_LT(d.score_of(Format::kDIA), 1.5 * d.score_of(d.format));
}

TEST(HeuristicSelector, PrefersCompactFormatForScatteredSparse) {
  Rng rng(23);
  const CooMatrix coo = test::random_matrix(400, 400, 0.01, rng);
  const ScheduleDecision d =
      HeuristicSelector(CostCalibration::uniform()).choose(
          extract_features(coo));
  // Uniform costs: CSR and COO tie at nnz flops; either is acceptable and
  // both beat DEN / DIA by orders of magnitude.
  EXPECT_TRUE(d.format == Format::kCSR || d.format == Format::kCOO);
}

TEST(HeuristicSelector, StorageGuardDisqualifiesExplosiveFormats) {
  // sector-like: very wide, scattered; DEN/DIA storage would be enormous.
  Rng rng(24);
  std::vector<index_t> lens(200, 5);
  const CooMatrix coo = make_random_sparse(200, 20000, lens, rng);
  const ScheduleDecision d =
      HeuristicSelector(CostCalibration::uniform()).choose(
          extract_features(coo), /*max_storage_ratio=*/8.0);
  EXPECT_TRUE(d.format == Format::kCSR || d.format == Format::kCOO ||
              d.format == Format::kELL);
}

TEST(EmpiricalAutotuner, PicksMeasurablyFastestFormat) {
  // Banded matrix: DIA or CSR should win; DEN must lose badly at 1%
  // density and the tuner must agree with its own measurements.
  Rng rng(25);
  const CooMatrix coo = make_banded(1024, 1024, {0, 2, -2, 5}, 0.9, rng);
  AutotuneOptions opts;
  opts.sample_rows = 0;  // full matrix
  const ScheduleDecision d = EmpiricalAutotuner(opts).choose(coo);
  // The decision must be the argmin of its own recorded scores.
  double best = 1e300;
  Format best_fmt = Format::kCSR;
  for (Format f : kAllFormats) {
    const double s = d.score_of(f);
    if (s < best) {
      best = s;
      best_fmt = f;
    }
  }
  EXPECT_EQ(d.format, best_fmt);
  EXPECT_LT(d.score_of(d.format), d.score_of(Format::kDEN));
}

TEST(EmpiricalAutotuner, WindowSamplingExtrapolatesToFullMatrix) {
  Rng rng(26);
  std::vector<index_t> lens(4000, 8);
  const CooMatrix coo = make_random_sparse(4000, 300, lens, rng);
  AutotuneOptions opts;
  opts.sample_rows = 500;
  const ScheduleDecision d = EmpiricalAutotuner(opts).choose(coo);
  // Extrapolated full-matrix seconds must be ~8x the window seconds, i.e.
  // positive and finite for the chosen format.
  EXPECT_GT(d.score_of(d.format), 0.0);
  EXPECT_TRUE(std::isfinite(d.score_of(d.format)));
}

TEST(Scheduler, PolicyDispatchWorks) {
  Rng rng(27);
  const CooMatrix coo = test::random_matrix(50, 50, 0.2, rng);

  SchedulerOptions fixed;
  fixed.policy = SchedulePolicy::kFixed;
  fixed.fixed_format = Format::kELL;
  EXPECT_EQ(LayoutScheduler(fixed).decide(coo).format, Format::kELL);

  SchedulerOptions heur;
  heur.policy = SchedulePolicy::kHeuristic;
  const ScheduleDecision hd = LayoutScheduler(heur).decide(coo);
  EXPECT_NE(hd.rationale.find("heuristic"), std::string::npos);

  SchedulerOptions emp;
  emp.policy = SchedulePolicy::kEmpirical;
  emp.autotune.sample_rows = 0;
  const ScheduleDecision ed = LayoutScheduler(emp).decide(coo);
  EXPECT_NE(ed.rationale.find("empirical"), std::string::npos);
}

TEST(Scheduler, ScheduleMaterializesDecidedFormat) {
  Rng rng(28);
  const CooMatrix coo = test::random_matrix(30, 30, 0.3, rng);
  SchedulerOptions opts;
  opts.policy = SchedulePolicy::kFixed;
  opts.fixed_format = Format::kDIA;
  const AnyMatrix m = LayoutScheduler(opts).schedule(coo);
  EXPECT_EQ(m.format(), Format::kDIA);
  EXPECT_EQ(m.nnz(), coo.nnz());
}

TEST(Scheduler, ParsePolicyNames) {
  EXPECT_EQ(parse_policy("empirical"), SchedulePolicy::kEmpirical);
  EXPECT_EQ(parse_policy("heuristic"), SchedulePolicy::kHeuristic);
  EXPECT_EQ(parse_policy("fixed"), SchedulePolicy::kFixed);
  EXPECT_THROW(parse_policy("oracle"), Error);
}

// ---------------------------------------------------------- makespan model

TEST(ParallelModel, BalancedRowsHaveNoImbalance) {
  const std::vector<index_t> rows(64, 10);
  const CostCalibration cal = CostCalibration::uniform();
  for (Format f : {Format::kCSR, Format::kDEN, Format::kELL, Format::kCOO}) {
    const MakespanResult r = simulate_makespan(f, rows, 128, 0, 8, cal);
    EXPECT_NEAR(r.imbalance, 1.0, 0.05) << format_name(f);
    EXPECT_GT(r.seconds, 0.0);
  }
}

TEST(ParallelModel, SkewHurtsCsrButNotCoo) {
  // One huge row among tiny ones: the paper's high-vdim regime.
  std::vector<index_t> rows(64, 1);
  rows[0] = 1000;
  const CostCalibration cal = CostCalibration::uniform();
  const MakespanResult csr =
      simulate_makespan(Format::kCSR, rows, 2000, 0, 16, cal);
  const MakespanResult coo =
      simulate_makespan(Format::kCOO, rows, 2000, 0, 16, cal);
  EXPECT_GT(csr.imbalance, 8.0);
  EXPECT_LT(coo.imbalance, 2.0);
  // Same total work, so COO's makespan is far smaller.
  EXPECT_DOUBLE_EQ(csr.total_ops, coo.total_ops);
  EXPECT_GT(csr.critical_ops, 2.0 * coo.critical_ops);
}

TEST(ParallelModel, CooSplitsEvenASingleGiantRow) {
  // COO's nonzero-level decomposition (segmented reduction) splits work
  // evenly even when one row holds everything — the property the paper's
  // Section III-B argument for high-vdim matrices rests on.
  std::vector<index_t> rows(16, 0);
  rows[7] = 640;
  const CostCalibration cal = CostCalibration::uniform();
  const MakespanResult coo =
      simulate_makespan(Format::kCOO, rows, 1000, 0, 8, cal);
  EXPECT_DOUBLE_EQ(coo.critical_ops, 80.0);
  const MakespanResult csr =
      simulate_makespan(Format::kCSR, rows, 1000, 0, 8, cal);
  EXPECT_DOUBLE_EQ(csr.critical_ops, 640.0);  // rows are atomic under CSR
}

TEST(ParallelModel, EllPaysMdimOnEveryRow) {
  std::vector<index_t> rows(32, 2);
  rows[5] = 100;
  const CostCalibration cal = CostCalibration::uniform();
  const MakespanResult ell =
      simulate_makespan(Format::kELL, rows, 200, 0, 1, cal);
  EXPECT_DOUBLE_EQ(ell.total_ops, 32.0 * 100.0);
}

TEST(ParallelModel, DiaStripeDecomposition) {
  const std::vector<index_t> rows(100, 3);
  const CostCalibration cal = CostCalibration::uniform();
  const MakespanResult r =
      simulate_makespan(Format::kDIA, rows, 100, /*ndig=*/10, /*threads=*/4,
                        cal);
  // 10 stripes of 100 slots over 4 threads -> critical path 3 stripes.
  EXPECT_DOUBLE_EQ(r.total_ops, 1000.0);
  EXPECT_DOUBLE_EQ(r.critical_ops, 300.0);
}

TEST(ParallelModel, MoreThreadsNeverIncreaseMakespan) {
  Rng rng(29);
  std::vector<index_t> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(rng.uniform_int(1, 50));
  }
  const CostCalibration cal = CostCalibration::uniform();
  for (Format f : {Format::kCSR, Format::kCOO, Format::kELL}) {
    double prev = 1e300;
    for (int threads : {1, 2, 4, 8, 16}) {
      const MakespanResult r = simulate_makespan(f, rows, 64, 0, threads, cal);
      EXPECT_LE(r.critical_ops, prev + 1e-9)
          << format_name(f) << " threads " << threads;
      prev = r.critical_ops;
    }
  }
}

}  // namespace
}  // namespace ls
