// Tests of the serving subsystem: wire protocol, micro-batcher, engine
// semantics (admission control, hot reload, error contract) and the socket
// front-end.
#include <gtest/gtest.h>
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "svm/serialize.hpp"

namespace ls::serve {
namespace {

// --- shared fixtures ---------------------------------------------------

/// Hand-built Gaussian model over `d` features.
SvmModel make_model(index_t n_sv, index_t d, std::uint64_t seed,
                    double coef_scale = 1.0) {
  Rng rng(seed);
  SvmModel model;
  model.kernel.type = KernelType::kGaussian;
  model.kernel.gamma = 0.5;
  model.rho = 0.0;  // keeps coef-scaling FP-exact (see HotReload test)
  model.num_features = d;
  for (index_t s = 0; s < n_sv; ++s) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(0.3)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    model.support_vectors.emplace_back(std::move(idx), std::move(val));
    model.coef.push_back((s % 2 == 0 ? 1.0 : -1.0) * coef_scale);
  }
  return model;
}

std::vector<SparseVector> make_requests(index_t count, index_t d,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SparseVector> rows;
  for (index_t r = 0; r < count; ++r) {
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (rng.bernoulli(0.3)) {
        idx.push_back(c);
        val.push_back(rng.normal());
      }
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(1.0);
    }
    rows.emplace_back(std::move(idx), std::move(val));
  }
  return rows;
}

std::string temp_model_path(const std::string& name) {
  return ::testing::TempDir() + "ls_serve_" + name;
}

/// Deterministic engine configuration for value-comparison tests: fixed
/// CSR layout, so two engines always score through identical kernels.
ServeOptions fixed_layout_options() {
  ServeOptions opts;
  opts.sched.policy = SchedulePolicy::kFixed;
  opts.sched.fixed_format = Format::kCSR;
  return opts;
}

// --- protocol: pure encode/decode --------------------------------------

TEST(ServeProtocol, PredictRequestRoundTrip) {
  const SparseVector x({1, 5, 9}, {0.5, -2.0, 3.25});
  const std::string payload = encode_predict_request("mymodel", x);
  std::string model;
  SparseVector decoded;
  decode_predict_request(payload, model, decoded);
  EXPECT_EQ(model, "mymodel");
  ASSERT_EQ(decoded.nnz(), 3);
  EXPECT_EQ(decoded.indices()[1], 5);
  EXPECT_EQ(decoded.values()[2], 3.25);
}

TEST(ServeProtocol, EmptyVectorRoundTrip) {
  const SparseVector x;
  const std::string payload = encode_predict_request("m", x);
  std::string model;
  SparseVector decoded;
  decode_predict_request(payload, model, decoded);
  EXPECT_EQ(model, "m");
  EXPECT_TRUE(decoded.empty());
}

TEST(ServeProtocol, PredictResponseRoundTrip) {
  const PredictResult r{Status::kOk, -1.25, -1.0};
  const PredictResult back =
      decode_predict_response(encode_predict_response(r));
  EXPECT_EQ(back.status, Status::kOk);
  EXPECT_EQ(back.decision, -1.25);
  EXPECT_EQ(back.label, -1.0);
}

TEST(ServeProtocol, StatusResponseRoundTrip) {
  const std::string payload =
      encode_status_response(Status::kOverloaded, "queue full");
  Status s = Status::kOk;
  std::string text;
  decode_status_response(payload, s, text);
  EXPECT_EQ(s, Status::kOverloaded);
  EXPECT_EQ(text, "queue full");
}

TEST(ServeProtocol, ReloadRequestRoundTrip) {
  EXPECT_EQ(decode_reload_request(encode_reload_request("demo")), "demo");
}

TEST(ServeProtocol, TruncatedPayloadThrows) {
  const SparseVector x({1, 2}, {1.0, 2.0});
  std::string payload = encode_predict_request("model", x);
  payload.resize(payload.size() - 3);  // cut mid-value
  std::string model;
  SparseVector decoded;
  EXPECT_THROW(decode_predict_request(payload, model, decoded), Error);
}

TEST(ServeProtocol, TrailingGarbageThrows) {
  std::string payload = encode_reload_request("demo");
  payload += "extra";
  EXPECT_THROW(decode_reload_request(payload), Error);
}

TEST(ServeProtocol, UnsortedIndicesThrow) {
  // Forge a predict request whose indices are not strictly increasing
  // (SparseVector itself refuses to build one, so patch the bytes).
  const SparseVector x({1, 2}, {1.0, 2.0});
  std::string payload = encode_predict_request("m", x);
  // Layout: u16 name_len, name "m", f64 deadline_ms, u32 nnz, then
  // (u32 idx, f64 val) pairs; the second pair's index starts at offset
  // 2 + 1 + 8 + 4 + 12.
  const std::size_t second_idx = 2 + 1 + 8 + 4 + 12;
  const std::uint32_t dup = 1;
  std::memcpy(payload.data() + second_idx, &dup, sizeof(dup));
  std::string model;
  SparseVector decoded;
  EXPECT_THROW(decode_predict_request(payload, model, decoded), Error);
}

TEST(ServeProtocol, StatusNamesAreStable) {
  EXPECT_STREQ(status_name(Status::kOk), "ok");
  EXPECT_STREQ(status_name(Status::kOverloaded), "overloaded");
}

// --- protocol: framed fd I/O -------------------------------------------

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(ServeProtocol, FrameRoundTripOverSocket) {
  SocketPair sp;
  write_frame(sp.a, MsgType::kPingReq, "hello");
  Frame f;
  ASSERT_TRUE(read_frame(sp.b, f));
  EXPECT_EQ(f.type, MsgType::kPingReq);
  EXPECT_EQ(f.payload, "hello");
}

TEST(ServeProtocol, CleanEofReturnsFalse) {
  SocketPair sp;
  ::close(sp.a);
  sp.a = -1;
  Frame f;
  EXPECT_FALSE(read_frame(sp.b, f));
}

TEST(ServeProtocol, BadMagicThrows) {
  SocketPair sp;
  const char garbage[12] = {'n', 'o', 'p', 'e', 1, 1, 0, 0, 0, 0, 0, 0};
  ASSERT_EQ(::write(sp.a, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  Frame f;
  EXPECT_THROW(read_frame(sp.b, f), Error);
}

TEST(ServeProtocol, OversizedPayloadRejectedBeforeAllocation) {
  SocketPair sp;
  // Forge a header announcing a payload beyond kMaxPayload.
  std::string header;
  const std::uint32_t magic = kMagic;
  const std::uint8_t version = kVersion;
  const std::uint8_t type = static_cast<std::uint8_t>(MsgType::kPingReq);
  const std::uint16_t reserved = 0;
  const std::uint32_t len = kMaxPayload + 1;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.append(reinterpret_cast<const char*>(&version), 1);
  header.append(reinterpret_cast<const char*>(&type), 1);
  header.append(reinterpret_cast<const char*>(&reserved), 2);
  header.append(reinterpret_cast<const char*>(&len), 4);
  ASSERT_EQ(::write(sp.a, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  Frame f;
  EXPECT_THROW(read_frame(sp.b, f), Error);
}

// --- engine: request semantics -----------------------------------------

TEST(ServeEngine, PredictMatchesDirectModelEvaluation) {
  const std::string path = temp_model_path("basic.txt");
  const SvmModel model = make_model(12, 24, 0xA11CE);
  save_model_file(path, model);

  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", path);
  engine.start();
  for (const SparseVector& x : make_requests(16, 24, 0xB0B)) {
    const PredictResult r = engine.predict("m", x);
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_NEAR(r.decision, model.decision(x), 1e-9);
    EXPECT_EQ(r.label, r.decision >= 0 ? 1.0 : -1.0);
  }
  engine.stop();
}

TEST(ServeEngine, UnknownModelIsRejected) {
  ServeEngine engine;
  engine.start();
  const PredictResult r = engine.predict("nope", SparseVector({0}, {1.0}));
  EXPECT_EQ(r.status, Status::kUnknownModel);
  EXPECT_EQ(engine.stats().unknown_model_total, 1);
}

TEST(ServeEngine, OversizedFeatureIndexIsRejectedNotScored) {
  const std::string path = temp_model_path("dim.txt");
  save_model_file(path, make_model(8, 16, 0xD1));
  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", path);
  engine.start();
  // Feature 16 is one past the model's width — scattering it would write
  // out of bounds; the engine must answer kBadDimension instead.
  const PredictResult r =
      engine.predict("m", SparseVector({3, 16}, {1.0, 1.0}));
  EXPECT_EQ(r.status, Status::kBadDimension);
  EXPECT_EQ(engine.stats().bad_dimension_total, 1);
  // An in-range request still works.
  EXPECT_EQ(engine.predict("m", SparseVector({15}, {1.0})).status,
            Status::kOk);
}

TEST(ServeEngine, RequestsAfterStopAreShuttingDown) {
  const std::string path = temp_model_path("stopped.txt");
  save_model_file(path, make_model(4, 8, 0x51));
  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", path);
  engine.start();
  engine.stop();
  EXPECT_EQ(engine.predict("m", SparseVector({0}, {1.0})).status,
            Status::kShuttingDown);
}

TEST(ServeEngine, UnloadedModelBecomesUnknown) {
  const std::string path = temp_model_path("unload.txt");
  save_model_file(path, make_model(4, 8, 0x52));
  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", path);
  engine.start();
  EXPECT_EQ(engine.predict("m", SparseVector({0}, {1.0})).status, Status::kOk);
  EXPECT_TRUE(engine.unload_model("m"));
  EXPECT_FALSE(engine.unload_model("m"));
  EXPECT_EQ(engine.predict("m", SparseVector({0}, {1.0})).status,
            Status::kUnknownModel);
}

// The micro-batching correctness keystone: scores must not depend on how
// requests were coalesced. A single-threaded batch=1 engine and a
// concurrent batch=64 engine must produce bit-identical decisions (the
// per-lane bit-identity of multiply_dense_batch, PR 3).
TEST(ServeEngine, ConcurrentBatchedScoresBitIdenticalToSequential) {
  const std::string path = temp_model_path("bitident.txt");
  save_model_file(path, make_model(20, 40, 0xB17));
  const std::vector<SparseVector> requests = make_requests(64, 40, 0x1DE);

  ServeOptions seq = fixed_layout_options();
  seq.workers = 1;
  seq.batcher.max_batch = 1;
  ServeEngine sequential(seq);
  sequential.load_model("m", path);
  sequential.start();
  std::vector<real_t> expected;
  for (const SparseVector& x : requests) {
    const PredictResult r = sequential.predict("m", x);
    ASSERT_EQ(r.status, Status::kOk);
    expected.push_back(r.decision);
  }
  sequential.stop();

  ServeOptions par = fixed_layout_options();
  par.workers = 4;
  par.batcher.max_batch = 64;
  par.batcher.deadline_ms = 0.0;  // greedy: maximal batching under load
  ServeEngine batched(par);
  batched.load_model("m", path);
  batched.start();
  std::vector<real_t> got(requests.size());
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      for (std::size_t r = static_cast<std::size_t>(t); r < requests.size();
           r += 8) {
        const PredictResult res = batched.predict("m", requests[r]);
        ASSERT_EQ(res.status, Status::kOk);
        got[r] = res.decision;
      }
    });
  }
  for (std::thread& th : clients) th.join();
  const double occupancy = batched.stats().mean_batch_occupancy();
  batched.stop();

  for (std::size_t r = 0; r < requests.size(); ++r) {
    EXPECT_EQ(got[r], expected[r]) << "request " << r;
  }
  EXPECT_GE(occupancy, 1.0);
}

// --- engine: batcher flush policy --------------------------------------

TEST(ServeEngine, DeadlineFlushCoalescesConcurrentRequests) {
  const std::string path = temp_model_path("deadline.txt");
  save_model_file(path, make_model(8, 16, 0xDEAD));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.max_batch = 64;
  opts.batcher.deadline_ms = 50.0;  // far above the submit spread
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(
        engine.predict_async("m", SparseVector({i}, {1.0})));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().status, Status::kOk);

  // All three waited out the deadline together: one flush, occupancy 3.
  const ServeStats s = engine.stats();
  EXPECT_EQ(s.batches_total, 1);
  EXPECT_EQ(s.batched_rows_total, 3);
  engine.stop();
}

TEST(ServeEngine, GreedyModeDoesNotDelaySoloRequests) {
  const std::string path = temp_model_path("greedy.txt");
  save_model_file(path, make_model(8, 16, 0x64EE));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.max_batch = 64;
  opts.batcher.deadline_ms = 0.0;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(engine.predict("m", SparseVector({1}, {1.0})).status, Status::kOk);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  // A greedy flush must not wait for more traffic. Generous bound: the
  // score itself is microseconds.
  EXPECT_LT(ms, 500.0);
  engine.stop();
}

// --- engine: admission control -----------------------------------------

TEST(ServeEngine, QueueFullSubmissionsAreShed) {
  const std::string path = temp_model_path("shed.txt");
  save_model_file(path, make_model(8, 16, 0x5ED));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.max_batch = 1;  // one request per (delayed) flush
  opts.batcher.deadline_ms = 0.0;
  opts.batcher.max_queue = 2;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  // Each scored batch sleeps 30 ms, so 20 rapid submissions overwhelm a
  // queue of 2: most must be shed at the door.
  failpoint::Scoped slow("serve.batch.compute",
                         {failpoint::Action::kDelay, 30, 0, -1});
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(engine.predict_async("m", SparseVector({1}, {1.0})));
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    const Status s = f.get().status;
    if (s == Status::kOk) ++ok;
    if (s == Status::kOverloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, 20);
  EXPECT_GE(shed, 10);
  EXPECT_GE(ok, 1);
  EXPECT_EQ(engine.stats().shed_queue_total, shed);
  engine.stop();
}

TEST(ServeEngine, StaleRequestsAreShedAtDequeue) {
  const std::string path = temp_model_path("stale.txt");
  save_model_file(path, make_model(8, 16, 0x57A1E));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.max_batch = 1;
  opts.batcher.deadline_ms = 0.0;
  opts.latency_budget_ms = 5.0;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  // The worker spends 40 ms per batch; queued requests age past the 5 ms
  // budget and must be dropped at dequeue instead of scored.
  failpoint::Scoped slow("serve.batch.compute",
                         {failpoint::Action::kDelay, 40, 0, -1});
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(engine.predict_async("m", SparseVector({1}, {1.0})));
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    const Status s = f.get().status;
    if (s == Status::kOk) ++ok;
    if (s == Status::kOverloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, 6);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(engine.stats().shed_deadline_total, shed);
  engine.stop();
}

// --- engine: hot reload -------------------------------------------------

// Reload swaps an immutable LoadedModel behind a shared_ptr, so every
// response must come entirely from one version — never a torn mix. Version
// B's coefficients are exactly 2x version A's (rho = 0), and scaling by a
// power of two is FP-exact, so every decision must equal v or exactly 2v.
TEST(ServeEngine, HotReloadNeverTearsInFlightPredictions) {
  const std::string path = temp_model_path("reload.txt");
  const SvmModel a = make_model(10, 20, 0x4E10, 1.0);
  const SvmModel b = make_model(10, 20, 0x4E10, 2.0);  // same SVs, coef x2
  save_model_file(path, a);

  ServeOptions opts = fixed_layout_options();
  opts.workers = 2;
  opts.batcher.max_batch = 8;
  opts.batcher.deadline_ms = 0.0;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  const std::vector<SparseVector> requests = make_requests(8, 20, 0x77);
  std::vector<real_t> v_a;
  for (const SparseVector& x : requests) {
    const PredictResult r = engine.predict("m", x);
    ASSERT_EQ(r.status, Status::kOk);
    v_a.push_back(r.decision);
  }

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 4; ++t) {
    hammers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (std::size_t r = 0; r < requests.size(); ++r) {
          const PredictResult res = engine.predict("m", requests[r]);
          if (res.status != Status::kOk) continue;  // shutdown race only
          if (res.decision != v_a[r] && res.decision != 2.0 * v_a[r]) {
            torn.fetch_add(1);
          }
        }
      }
    });
  }
  for (int reload = 0; reload < 10; ++reload) {
    save_model_file(path, reload % 2 == 0 ? b : a);
    engine.reload_model("m");
  }
  done.store(true, std::memory_order_release);
  for (std::thread& th : hammers) th.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(engine.stats().reloads_total, 10);
  EXPECT_EQ(engine.model("m")->version, 11);
  engine.stop();
}

TEST(ServeEngine, FailedReloadKeepsPreviousVersionServing) {
  const std::string path = temp_model_path("failedreload.txt");
  save_model_file(path, make_model(6, 12, 0xFA11));
  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", path);
  engine.start();

  {
    // Deserialization blows up mid-reload; the registry must be untouched.
    failpoint::Scoped broken("serve.model.load");
    EXPECT_THROW(engine.reload_model("m"), Error);
  }
  EXPECT_EQ(engine.model("m")->version, 1);
  EXPECT_EQ(engine.predict("m", SparseVector({0}, {1.0})).status, Status::kOk);
  engine.stop();
}

// --- engine: stats under concurrency ------------------------------------

TEST(ServeEngine, StatsSnapshotsAreConsistentUnderLoad) {
  const std::string path = temp_model_path("stats.txt");
  save_model_file(path, make_model(8, 16, 0x57A7));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 2;
  opts.batcher.deadline_ms = 0.0;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  std::atomic<bool> done{false};
  std::thread reader([&] {
    // Hammer the snapshot path while workers score — the acquire/release
    // discipline makes this TSan-clean and monotone.
    std::int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const ServeStats s = engine.stats();
      EXPECT_GE(s.ok_total, last);
      EXPECT_LE(s.ok_total, s.requests_total);
      last = s.ok_total;
    }
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        engine.predict("m", SparseVector({1}, {0.5}));
      }
    });
  }
  for (std::thread& th : clients) th.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const ServeStats s = engine.stats();
  EXPECT_EQ(s.ok_total, 800);
  EXPECT_EQ(s.requests_total, 800);
  engine.stop();
}

// --- engine: version discipline under concurrent reloads -----------------

TEST(ServeEngine, ConcurrentReloadsMintStrictlyIncreasingVersions) {
  const std::string path = temp_model_path("versionrace.txt");
  save_model_file(path, make_model(6, 12, 0xBEEF));
  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", path);
  engine.start();

  constexpr int kThreads = 4;
  constexpr int kLoadsPerThread = 16;
  std::atomic<bool> done{false};
  std::atomic<int> regressions{0};
  std::thread watcher([&] {
    // The hosted version must never move backwards, no matter how the
    // loader threads interleave (versions are reserved under the registry
    // lock and stale builds are rejected at put).
    std::int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto m = engine.model("m");
      if (m->version < last) regressions.fetch_add(1);
      last = m->version;
    }
  });
  std::vector<std::thread> loaders;
  for (int t = 0; t < kThreads; ++t) {
    loaders.emplace_back([&] {
      for (int i = 0; i < kLoadsPerThread; ++i) {
        engine.load_model("m", path);
      }
    });
  }
  for (std::thread& th : loaders) th.join();
  done.store(true, std::memory_order_release);
  watcher.join();

  // Every load minted a distinct version; the survivor is the highest one,
  // with no duplicates and no older build clobbering a newer one.
  EXPECT_EQ(regressions.load(), 0);
  EXPECT_EQ(engine.model("m")->version, 1 + kThreads * kLoadsPerThread);
  EXPECT_EQ(engine.stats().reloads_total, kThreads * kLoadsPerThread);
  engine.stop();
}

// --- engine: drain predicate vs in-flight batches ------------------------

TEST(ServeEngine, IdleNeverTrueWhileBatchIsInFlight) {
  const std::string path = temp_model_path("inflight.txt");
  save_model_file(path, make_model(6, 12, 0x1F17));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.deadline_ms = 0.0;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  // Widen the pop-to-scored window: the worker sleeps inside score_batch
  // while the queue is already empty, which is exactly the interval a
  // popped-but-uncounted batch used to fall through the drain predicate.
  failpoint::Spec slow;
  slow.action = failpoint::Action::kDelay;
  slow.delay_ms = 10;
  failpoint::Scoped scoped("serve.batch.compute", slow);

  for (int iter = 0; iter < 20; ++iter) {
    auto fut = engine.predict_async("m", SparseVector({0}, {1.0}));
    // idle() may only flip once the batch is fully scored: the in-flight
    // claim is taken in the same critical section that pops the queue, and
    // the promise is fulfilled before batch_done() releases it. So any
    // observation of idle()==true implies the future is already resolved —
    // sampling idle FIRST makes this race-free to assert. (The old atomic
    // was incremented after next_batch returned, leaving a window where
    // idle()==true with the batch popped but unscored.)
    for (;;) {
      const bool idle = engine.idle();
      const bool ready = fut.wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready;
      if (idle) ASSERT_TRUE(ready);
      if (ready) break;
    }
    EXPECT_EQ(fut.get().status, Status::kOk);
  }
  engine.stop();
}

// --- batcher: cohort-aware full test -------------------------------------

TEST(ServeBatcher, MixedModelQueueDoesNotFlushTinyCohortEarly) {
  const std::string p1 = temp_model_path("cohort1.txt");
  const std::string p2 = temp_model_path("cohort2.txt");
  save_model_file(p1, make_model(4, 8, 0xC0A));
  save_model_file(p2, make_model(4, 8, 0xC0B));
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  sched.fixed_format = Format::kCSR;
  const auto m1 = std::make_shared<const LoadedModel>("m1", p1, sched, 8, 1);
  const auto m2 = std::make_shared<const LoadedModel>("m2", p2, sched, 8, 1);

  BatcherOptions opts;
  opts.max_batch = 4;
  opts.deadline_ms = 80.0;
  MicroBatcher batcher(opts);

  // Interleaved two-model traffic: 6 queued requests cross max_batch, but
  // neither model's cohort is full. The raw-depth full test used to flush
  // a 3-request cohort immediately here; the cohort-aware test waits out
  // the deadline instead, giving the batch time to actually fill.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0));
    ASSERT_TRUE(batcher.submit(m2, SparseVector({0}, {1.0}), 0.0));
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<BatchRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(batch.size(), 3u);
  for (const BatchRequest& r : batch) EXPECT_EQ(r.model.get(), m1.get());
  EXPECT_GE(waited_ms, 0.5 * opts.deadline_ms);
  batcher.batch_done();
  for (BatchRequest& r : batch) {
    r.done.set_value(PredictResult{Status::kOk, 0.0, 0.0});
  }
  batcher.stop();

  // A genuinely full cohort still flushes with no deadline wait, even when
  // its requests are interleaved with another model's.
  MicroBatcher batcher2(opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher2.submit(m2, SparseVector({0}, {1.0}), 0.0));
    if (i < 3) {
      ASSERT_TRUE(batcher2.submit(m1, SparseVector({0}, {1.0}), 0.0));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher2.next_batch(batch));
  const double fast_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t1)
                             .count();
  EXPECT_EQ(batch.size(), 4u);
  for (const BatchRequest& r : batch) EXPECT_EQ(r.model.get(), m2.get());
  EXPECT_LT(fast_ms, 0.5 * opts.deadline_ms);
  batcher2.batch_done();
  for (BatchRequest& r : batch) {
    r.done.set_value(PredictResult{Status::kOk, 0.0, 0.0});
  }
  batcher2.stop();
}

TEST(ServeBatcher, CohortCountsSurvivePartialExtractionAndReprepend) {
  const std::string p1 = temp_model_path("cohortcnt1.txt");
  const std::string p2 = temp_model_path("cohortcnt2.txt");
  save_model_file(p1, make_model(4, 8, 0xC1A));
  save_model_file(p2, make_model(4, 8, 0xC1B));
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  sched.fixed_format = Format::kCSR;
  const auto m1 = std::make_shared<const LoadedModel>("m1", p1, sched, 8, 1);
  const auto m2 = std::make_shared<const LoadedModel>("m2", p2, sched, 8, 1);

  // m1 holds the front with a partial cohort; m2's cohort behind it is
  // already full. The first flush takes m1 after the deadline and
  // re-prepends m2's requests — whose per-model count must survive that
  // round-trip so the second flush fires on the "full" fast path, not the
  // deadline.
  BatcherOptions opts;
  opts.max_batch = 4;
  opts.deadline_ms = 80.0;
  MicroBatcher batcher(opts);
  ASSERT_TRUE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(m2, SparseVector({0}, {1.0}), 0.0));
    if (i == 0) {
      ASSERT_TRUE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0));
    }
  }

  std::vector<BatchRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);
  for (const BatchRequest& r : batch) EXPECT_EQ(r.model.get(), m1.get());
  batcher.batch_done();
  for (BatchRequest& r : batch) {
    r.done.set_value(PredictResult{Status::kOk, 0.0, 0.0});
  }

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  const double fast_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  EXPECT_EQ(batch.size(), 4u);
  for (const BatchRequest& r : batch) EXPECT_EQ(r.model.get(), m2.get());
  EXPECT_LT(fast_ms, 0.5 * opts.deadline_ms);
  batcher.batch_done();
  for (BatchRequest& r : batch) {
    r.done.set_value(PredictResult{Status::kOk, 0.0, 0.0});
  }
  batcher.stop();
}

// --- socket server end-to-end -------------------------------------------

struct ServerFixture {
  std::string model_path;
  SvmModel model;
  ServeEngine engine;
  ServeServer server;

  explicit ServerFixture(ServerOptions listen)
      : model_path(temp_model_path("server.txt")),
        model(make_model(10, 20, 0x5E4E)),
        engine(fixed_layout_options()),
        server(engine, std::move(listen)) {
    save_model_file(model_path, model);
    engine.load_model("m", model_path);
    engine.start();
    server.start();
  }
  ~ServerFixture() {
    server.stop();
    engine.stop();
  }
};

std::string unique_socket_path(const char* tag) {
  return ::testing::TempDir() + "ls_serve_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServeServer, UnixSocketEndToEnd) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("e2e");
  ServerFixture fx(listen);

  ServeClient client = ServeClient::connect_unix(listen.unix_path);
  EXPECT_TRUE(client.ping());

  for (const SparseVector& x : make_requests(8, 20, 0xC11)) {
    const PredictResult wire = client.predict("m", x);
    ASSERT_EQ(wire.status, Status::kOk);
    // The wire path must agree with the in-process path bit-for-bit: same
    // engine, same layout, the protocol only moves doubles around.
    const PredictResult local = fx.engine.predict("m", x);
    EXPECT_EQ(wire.decision, local.decision);
  }

  const std::string stats = client.stats();
  EXPECT_NE(stats.find("requests_total"), std::string::npos);
  EXPECT_NE(stats.find("model m version 1"), std::string::npos);

  std::string msg;
  EXPECT_EQ(client.reload("m", &msg), Status::kOk);
  EXPECT_EQ(client.reload("ghost", &msg), Status::kInternal);
  EXPECT_EQ(client.predict("ghost", SparseVector({0}, {1.0})).status,
            Status::kUnknownModel);
}

TEST(ServeServer, TcpLoopbackEndToEnd) {
  ServerOptions listen;
  listen.tcp_port = 0;  // kernel-assigned
  ServerFixture fx(listen);
  ASSERT_GT(fx.server.port(), 0);

  ServeClient client = ServeClient::connect_tcp(fx.server.port());
  EXPECT_TRUE(client.ping());
  const PredictResult r =
      client.predict("m", SparseVector({2, 7}, {1.0, -1.0}));
  EXPECT_EQ(r.status, Status::kOk);
}

TEST(ServeServer, ShutdownRequestStopsWait) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("shutdown");
  ServerFixture fx(listen);

  std::thread waiter([&] { fx.server.wait(); });
  ServeClient client = ServeClient::connect_unix(listen.unix_path);
  EXPECT_EQ(client.shutdown_server(), Status::kOk);
  waiter.join();  // wait() must return once the shutdown frame is handled
}

TEST(ServeServer, ConcurrentWireClientsAllSucceed) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("conc");
  ServerFixture fx(listen);
  const std::vector<SparseVector> requests = make_requests(32, 20, 0xCC);

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      ServeClient c = ServeClient::connect_unix(listen.unix_path);
      for (const SparseVector& x : requests) {
        if (c.predict("m", x).status != Status::kOk) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : clients) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(fx.engine.stats().ok_total, 6 * 32);
}

TEST(ServeServer, GarbageBytesGetBadFrameAndOnlyThatConnectionDies) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("garbage");
  ServerFixture fx(listen);

  // Hand-rolled client sending 12 bytes of garbage where a header belongs.
  ServeClient good = ServeClient::connect_unix(listen.unix_path);
  ServeClient bad = ServeClient::connect_unix(listen.unix_path);
  // Reach into the protocol layer directly: connect, then write junk.
  // (ServeClient has no raw-write API, so open a separate raw socket.)
  bad.close();
  int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, listen.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[12] = {'x', 'x', 'x', 'x', 9, 9, 9, 9, 9, 9, 9, 9};
  ASSERT_EQ(::write(raw, junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  // The server answers kBadFrame (best effort) and closes the connection.
  Frame reply;
  bool got_reply = false;
  try {
    got_reply = read_frame(raw, reply);
  } catch (const Error&) {
    // A torn read is acceptable: the server may close first.
  }
  if (got_reply) {
    Status s = Status::kOk;
    std::string text;
    decode_status_response(reply.payload, s, text);
    EXPECT_EQ(s, Status::kBadFrame);
  }
  ::close(raw);

  // The other client is unaffected.
  EXPECT_TRUE(good.ping());
  EXPECT_EQ(good.predict("m", SparseVector({1}, {1.0})).status, Status::kOk);
}

TEST(ServeServer, ConnectionReadFaultDegradesGracefully) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("readfault");
  ServerFixture fx(listen);

  {
    // The first connection's first read throws (injected I/O error); the
    // handler drops that client and the server keeps accepting. Depending
    // on timing the doomed client sees either a best-effort kBadFrame
    // answer (ping() returns false) or a torn connection (ping() throws).
    failpoint::Scoped fault("serve.conn.read",
                            {failpoint::Action::kError, 0, 0, 1});
    ServeClient doomed = ServeClient::connect_unix(listen.unix_path);
    bool failed = false;
    try {
      failed = !doomed.ping();
    } catch (const Error&) {
      failed = true;
    }
    EXPECT_TRUE(failed);
  }
  ServeClient healthy = ServeClient::connect_unix(listen.unix_path);
  EXPECT_TRUE(healthy.ping());
}

TEST(ServeServer, ConnectionWriteFaultDropsOnlyThatClient) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("writefault");
  ServerFixture fx(listen);

  {
    failpoint::Scoped fault("serve.conn.write",
                            {failpoint::Action::kError, 0, 0, 1});
    ServeClient doomed = ServeClient::connect_unix(listen.unix_path);
    EXPECT_THROW(doomed.predict("m", SparseVector({1}, {1.0})), Error);
  }
  ServeClient healthy = ServeClient::connect_unix(listen.unix_path);
  EXPECT_EQ(healthy.predict("m", SparseVector({1}, {1.0})).status,
            Status::kOk);
}

// --- protocol: deadlines and torn/partial frames ------------------------

TEST(ServeProtocol, PredictRequestCarriesDeadline) {
  const SparseVector x({1, 3}, {1.0, -1.0});
  const std::string payload = encode_predict_request("m", x, 123.5);
  std::string model;
  SparseVector decoded;
  double deadline = 0.0;
  decode_predict_request(payload, model, decoded, &deadline);
  EXPECT_EQ(model, "m");
  EXPECT_EQ(deadline, 123.5);
  ASSERT_EQ(decoded.nnz(), 2);
  // Callers that don't care may omit the out-param; the field is still
  // consumed so the vector decodes correctly.
  decode_predict_request(payload, model, decoded);
  ASSERT_EQ(decoded.nnz(), 2);
  EXPECT_EQ(decoded.values()[1], -1.0);
}

TEST(ServeProtocol, HalfFrameStallHitsReadTimeout) {
  SocketPair sp;
  // A valid header prefix that then stalls forever: classic slow-loris.
  const unsigned char half[6] = {0x4C, 0x53, 0x52, 0x56, kVersion, 5};
  ASSERT_EQ(::write(sp.a, half, sizeof(half)),
            static_cast<ssize_t>(sizeof(half)));
  FrameTimeouts t;
  t.read_ms = 50.0;
  Frame f;
  try {
    read_frame(sp.b, f, t);
    FAIL() << "read_frame should have timed out on the half frame";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTimeout);
  }
}

TEST(ServeProtocol, SilentConnectionHitsIdleTimeout) {
  SocketPair sp;
  FrameTimeouts t;
  t.idle_ms = 50.0;
  Frame f;
  try {
    read_frame(sp.b, f, t);
    FAIL() << "read_frame should have hit the idle timeout";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kIdle);
  }
}

TEST(ServeProtocol, MidFrameDisconnectIsClosed) {
  SocketPair sp;
  // Full header announcing 100 payload bytes, but only 10 arrive before
  // the peer dies.
  std::string bytes;
  const std::uint32_t magic = kMagic;
  bytes.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  bytes.push_back(static_cast<char>(kVersion));
  bytes.push_back(static_cast<char>(MsgType::kPingReq));
  bytes.push_back(0);
  bytes.push_back(0);  // reserved
  const std::uint32_t len = 100;
  bytes.append(reinterpret_cast<const char*>(&len), sizeof(len));
  bytes.append(10, 'x');
  ASSERT_EQ(::write(sp.a, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
  ::close(sp.a);
  sp.a = -1;
  Frame f;
  try {
    read_frame(sp.b, f);
    FAIL() << "mid-frame EOF must not look like a clean close";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kClosed);
  }
}

TEST(ServeProtocol, PartialHeaderThenCloseIsClosed) {
  SocketPair sp;
  const unsigned char some[6] = {0x4C, 0x53, 0x52, 0x56, kVersion, 5};
  ASSERT_EQ(::write(sp.a, some, sizeof(some)),
            static_cast<ssize_t>(sizeof(some)));
  ::close(sp.a);
  sp.a = -1;
  Frame f;
  try {
    read_frame(sp.b, f);
    FAIL() << "EOF inside the header must not look like a clean close";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kClosed);
  }
}

TEST(ServeProtocol, TornFrameFailpointTearsMidFrame) {
  SocketPair sp;
  failpoint::Scoped tear("serve.frame.partial",
                         {failpoint::Action::kError, 0, 0, 1});
  try {
    write_frame(sp.a, MsgType::kPingReq, "payload");
    FAIL() << "write_frame should have torn the frame";
  } catch (const IoError& e) {
    EXPECT_EQ(e.kind(), IoErrorKind::kTorn);
  }
  // The peer received only a prefix of the frame; with the writer gone the
  // stream is unrecoverable.
  ::close(sp.a);
  sp.a = -1;
  Frame f;
  EXPECT_THROW(read_frame(sp.b, f), Error);
}

TEST(ServeProtocol, EintrDuringBlockedReadIsRetried) {
  // Install a do-nothing SIGUSR1 handler WITHOUT SA_RESTART so blocking
  // syscalls genuinely return EINTR instead of auto-resuming.
  struct sigaction sa{};
  sa.sa_handler = +[](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  std::atomic<bool> got{false};
  std::thread reader([&] {
    Frame f;
    if (read_frame(sp.b, f)) {
      got.store(f.type == MsgType::kPingReq && f.payload == "eintr");
    }
  });
  // Let the reader park inside poll(), then interrupt it a few times —
  // each EINTR must be absorbed, not surfaced as a failure.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  for (int i = 0; i < 3; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  write_frame(sp.a, MsgType::kPingReq, "eintr");
  reader.join();
  EXPECT_TRUE(got.load());
  ::sigaction(SIGUSR1, &old, nullptr);
}

// --- engine: deadline propagation + health ------------------------------

TEST(ServeEngine, ExpiredClientDeadlineIsShedBeforeCompute) {
  const std::string path = temp_model_path("deadline.txt");
  save_model_file(path, make_model(6, 12, 0xDEAD));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.max_batch = 1;
  opts.batcher.deadline_ms = 0.0;  // greedy flush
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  // The worker grabs the first (deadline-free) request and stalls in
  // compute; the second request's 5 ms budget expires while it queues, so
  // it must be shed at dequeue without any compute spent on it.
  failpoint::Scoped slow("serve.batch.compute",
                         {failpoint::Action::kDelay, 60, 0, -1});
  auto f1 = engine.predict_async("m", SparseVector({1}, {1.0}));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto f2 = engine.predict_async("m", SparseVector({2}, {1.0}), 5.0);
  EXPECT_EQ(f1.get().status, Status::kOk);
  EXPECT_EQ(f2.get().status, Status::kOverloaded);
  const ServeStats s = engine.stats();
  EXPECT_EQ(s.shed_expired_total, 1);
  EXPECT_EQ(s.ok_total, 1);
  engine.stop();
}

TEST(ServeEngine, HealthTracksDegradedReloads) {
  ServeEngine engine(fixed_layout_options());
  EXPECT_STREQ(engine.health_name(), "live");  // up, but not serving yet

  const std::string path = temp_model_path("health.txt");
  save_model_file(path, make_model(6, 12, 0x11EA));
  engine.load_model("m", path);
  engine.start();
  EXPECT_STREQ(engine.health_name(), "ready");

  {
    failpoint::Scoped broken("serve.model.load");
    EXPECT_THROW(engine.reload_model("m"), Error);
  }
  // The failed reload leaves the last-good version serving, flagged
  // degraded.
  EXPECT_STREQ(engine.health_name(), "degraded");
  const ServeStats s = engine.stats();
  EXPECT_EQ(s.reload_failures_total, 1);
  EXPECT_EQ(s.degraded_models, 1u);
  EXPECT_EQ(engine.predict("m", SparseVector({1}, {1.0})).status,
            Status::kOk);

  engine.reload_model("m");  // success clears the flag
  EXPECT_STREQ(engine.health_name(), "ready");
  EXPECT_EQ(engine.stats().degraded_models, 0u);
  engine.stop();
}

// --- server: timeouts, governance, drain, retries -----------------------

/// Raw (non-ServeClient) connection to a unix path, for byte-level abuse.
int raw_unix_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST(ServeServer, StalledHalfFrameClientIsEvictedByReadTimeout) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("loris");
  listen.read_timeout_ms = 150.0;
  ServerFixture fx(listen);

  // Slow-loris: send a valid header prefix and go silent. Pre-hardening,
  // the handler's blocking read would pin a thread forever (and this test
  // would hang); now the read budget expires and the server closes us.
  const int raw = raw_unix_connect(listen.unix_path);
  const unsigned char half[6] = {0x4C, 0x53, 0x52, 0x56, kVersion, 1};
  ASSERT_EQ(::write(raw, half, sizeof(half)),
            static_cast<ssize_t>(sizeof(half)));
  pollfd p{};
  p.fd = raw;
  p.events = POLLIN;
  ASSERT_GT(::poll(&p, 1, 3000), 0) << "server never closed the stalled fd";
  char buf[16];
  EXPECT_EQ(::read(raw, buf, sizeof(buf)), 0);  // EOF: server hung up
  ::close(raw);
  EXPECT_GE(fx.server.server_stats().read_timeouts_total, 1);

  // The freed handler slot serves the next client normally.
  ServeClient ok = ServeClient::connect_unix(listen.unix_path);
  EXPECT_TRUE(ok.ping());
}

TEST(ServeServer, IdleConnectionsAreClosedAfterIdleTimeout) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("idle");
  listen.idle_timeout_ms = 100.0;
  ServerFixture fx(listen);

  const int raw = raw_unix_connect(listen.unix_path);
  write_frame(raw, MsgType::kPingReq, "");
  Frame reply;
  ASSERT_TRUE(read_frame(raw, reply));  // first frame served normally
  // Then go quiet: the idle window elapses and the server closes us.
  pollfd p{};
  p.fd = raw;
  p.events = POLLIN;
  ASSERT_GT(::poll(&p, 1, 3000), 0) << "server never closed the idle fd";
  char buf[16];
  EXPECT_EQ(::read(raw, buf, sizeof(buf)), 0);
  ::close(raw);
  EXPECT_GE(fx.server.server_stats().idle_timeouts_total, 1);
}

TEST(ServeServer, MaxConnectionsEvictsOldestIdle) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("evict");
  listen.max_connections = 1;
  ServerFixture fx(listen);

  ServeClient a = ServeClient::connect_unix(listen.unix_path);
  EXPECT_TRUE(a.ping());
  // Let a's handler park between frames — only idle connections are
  // eviction candidates; a newcomer racing a still-in-request a would be
  // rejected instead (which b's retry budget also absorbs).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ClientOptions copts;
  copts.max_retries = 5;
  copts.backoff_base_ms = 5.0;
  // b's accept hits the cap; a is idle between frames, so it is evicted.
  ServeClient b = ServeClient::connect_unix(listen.unix_path, copts);
  EXPECT_TRUE(b.ping());
  EXPECT_THROW(a.ping(), Error);  // a's connection was shut down
  EXPECT_EQ(fx.server.server_stats().evictions_total, 1);
  EXPECT_TRUE(b.ping());  // the admitted newcomer is unaffected
}

TEST(ServeServer, AcceptOverloadBacksOffAndRecovers) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("emfile");
  listen.accept_backoff_ms = 5.0;
  ServerFixture fx(listen);

  // Simulate EMFILE-class accept failures for the next two connections:
  // they are dropped (with backoff), not fatal, and the client's retry
  // loop rides through.
  failpoint::Scoped overload("serve.accept.overload",
                             {failpoint::Action::kError, 0, 0, 2});
  ClientOptions copts;
  copts.max_retries = 6;
  copts.backoff_base_ms = 5.0;
  copts.backoff_max_ms = 40.0;
  ServeClient c = ServeClient::connect_unix(listen.unix_path, copts);
  EXPECT_TRUE(c.ping());
  EXPECT_GE(c.retries_observed(), 1);
  EXPECT_EQ(fx.server.server_stats().accept_overload_total, 2);
  EXPECT_NE(c.stats().find("accept_overload_total 2"), std::string::npos);
}

TEST(ServeServer, HealthVerbReportsLifecycle) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("health");
  ServerFixture fx(listen);

  ServeClient client = ServeClient::connect_unix(listen.unix_path);
  EXPECT_EQ(client.health(), "ready");
  {
    failpoint::Scoped broken("serve.model.load");
    std::string msg;
    EXPECT_EQ(client.reload("m", &msg), Status::kInternal);
    EXPECT_EQ(client.health(), "degraded");
  }
  std::string msg;
  EXPECT_EQ(client.reload("m", &msg), Status::kOk);
  EXPECT_EQ(client.health(), "ready");
}

TEST(ServeServer, DrainFinishesInFlightAndRefusesNew) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("drain");
  ServerFixture fx(listen);
  // Accepted before the drain starts: keeps being served throughout.
  ServeClient pre = ServeClient::connect_unix(listen.unix_path);
  EXPECT_TRUE(pre.ping());

  std::vector<std::future<PredictResult>> inflight;
  {
    failpoint::Scoped slow("serve.batch.compute",
                           {failpoint::Action::kDelay, 50, 0, -1});
    for (int i = 0; i < 3; ++i) {
      inflight.push_back(
          fx.engine.predict_async("m", SparseVector({1}, {1.0})));
    }
    fx.server.begin_drain();
    EXPECT_TRUE(fx.server.draining());
    // Existing connections still get answers; predicts are refused with
    // kShuttingDown, probes tell the truth.
    EXPECT_EQ(pre.health(), "draining");
    EXPECT_EQ(pre.predict("m", SparseVector({1}, {1.0})).status,
              Status::kShuttingDown);
    // The listener is closed: nobody new gets in.
    EXPECT_THROW(ServeClient::connect_unix(listen.unix_path), Error);
    // In-flight work finishes within the bound.
    EXPECT_TRUE(fx.server.drain(5000.0));
  }
  for (auto& f : inflight) {
    EXPECT_EQ(f.get().status, Status::kOk);  // drained, not dropped
  }
  const ServerStats s = fx.server.server_stats();
  EXPECT_TRUE(s.draining);
  EXPECT_GT(s.drain_seconds, 0.0);
}

TEST(ServeServer, ClientRequestTimeoutBoundsStalledServer) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("reqtimeout");
  ServerFixture fx(listen);

  ClientOptions copts;
  copts.request_timeout_ms = 60.0;
  ServeClient c = ServeClient::connect_unix(listen.unix_path, copts);
  // The engine stalls well past the client's budget; the client must give
  // up at ~60ms instead of riding out the full compute delay.
  failpoint::Scoped slow("serve.batch.compute",
                         {failpoint::Action::kDelay, 400, 0, 1});
  const auto t0 = std::chrono::steady_clock::now();
  try {
    c.predict("m", SparseVector({1}, {1.0}));
    FAIL() << "predict should have hit the request timeout";
  } catch (const IoError& e) {
    EXPECT_TRUE(e.kind() == IoErrorKind::kIdle ||
                e.kind() == IoErrorKind::kTimeout)
        << io_error_kind_name(e.kind());
  }
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(waited_ms, 3000.0);
}

TEST(ServeServer, ClientRetriesBridgeServerRestart) {
  const std::string model_path = temp_model_path("restart_model.txt");
  save_model_file(model_path, make_model(8, 16, 0x4E57));
  ServeEngine engine(fixed_layout_options());
  engine.load_model("m", model_path);
  engine.start();
  ServerOptions listen;
  listen.unix_path = unique_socket_path("restart");
  auto s1 = std::make_unique<ServeServer>(engine, listen);
  s1->start();

  ClientOptions copts;
  copts.max_retries = 10;
  copts.backoff_base_ms = 2.0;
  copts.backoff_max_ms = 20.0;
  ServeClient client = ServeClient::connect_unix(listen.unix_path, copts);
  EXPECT_EQ(client.predict("m", SparseVector({1}, {1.0})).status,
            Status::kOk);

  // Bounce the server. The client's connection dies with it; the next
  // predict must reconnect-and-resend without surfacing an error.
  s1->stop();
  s1.reset();
  ServeServer s2(engine, listen);
  s2.start();
  EXPECT_EQ(client.predict("m", SparseVector({1}, {1.0})).status,
            Status::kOk);
  EXPECT_GE(client.retries_observed(), 1);
  s2.stop();
  engine.stop();
}

TEST(ServeServer, TornResponseIsRetriedTransparently) {
  ServerOptions listen;
  listen.unix_path = unique_socket_path("tornresp");
  ServerFixture fx(listen);

  ClientOptions copts;
  copts.max_retries = 3;
  copts.backoff_base_ms = 1.0;
  ServeClient c = ServeClient::connect_unix(listen.unix_path, copts);
  EXPECT_TRUE(c.ping());
  {
    // skip=1: the client's request write passes through, the server's
    // response write tears (exactly once). The client sees a torn/closed
    // reply and must recover by reconnecting and resending.
    failpoint::Scoped tear("serve.frame.partial",
                           {failpoint::Action::kError, 0, 1, 1});
    EXPECT_EQ(c.predict("m", SparseVector({1}, {1.0})).status, Status::kOk);
  }
  EXPECT_GE(c.retries_observed(), 1);
}

// --- multi-tenant pressure control: quotas + weighted-fair queuing -------

TEST(ServeBatcher, PerModelQuotaShedsFloodButAdmitsOtherTenants) {
  const std::string p1 = temp_model_path("quota1.txt");
  const std::string p2 = temp_model_path("quota2.txt");
  save_model_file(p1, make_model(4, 8, 0x9A1));
  save_model_file(p2, make_model(4, 8, 0x9A2));
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  sched.fixed_format = Format::kCSR;
  const auto m1 = std::make_shared<const LoadedModel>("m1", p1, sched, 8, 1);
  const auto m2 = std::make_shared<const LoadedModel>("m2", p2, sched, 8, 1);

  BatcherOptions opts;
  opts.max_queue = 64;      // the shared queue has plenty of room...
  opts.max_per_model = 2;   // ...but each tenant may only hold 2 slots
  MicroBatcher batcher(opts);

  SubmitReject reject = SubmitReject::kNone;
  ASSERT_TRUE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0, &reject));
  ASSERT_TRUE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0, &reject));
  // Third same-tenant submission hits the quota, not the queue limit.
  EXPECT_FALSE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0, &reject));
  EXPECT_EQ(reject, SubmitReject::kModelQuota);
  // The other tenant is unaffected by m1's flood.
  reject = SubmitReject::kNone;
  EXPECT_TRUE(batcher.submit(m2, SparseVector({0}, {1.0}), 0.0, &reject));
  EXPECT_EQ(reject, SubmitReject::kNone);

  // Extraction frees quota: after m1's cohort is flushed, m1 may queue
  // again.
  std::vector<BatchRequest> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  for (BatchRequest& r : batch) {
    r.done.set_value(PredictResult{Status::kOk, 0.0, 0.0});
  }
  batcher.batch_done();
  EXPECT_TRUE(batcher.submit(m1, SparseVector({0}, {1.0}), 0.0, &reject));
  batcher.stop();
}

TEST(ServeEngine, QuotaShedsAreCountedSeparatelyFromQueueSheds) {
  const std::string path = temp_model_path("quotastats.txt");
  save_model_file(path, make_model(8, 16, 0x9A3));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;
  opts.batcher.max_batch = 1;
  opts.batcher.deadline_ms = 0.0;
  opts.batcher.max_queue = 64;
  opts.batcher.max_per_model = 2;
  ServeEngine engine(opts);
  engine.load_model("m", path);
  engine.start();

  failpoint::Scoped slow("serve.batch.compute",
                         {failpoint::Action::kDelay, 20, 0, -1});
  std::vector<std::future<PredictResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(engine.predict_async("m", SparseVector({1}, {1.0})));
  }
  int ok = 0, shed = 0;
  for (auto& f : futures) {
    const Status s = f.get().status;
    if (s == Status::kOk) ++ok;
    if (s == Status::kOverloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, 12);
  EXPECT_GE(shed, 1);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed_quota_total, shed);
  EXPECT_EQ(stats.shed_queue_total, 0);  // the queue itself never filled
  EXPECT_EQ(stats.shed_total(), shed);
  engine.stop();
}

// The fairness keystone (DESIGN.md §17): tenant A floods the queue at 20x
// tenant B's rate; with weighted-fair extraction B's paced requests must
// still be served promptly (FIFO would park each one behind A's entire
// backlog) and neither tenant may starve. Latency bounds are generous —
// the FIFO failure mode is ~25-50x over budget, so the gate holds under
// TSan's slowdown too.
TEST(ServeEngine, WeightedFairQueuingKeepsPacedTenantWithinBudget) {
  const std::string path = temp_model_path("wfq.txt");
  save_model_file(path, make_model(8, 16, 0xFA1));
  ServeOptions opts = fixed_layout_options();
  opts.workers = 1;  // one scoring lane: extraction order IS the policy
  opts.batcher.max_batch = 8;
  opts.batcher.deadline_ms = 1.0;
  opts.batcher.max_queue = 4096;
  opts.batcher.fair = true;
  ServeEngine engine(opts);
  engine.load_model("tenantA", path);
  engine.load_model("tenantB", path);
  engine.start();

  // Every batch takes ~10ms: queueing policy, not compute, decides who
  // waits. A's 400-deep backlog is ~50 batches = ~500ms of work.
  failpoint::Scoped slow("serve.batch.compute",
                         {failpoint::Action::kDelay, 10, 0, -1});
  std::vector<std::future<PredictResult>> flood;
  for (int i = 0; i < 400; ++i) {
    flood.push_back(engine.predict_async("tenantA", SparseVector({1}, {1.0})));
  }
  std::vector<double> b_ms;
  int b_ok = 0;
  for (int i = 0; i < 20; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    if (engine.predict("tenantB", SparseVector({1}, {1.0})).status ==
        Status::kOk) {
      ++b_ok;
    }
    b_ms.push_back(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  int a_ok = 0;
  for (auto& f : flood) {
    if (f.get().status == Status::kOk) ++a_ok;
  }
  std::sort(b_ms.begin(), b_ms.end());
  const double b_p95 = b_ms[static_cast<std::size_t>(
      0.95 * static_cast<double>(b_ms.size() - 1))];

  EXPECT_EQ(b_ok, 20);    // B never starves...
  EXPECT_EQ(a_ok, 400);   // ...and A is throttled, not starved
  // FIFO would give B a p95 around the full backlog drain (>= 400ms);
  // fair extraction serves B within a few batch times.
  EXPECT_LT(b_p95, 400.0);
  engine.stop();
}

}  // namespace
}  // namespace ls::serve
