// Dispatch-matrix tests for the SIMD kernel layer: LS_SIMD-style settings
// are honored end to end (the serving engine's stats report the active
// level), unknown or unsupported levels fall back to scalar with a warning
// counter, the cpuid detection path is exercised on whatever host runs the
// suite, and the ISA-aware cost-model plumbing refuses stale calibrations.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "data/features.hpp"
#include "kernels/simd.hpp"
#include "sched/cost_model.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace {

using namespace ls;
using simd::SimdLevel;

std::vector<SimdLevel> all_levels() {
  std::vector<SimdLevel> out;
  for (int l = 0; l < simd::kNumSimdLevels; ++l) {
    out.push_back(static_cast<SimdLevel>(l));
  }
  return out;
}

TEST(SimdDispatch, LevelNamesRoundTripThroughParse) {
  for (SimdLevel level : all_levels()) {
    SimdLevel parsed = SimdLevel::kAVX512;
    ASSERT_TRUE(simd::parse_level(simd::level_name(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel native = SimdLevel::kScalar;
  ASSERT_TRUE(simd::parse_level("native", &native));
  EXPECT_EQ(native, simd::best_supported());
  SimdLevel out;
  EXPECT_FALSE(simd::parse_level("", &out));
  EXPECT_FALSE(simd::parse_level("sse9", &out));
  EXPECT_FALSE(simd::parse_level("AVX2 ", &out));
}

TEST(SimdDispatch, CpuidDetectionIsConsistent) {
  // Scalar is always compiled and supported; anything supported must be
  // compiled; best_supported() must itself be supported. This exercises
  // the cpuid probes on whatever host runs the suite.
  EXPECT_TRUE(simd::level_compiled(SimdLevel::kScalar));
  EXPECT_TRUE(simd::level_supported(SimdLevel::kScalar));
  for (SimdLevel level : all_levels()) {
    if (simd::level_supported(level)) {
      EXPECT_TRUE(simd::level_compiled(level))
          << simd::level_name(level) << " supported but not compiled";
    }
  }
  EXPECT_TRUE(simd::level_supported(simd::best_supported()));
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_TRUE(simd::level_compiled(SimdLevel::kAVX2));
  EXPECT_FALSE(simd::level_supported(SimdLevel::kNEON));
#endif
#if defined(__aarch64__)
  EXPECT_TRUE(simd::level_supported(SimdLevel::kNEON));
  EXPECT_FALSE(simd::level_supported(SimdLevel::kAVX2));
#endif
}

TEST(SimdDispatch, SupportedLevelsInstallWithMatchingWidth) {
  for (SimdLevel level : all_levels()) {
    if (!simd::level_supported(level)) continue;
    simd::ScopedSimdLevel guard(level);
    EXPECT_EQ(guard.installed(), level);
    EXPECT_EQ(simd::active_level(), level);
    const simd::KernelTable& kt = simd::kernels();
    EXPECT_EQ(kt.level, level);
    const int expected_width[] = {1, 2, 4, 8};  // scalar, neon, avx2, avx512
    EXPECT_EQ(kt.width, expected_width[static_cast<int>(level)]);
  }
}

TEST(SimdDispatch, UnknownSettingFallsBackToScalarAndCounts) {
  const SimdLevel before = simd::active_level();
  const std::int64_t events = simd::fallback_events();
  EXPECT_EQ(simd::apply_setting("pentium-mmx"), SimdLevel::kScalar);
  EXPECT_EQ(simd::active_level(), SimdLevel::kScalar);
  EXPECT_EQ(simd::fallback_events(), events + 1);
  simd::set_level(before);
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatch, UnsupportedLevelFallsBackToScalarAndCounts) {
  SimdLevel unsupported = SimdLevel::kScalar;
  bool found = false;
  for (SimdLevel level : all_levels()) {
    if (!simd::level_supported(level)) {
      unsupported = level;
      found = true;
      break;
    }
  }
  if (!found) GTEST_SKIP() << "host supports every compiled level";
  const SimdLevel before = simd::active_level();
  const std::int64_t events = simd::fallback_events();
  {
    simd::ScopedSimdLevel guard(unsupported);
    EXPECT_EQ(guard.installed(), SimdLevel::kScalar);
    EXPECT_EQ(simd::active_level(), SimdLevel::kScalar);
    EXPECT_EQ(simd::fallback_events(), events + 1);
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatch, ScopedLevelRestoresOnExit) {
  const SimdLevel before = simd::active_level();
  {
    simd::ScopedSimdLevel guard(SimdLevel::kScalar);
    EXPECT_EQ(simd::active_level(), SimdLevel::kScalar);
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatch, EngineStatsReportActiveLevel) {
  // LS_SIMD honored end to end: whatever level the process runs at shows
  // up in the serving engine's stats block, alongside the fallback
  // counter, so ops can verify the override took effect on a live server.
  serve::ServeEngine engine{serve::ServeOptions{}};
  const std::string text = engine.stats_text();
  const std::string expect =
      "simd " + std::string(simd::level_name(simd::active_level()));
  EXPECT_NE(text.find(expect), std::string::npos) << text;
  EXPECT_NE(text.find("simd_fallbacks_total"), std::string::npos) << text;
}

TEST(SimdDispatch, AlignedBufferGuarantees64ByteAlignment) {
  static_assert(AlignedBuffer<real_t>::kAlignment == 64,
                "SIMD kernels assume 64-byte aligned buffers");
  static_assert(AlignedBuffer<index_t>::kAlignment == 64,
                "index buffers share the guarantee");
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                        std::size_t{1000}}) {
    AlignedBuffer<real_t> vals(n);
    AlignedBuffer<index_t> idx(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(vals.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(idx.data()) % 64, 0u);
  }
}

// -------------------------------------------- ISA-aware cost calibration

MatrixFeatures probe_features() {
  Rng rng(0xFEA7ull);
  return extract_features(test::random_matrix(60, 40, 0.2, rng));
}

TEST(SimdDispatch, CalibrationRecordsTheLevelItMeasuredUnder) {
  simd::ScopedSimdLevel guard(SimdLevel::kScalar);
  const CostCalibration cal = CostCalibration::measure();
  EXPECT_EQ(cal.simd_level(), SimdLevel::kScalar);
  EXPECT_EQ(cal.vector_width(), 1);
  EXPECT_FALSE(cal.level_agnostic());
  EXPECT_TRUE(cal.valid_for_active());
  EXPECT_GT(cal.gather_cost_ratio(), 0.0);
  const CostPrediction p = predict_cost(probe_features(), cal);
  EXPECT_EQ(p.simd_level, SimdLevel::kScalar);
  EXPECT_EQ(p.vector_width, 1);
  EXPECT_DOUBLE_EQ(p.gather_cost_ratio, cal.gather_cost_ratio());
}

TEST(SimdDispatch, StaleIsaCalibrationIsRejected) {
  const SimdLevel native = simd::best_supported();
  if (native == SimdLevel::kScalar) {
    GTEST_SKIP() << "single-level host: a calibration can never go stale";
  }
  CostCalibration cal = CostCalibration::uniform();
  {
    simd::ScopedSimdLevel guard(SimdLevel::kScalar);
    cal = CostCalibration::measure();
  }
  // Back at the native level the scalar-made calibration is stale: its
  // per-format costs embody scalar kernels and must not drive schedules
  // for vector ones.
  simd::ScopedSimdLevel guard(native);
  EXPECT_FALSE(cal.valid_for_active());
  EXPECT_THROW(predict_cost(probe_features(), cal), Error);
}

TEST(SimdDispatch, InstanceRefitsPerLevel) {
  const SimdLevel native = simd::best_supported();
  {
    simd::ScopedSimdLevel guard(SimdLevel::kScalar);
    const CostCalibration& cal = CostCalibration::instance();
    EXPECT_EQ(cal.simd_level(), SimdLevel::kScalar);
    EXPECT_NO_THROW(predict_cost(probe_features(), cal));
  }
  simd::ScopedSimdLevel guard(native);
  const CostCalibration& cal = CostCalibration::instance();
  EXPECT_EQ(cal.simd_level(), native);
  EXPECT_EQ(cal.vector_width(), simd::kernels().width);
  const CostPrediction p = predict_cost(probe_features(), cal);
  EXPECT_EQ(p.simd_level, native);
  EXPECT_EQ(p.vector_width, simd::kernels().width);
}

TEST(SimdDispatch, UniformCalibrationIsLevelAgnostic) {
  const CostCalibration cal = CostCalibration::uniform();
  EXPECT_TRUE(cal.level_agnostic());
  for (SimdLevel level : all_levels()) {
    if (!simd::level_supported(level)) continue;
    simd::ScopedSimdLevel guard(level);
    EXPECT_TRUE(cal.valid_for_active());
    EXPECT_NO_THROW(predict_cost(probe_features(), cal));
  }
}

}  // namespace
