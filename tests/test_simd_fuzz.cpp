// Seeded differential fuzz for the SIMD dispatch layer.
//
// Two generators, both deterministic from a base seed (override with
// LS_FUZZ_SEED to replay a failure — every assertion carries the trial
// seed in its trace, so a red line names the exact case to re-run):
//  * matrix fuzz: random (format x density x shape x batch width) cases
//    multiplied at every supported LS_SIMD level and compared against the
//    scalar reference (ULP) plus the per-level lane bit-identity check;
//  * kernel fuzz: raw dispatch-table entry points on random lengths,
//    unaligned offsets and index patterns.
// The suite also runs under ASan/UBSan and TSan via scripts/check.sh; a
// finding there is a failure even when the numerics agree.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "formats/any_matrix.hpp"
#include "kernels/simd.hpp"
#include "test_util.hpp"

namespace {

using namespace ls;
using simd::SimdLevel;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("LS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xF0220808ull;
}

std::vector<SimdLevel> supported_vector_levels() {
  std::vector<SimdLevel> out;
  for (int l = 1; l < simd::kNumSimdLevels; ++l) {
    const auto level = static_cast<SimdLevel>(l);
    if (simd::level_supported(level)) out.push_back(level);
  }
  return out;
}

std::vector<real_t> lane_of(const std::vector<real_t>& y, index_t b,
                            index_t q) {
  std::vector<real_t> out(y.size() / static_cast<std::size_t>(b));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = y[i * static_cast<std::size_t>(b) + static_cast<std::size_t>(q)];
  }
  return out;
}

TEST(SimdFuzz, RandomMatricesAgreeAcrossLevels) {
  const std::vector<SimdLevel> levels = supported_vector_levels();
  if (levels.empty()) GTEST_SKIP() << "scalar-only host: nothing to compare";
  constexpr int kTrials = 60;
  const double densities[] = {0.01, 0.05, 0.15, 0.4, 0.8, 1.0};

  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = base_seed() + static_cast<std::uint64_t>(t);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (replay: LS_FUZZ_SEED=" + std::to_string(seed) +
                 " with kTrials>=1)");
    Rng rng(seed);
    const index_t m = rng.uniform_int(1, 48);
    const index_t n = rng.uniform_int(1, 48);
    const double density = densities[rng.uniform_int(
        0, static_cast<index_t>(std::size(densities)) - 1)];
    const Format f = kExtendedFormats[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<index_t>(kExtendedFormats.size()) - 1))];
    const index_t b = rng.uniform_int(1, kMaxSmsvBatch);
    SCOPED_TRACE(std::string(format_name(f)) + " " + std::to_string(m) + "x" +
                 std::to_string(n) + " density=" + std::to_string(density) +
                 " b=" + std::to_string(b));

    const CooMatrix coo = test::random_matrix(m, n, density, rng);
    const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
    const std::vector<real_t> w = test::random_vector(n, rng);
    std::vector<real_t> wb(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(b));
    for (auto& x : wb) x = rng.uniform(-1.0, 1.0);

    std::vector<real_t> y_scalar(static_cast<std::size_t>(m));
    std::vector<real_t> yb_scalar(static_cast<std::size_t>(m) *
                                  static_cast<std::size_t>(b));
    {
      simd::ScopedSimdLevel guard(SimdLevel::kScalar);
      mat.multiply_dense(w, y_scalar);
      mat.multiply_dense_batch(wb, b, yb_scalar);
    }

    for (SimdLevel level : levels) {
      SCOPED_TRACE(std::string(simd::level_name(level)));
      simd::ScopedSimdLevel guard(level);
      std::vector<real_t> y(static_cast<std::size_t>(m));
      std::vector<real_t> yb(y.size() * static_cast<std::size_t>(b));
      mat.multiply_dense(w, y);
      mat.multiply_dense_batch(wb, b, yb);
      test::expect_ulp_near(y, y_scalar);
      test::expect_ulp_near(yb, yb_scalar);
      // Lane bit-identity at the vector level itself: pick one lane per
      // trial instead of all b (the exhaustive sweep lives in
      // test_differential.cpp).
      const index_t q = rng.uniform_int(0, b - 1);
      std::vector<real_t> wq(static_cast<std::size_t>(n));
      for (index_t j = 0; j < n; ++j) {
        wq[static_cast<std::size_t>(j)] =
            wb[static_cast<std::size_t>(j * b + q)];
      }
      std::vector<real_t> yq(static_cast<std::size_t>(m));
      mat.multiply_dense(wq, yq);
      test::expect_bit_identical(lane_of(yb, b, q), yq);
    }
  }
}

TEST(SimdFuzz, RawKernelsAgreeAcrossLevelsOnRandomShapes) {
  const std::vector<SimdLevel> levels = supported_vector_levels();
  if (levels.empty()) GTEST_SKIP() << "scalar-only host: nothing to compare";
  constexpr int kTrials = 150;
  constexpr index_t kMaxLen = 200;
  constexpr index_t kWorkspace = 128;

  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed =
        base_seed() ^ (0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(t));
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    const index_t n = rng.uniform_int(0, kMaxLen);
    const auto off = static_cast<std::size_t>(rng.uniform_int(0, 7));
    const index_t b = rng.uniform_int(1, kMaxSmsvBatch);
    SCOPED_TRACE("n=" + std::to_string(n) + " off=" + std::to_string(off) +
                 " b=" + std::to_string(b));

    AlignedBuffer<real_t> v(static_cast<std::size_t>(kMaxLen) + 8);
    AlignedBuffer<index_t> c(static_cast<std::size_t>(kMaxLen) + 8);
    for (auto& x : v) x = rng.uniform(-3.0, 3.0);
    for (auto& i : c) i = rng.uniform_int(0, kWorkspace - 1);
    // Doubles as the dense second operand (length >= n + off) and the
    // gather workspace (indices < kWorkspace).
    AlignedBuffer<real_t> w(static_cast<std::size_t>(kMaxLen) + 8);
    for (auto& x : w) x = rng.uniform(-3.0, 3.0);
    AlignedBuffer<real_t> wb(static_cast<std::size_t>(kWorkspace) *
                             static_cast<std::size_t>(b));
    for (auto& x : wb) x = rng.uniform(-1.0, 1.0);
    // gather_scatter_axpy requires pairwise-distinct rows: a shuffled
    // prefix of 0..len-1 scattered over a y of size kMaxLen.
    std::vector<index_t> rows(static_cast<std::size_t>(kMaxLen) + 8);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<index_t>(i);
    }
    shuffle(rows.begin(), rows.end(), rng);

    real_t dot_s = 0.0, sdot_s = 0.0;
    std::vector<real_t> ax_s(static_cast<std::size_t>(kMaxLen) + 8, 0.5);
    std::vector<real_t> sc_s(ax_s.size(), -1.0);
    std::vector<real_t> bdot_s(static_cast<std::size_t>(b));
    {
      simd::ScopedSimdLevel guard(SimdLevel::kScalar);
      const simd::KernelTable& kt = simd::kernels();
      dot_s = kt.dense_row_dot(v.data() + off, w.data() + off % 2, n);
      sdot_s = kt.sparse_row_dot(v.data() + off, c.data() + off, n, w.data());
      kt.gather_axpy(v.data() + off, c.data() + off, n, w.data(), ax_s.data());
      kt.gather_scatter_axpy(v.data() + off, c.data() + off, rows.data(), n,
                             w.data(), sc_s.data());
      kt.sparse_row_batch(v.data() + off, c.data() + off, n, wb.data(), b,
                          bdot_s.data());
    }

    for (SimdLevel level : levels) {
      SCOPED_TRACE(std::string(simd::level_name(level)));
      simd::ScopedSimdLevel guard(level);
      const simd::KernelTable& kt = simd::kernels();
      const std::vector<real_t> dot{
          kt.dense_row_dot(v.data() + off, w.data() + off % 2, n)};
      test::expect_ulp_near(dot, std::vector<real_t>{dot_s});
      const std::vector<real_t> sdot{
          kt.sparse_row_dot(v.data() + off, c.data() + off, n, w.data())};
      test::expect_ulp_near(sdot, std::vector<real_t>{sdot_s});
      std::vector<real_t> ax(ax_s.size(), 0.5);
      kt.gather_axpy(v.data() + off, c.data() + off, n, w.data(), ax.data());
      test::expect_ulp_near(ax, ax_s);
      std::vector<real_t> sc(sc_s.size(), -1.0);
      kt.gather_scatter_axpy(v.data() + off, c.data() + off, rows.data(), n,
                             w.data(), sc.data());
      test::expect_ulp_near(sc, sc_s);
      std::vector<real_t> bdot(static_cast<std::size_t>(b));
      kt.sparse_row_batch(v.data() + off, c.data() + off, n, wb.data(), b,
                          bdot.data());
      test::expect_ulp_near(bdot, bdot_s);
    }
  }
}

}  // namespace
