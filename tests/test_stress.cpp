// Stress and failure-injection tests: adversarial matrix structures
// through every format, degenerate solver inputs, the grid search, and the
// upgraded SGD options (weight decay, LR schedule).
#include <gtest/gtest.h>

#include <cmath>

#include "data/profiles.hpp"
#include "data/features.hpp"
#include "data/scaling.hpp"
#include "dnn/net.hpp"
#include "dnn/trainer.hpp"
#include "svm/grid_search.hpp"
#include "svm/trainer.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

// ----------------------------------------------- adversarial structures

/// Builds a named adversarial matrix.
CooMatrix adversarial_matrix(const std::string& kind) {
  if (kind == "single_full_row") {
    std::vector<Triplet> t;
    for (index_t j = 0; j < 64; ++j) t.push_back({3, j, 1.0 + j});
    return CooMatrix(16, 64, std::move(t));
  }
  if (kind == "single_full_col") {
    std::vector<Triplet> t;
    for (index_t i = 0; i < 64; ++i) t.push_back({i, 5, 2.0 + i});
    return CooMatrix(64, 16, std::move(t));
  }
  if (kind == "main_diagonal_only") {
    std::vector<Triplet> t;
    for (index_t i = 0; i < 32; ++i) t.push_back({i, i, 1.0});
    return CooMatrix(32, 32, std::move(t));
  }
  if (kind == "anti_diagonal") {
    std::vector<Triplet> t;
    for (index_t i = 0; i < 32; ++i) t.push_back({i, 31 - i, 1.0});
    return CooMatrix(32, 32, std::move(t));
  }
  if (kind == "checkerboard") {
    std::vector<Triplet> t;
    for (index_t i = 0; i < 24; ++i) {
      for (index_t j = (i % 2); j < 24; j += 2) t.push_back({i, j, 0.5});
    }
    return CooMatrix(24, 24, std::move(t));
  }
  if (kind == "first_and_last_corner") {
    return CooMatrix(100, 100, {{0, 0, 1.0}, {99, 99, 2.0}});
  }
  if (kind == "one_by_wide") {
    std::vector<Triplet> t;
    for (index_t j = 0; j < 200; j += 3) t.push_back({0, j, 1.0});
    return CooMatrix(1, 200, std::move(t));
  }
  if (kind == "tall_by_one") {
    std::vector<Triplet> t;
    for (index_t i = 0; i < 200; i += 3) t.push_back({i, 0, 1.0});
    return CooMatrix(200, 1, std::move(t));
  }
  throw Error("unknown adversarial kind " + kind);
}

struct AdversarialParam {
  std::string kind;
  Format format;
};

class AdversarialSweep : public ::testing::TestWithParam<AdversarialParam> {};

TEST_P(AdversarialSweep, MultiplyGatherRoundTripAllCorrect) {
  const auto& p = GetParam();
  const CooMatrix coo = adversarial_matrix(p.kind);
  const AnyMatrix mat = AnyMatrix::from_coo(coo, p.format);

  // Multiply against the brute-force reference.
  Rng rng(0xADE5 + static_cast<std::uint64_t>(p.format));
  const auto w = test::random_vector(coo.cols(), rng);
  std::vector<real_t> y(static_cast<std::size_t>(coo.rows()), -7.0);
  mat.multiply_dense(w, y);
  test::expect_near(y, test::reference_multiply(coo, w));

  // Round trip.
  EXPECT_EQ(mat.to_coo().nnz(), coo.nnz());

  // Gather every row.
  SparseVector expect, got;
  for (index_t i = 0; i < coo.rows(); ++i) {
    coo.gather_row(i, expect);
    mat.gather_row(i, got);
    ASSERT_EQ(got.nnz(), expect.nnz()) << p.kind << " row " << i;
  }
}

std::vector<AdversarialParam> adversarial_params() {
  std::vector<AdversarialParam> params;
  for (const char* kind :
       {"single_full_row", "single_full_col", "main_diagonal_only",
        "anti_diagonal", "checkerboard", "first_and_last_corner",
        "one_by_wide", "tall_by_one"}) {
    for (Format f : kExtendedFormats) {
      params.push_back({kind, f});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAllFormats, AdversarialSweep,
    ::testing::ValuesIn(adversarial_params()), [](const auto& info) {
      return info.param.kind + "_" +
             std::string(format_name(info.param.format));
    });

// ------------------------------------------------ degenerate SVM inputs

TEST(DegenerateSvm, TwoIdenticalPointsOppositeLabels) {
  // Unsatisfiable separation: the solver must still terminate with alpha
  // at the box bound.
  Dataset ds;
  ds.name = "conflict";
  ds.X = CooMatrix(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  ds.y = {1.0, -1.0};
  SvmParams params;
  params.c = 1.0;
  const TrainResult r = train_fixed_format(ds, params, Format::kDEN);
  EXPECT_LE(r.stats.iterations, params.max_iterations == 0
                                    ? 200 * 2 + 20000
                                    : params.max_iterations);
  for (real_t a : r.model.coef) EXPECT_LE(std::abs(a), 1.0 + 1e-9);
}

TEST(DegenerateSvm, AllZeroFeatureMatrix) {
  Dataset ds;
  ds.name = "zeros";
  ds.X = CooMatrix(6, 4, {});
  ds.y = {1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  SvmParams params;
  for (Format f : kAllFormats) {
    const TrainResult r = train_fixed_format(ds, params, f);
    // With K = 0 everywhere the problem degenerates; the solver must not
    // crash and must respect the box.
    for (real_t a : r.model.coef) {
      EXPECT_LE(std::abs(a), params.c + 1e-9) << format_name(f);
    }
  }
}

TEST(DegenerateSvm, HeavilyImbalancedClasses) {
  Rng rng(0x1B);
  Dataset ds;
  ds.name = "imbalanced";
  ds.X = test::random_matrix(50, 8, 0.5, rng);
  ds.y.assign(50, 1.0);
  ds.y[49] = -1.0;  // one negative sample
  SvmParams params;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  EXPECT_TRUE(r.stats.converged);
  EXPECT_GE(r.model.accuracy(ds), 0.9);  // majority class at minimum
}

TEST(DegenerateSvm, SingleFeatureDataset) {
  Dataset ds;
  ds.name = "one_dim";
  std::vector<Triplet> t;
  std::vector<real_t> y;
  for (index_t i = 0; i < 20; ++i) {
    t.push_back({i, 0, static_cast<real_t>(i) - 9.5});
    y.push_back(i < 10 ? -1.0 : 1.0);
  }
  ds.X = CooMatrix(20, 1, std::move(t));
  ds.y = std::move(y);
  SvmParams params;
  params.c = 100.0;
  const TrainResult r = train_fixed_format(ds, params, Format::kDIA);
  EXPECT_TRUE(r.stats.converged);
  EXPECT_DOUBLE_EQ(r.model.accuracy(ds), 1.0);
}

// ------------------------------------------------------- grid search

TEST(GridSearch, FindsAWorkingRegionOnPlantedData) {
  Rng rng(0x6d);
  Dataset ds;
  ds.name = "grid";
  ds.X = test::random_matrix(90, 10, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.05, 30);

  SvmParams base;  // linear: gamma grid collapses to one point
  GridSearchOptions options;
  options.c_values = {0.01, 1.0, 100.0};
  options.folds = 3;
  const GridSearchResult r = grid_search(ds, base, options);
  EXPECT_EQ(r.evaluated.size(), 3u);
  EXPECT_GT(r.best_accuracy, 0.6);
  // The best accuracy must be the max over evaluated points.
  for (const GridPoint& p : r.evaluated) {
    EXPECT_LE(p.cv_accuracy, r.best_accuracy + 1e-12);
  }
}

TEST(GridSearch, GaussianKernelSearchesGammaToo) {
  Rng rng(0x6e);
  Dataset ds;
  ds.name = "grid_rbf";
  ds.X = test::random_matrix(60, 6, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.05, 31);
  SvmParams base;
  base.kernel.type = KernelType::kGaussian;
  GridSearchOptions options;
  options.c_values = {1.0, 10.0};
  options.gamma_values = {0.1, 1.0};
  const GridSearchResult r = grid_search(ds, base, options);
  EXPECT_EQ(r.evaluated.size(), 4u);
  EXPECT_EQ(r.best_params.kernel.type, KernelType::kGaussian);
}

TEST(GridSearch, RejectsEmptyGridsAndBadFolds) {
  Rng rng(0x6f);
  Dataset ds;
  ds.name = "bad";
  ds.X = test::random_matrix(20, 4, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.0, 32);
  SvmParams base;
  GridSearchOptions options;
  options.c_values = {};
  EXPECT_THROW(grid_search(ds, base, options), Error);
  options.c_values = {1.0};
  options.folds = 1;
  EXPECT_THROW(grid_search(ds, base, options), Error);
}

// ---------------------------------------------------- class weights

TEST(ClassWeights, MinorityWeightShiftsTheBoundary) {
  // 1-D overlapping classes with a 9:1 imbalance. With equal weights the
  // cheapest solution sacrifices minority samples; upweighting the
  // minority class must recover more of them.
  Rng rng(0x71);
  std::vector<Triplet> t;
  std::vector<real_t> y;
  index_t row = 0;
  for (index_t i = 0; i < 45; ++i) {  // majority (+1) around +1.0
    t.push_back({row, 0, 1.0 + rng.normal(0.0, 0.8)});
    y.push_back(1.0);
    ++row;
  }
  for (index_t i = 0; i < 5; ++i) {  // minority (-1) around -1.0
    t.push_back({row, 0, -1.0 + rng.normal(0.0, 0.8)});
    y.push_back(-1.0);
    ++row;
  }
  Dataset ds{"imb", CooMatrix(row, 1, std::move(t)), std::move(y)};

  auto minority_recall = [&](const SvmParams& params) {
    const TrainResult r = train_fixed_format(ds, params, Format::kDEN);
    index_t hit = 0, total = 0;
    SparseVector probe;
    for (index_t i = 0; i < ds.rows(); ++i) {
      if (ds.y[static_cast<std::size_t>(i)] > 0) continue;
      ++total;
      ds.X.gather_row(i, probe);
      hit += r.model.predict(probe) < 0;
    }
    return static_cast<double>(hit) / static_cast<double>(total);
  };

  SvmParams flat;
  flat.c = 0.05;
  SvmParams weighted = flat;
  weighted.weight_negative = 9.0;  // balance the 9:1 ratio
  EXPECT_GE(minority_recall(weighted), minority_recall(flat));
  EXPECT_GT(minority_recall(weighted), 0.5);
}

TEST(ClassWeights, BoxRespectsPerClassC) {
  Rng rng(0x72);
  Dataset ds;
  ds.name = "wbox";
  ds.X = test::random_matrix(40, 6, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.2, 40);
  SvmParams params;
  params.c = 1.0;
  params.weight_positive = 3.0;
  params.weight_negative = 0.5;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  // alpha_i <= C * w(y_i): verified through the extracted coefficients
  // (coef = alpha * y, so |coef| <= C_i).
  for (std::size_t k = 0; k < r.model.coef.size(); ++k) {
    const real_t bound = r.model.coef[k] > 0 ? 3.0 : 0.5;
    EXPECT_LE(std::abs(r.model.coef[k]), bound + 1e-9);
  }
}

TEST(ClassWeights, RejectsNonPositiveWeights) {
  Dataset ds{"w", CooMatrix(2, 1, {{0, 0, 1.0}, {1, 0, -1.0}}),
             {1.0, -1.0}};
  SvmParams params;
  params.weight_positive = 0.0;
  EXPECT_THROW(train_fixed_format(ds, params, Format::kDEN), Error);
}

// -------------------------------------------------------- feature scaling

TEST(Scaling, MapsExplicitEntriesIntoTargetRange) {
  Dataset ds;
  ds.name = "sc";
  ds.X = CooMatrix(3, 2, {{0, 0, -10.0}, {1, 0, 0.0}, {2, 0, 30.0},
                          {0, 1, 5.0}, {2, 1, 5.0}});
  // Note: the (1,0) explicit zero is dropped by COO canonicalisation.
  ds.y = {1.0, -1.0, 1.0};
  const ScalingParams params = fit_scaling(ds, 0.0, 1.0);
  const Dataset scaled = apply_scaling(ds, params);

  SparseVector row;
  scaled.X.gather_row(0, row);  // col 0: -10 -> 0.0 ... dropped if zero
  // Column 0 spans [-10, 30]: -10 -> 0 (dropped as implicit zero), 30 -> 1.
  scaled.X.gather_row(2, row);
  EXPECT_DOUBLE_EQ(row.values()[0], 1.0);
  // Column 1 is constant (5, 5): maps to lo = 0 -> entries dropped.
  const MatrixFeatures f = extract_features(scaled.X);
  EXPECT_LE(f.nnz, ds.X.nnz());
}

TEST(Scaling, FitOnTrainApplyOnTestIsConsistent) {
  Rng rng(0x73);
  Dataset ds;
  ds.name = "tt";
  ds.X = test::random_matrix(60, 8, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.0, 41);
  const auto [train, test] = ds.split(0.75, 9);
  const ScalingParams params = fit_scaling(train, 0.0, 1.0);
  const Dataset strain = apply_scaling(train, params);
  const Dataset stest = apply_scaling(test, params);

  // Training entries land inside [0, 1]; test entries may exceed slightly
  // (values outside the training range), which is correct behaviour.
  for (real_t v : strain.X.values()) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
  EXPECT_EQ(stest.rows(), test.rows());
  // Training an SVM on scaled data still works end to end.
  SvmParams svm;
  const TrainResult r = train_fixed_format(strain, svm, Format::kCSR);
  EXPECT_TRUE(r.stats.converged);
}

TEST(Scaling, CustomRangeAndUnseenColumns) {
  Dataset ds;
  ds.name = "rng";
  ds.X = CooMatrix(2, 3, {{0, 0, 2.0}, {1, 0, 4.0}});
  ds.y = {1.0, -1.0};
  const ScalingParams params = fit_scaling(ds, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(params.scale_value(0, 2.0), -1.0);
  EXPECT_DOUBLE_EQ(params.scale_value(0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(params.scale_value(0, 3.0), 0.0);
  // Column index beyond the fitted width passes through unchanged.
  EXPECT_DOUBLE_EQ(params.scale_value(99, 7.0), 7.0);
  EXPECT_THROW(fit_scaling(ds, 1.0, 1.0), Error);
}

// --------------------------------------------- SGD solver refinements

TEST(SgdRefinements, WeightDecayShrinksWeightsWithZeroGradient) {
  ParamBlob p;
  p.value = {10.0};
  p.grad = {0.0};
  SgdOptimizer opt({&p}, 0.1, 0.0, /*weight_decay=*/0.5);
  opt.step();  // v = -0.1 * (0 + 0.5 * 10) = -0.5
  EXPECT_NEAR(p.value[0], 9.5, 1e-15);
}

TEST(SgdRefinements, ZeroWeightDecayMatchesPlainUpdate) {
  ParamBlob a, b;
  a.value = b.value = {2.0};
  a.grad = b.grad = {1.0};
  SgdOptimizer plain({&a}, 0.1, 0.9);
  SgdOptimizer decayed({&b}, 0.1, 0.9, 0.0);
  plain.step();
  decayed.step();
  EXPECT_DOUBLE_EQ(a.value[0], b.value[0]);
}

TEST(SgdRefinements, RejectsNegativeWeightDecay) {
  ParamBlob p;
  p.value = {0.0};
  p.grad = {0.0};
  EXPECT_THROW(SgdOptimizer({&p}, 0.1, 0.5, -0.1), Error);
}

TEST(SgdRefinements, LrScheduleDropsAtConfiguredEpochs) {
  // 4 epochs with a drop every 2: lr halves once after epoch 2. We verify
  // via the training loop completing and the net still learning (the
  // schedule itself is exercised; exact lr is internal to the loop).
  CifarConfig cfg;
  cfg.classes = 2;
  cfg.dim = 8;
  cfg.train_size = 64;
  cfg.test_size = 32;
  cfg.noise = 0.3;
  const CifarData data = make_synthetic_cifar(cfg);
  Rng rng(0x11E);
  Net net = make_cifar10_small(2, 3, 8, rng);
  DnnTrainConfig tc;
  tc.batch_size = 16;
  tc.learning_rate = 0.05;
  tc.weight_decay = 0.004;  // Caffe cifar10_full's value
  tc.lr_drop_every_epochs = 2;
  tc.lr_drop_factor = 0.5;
  tc.max_epochs = 4;
  const DnnTrainResult r = train_dnn(net, data, tc);
  EXPECT_EQ(r.epochs_completed, 4);
  EXPECT_GT(r.test_accuracy, 0.5);
}

}  // namespace
}  // namespace ls
