// Tests for the SVM library: kernel functions (Table I), kernel-row
// engines, the LRU cache, the SMO solver's analytic solutions and KKT
// conditions, model extraction/prediction, the trainers and multiclass.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "data/profiles.hpp"
#include "data/synthetic.hpp"
#include "svm/cache.hpp"
#include "svm/kernel.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/model.hpp"
#include "svm/multiclass.hpp"
#include "svm/smo.hpp"
#include "svm/trainer.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

// ------------------------------------------------------------- kernels

TEST(Kernel, TableIFormulas) {
  KernelParams p;
  const real_t dot = 0.5, nu = 2.0, nv = 3.0;

  p.type = KernelType::kLinear;
  EXPECT_DOUBLE_EQ(kernel_from_dot(p, dot, nu, nv), 0.5);

  p.type = KernelType::kPolynomial;
  p.gamma = 2.0;
  p.coef0 = 1.0;
  p.degree = 3;
  EXPECT_DOUBLE_EQ(kernel_from_dot(p, dot, nu, nv), std::pow(2.0, 3));

  p.type = KernelType::kGaussian;
  p.gamma = 0.25;
  // ||u - v||^2 = 2 + 3 - 1 = 4.
  EXPECT_DOUBLE_EQ(kernel_from_dot(p, dot, nu, nv), std::exp(-1.0));

  p.type = KernelType::kSigmoid;
  p.gamma = 1.0;
  p.coef0 = 0.5;
  EXPECT_DOUBLE_EQ(kernel_from_dot(p, dot, nu, nv), std::tanh(1.0));
}

TEST(Kernel, GaussianSelfSimilarityIsOne) {
  KernelParams p;
  p.type = KernelType::kGaussian;
  p.gamma = 3.7;
  EXPECT_DOUBLE_EQ(kernel_from_dot(p, 5.0, 5.0, 5.0), 1.0);
}

TEST(Kernel, ParseNamesRoundTrip) {
  EXPECT_EQ(parse_kernel("linear"), KernelType::kLinear);
  EXPECT_EQ(parse_kernel("rbf"), KernelType::kGaussian);
  EXPECT_EQ(parse_kernel("poly"), KernelType::kPolynomial);
  EXPECT_EQ(parse_kernel("sigmoid"), KernelType::kSigmoid);
  EXPECT_THROW(parse_kernel("quantum"), Error);
  EXPECT_STREQ(kernel_name(KernelType::kGaussian), "gaussian");
}

// -------------------------------------------------------- kernel engines

class EngineAgreement : public ::testing::TestWithParam<KernelType> {};

TEST_P(EngineAgreement, FormatEngineMatchesLibsvmEngine) {
  Rng rng(31);
  const CooMatrix coo = test::random_matrix(40, 25, 0.3, rng);
  KernelParams params;
  params.type = GetParam();
  params.gamma = 0.5;
  params.coef0 = 1.0;
  params.degree = 2;

  LibsvmKernelEngine baseline(coo, params);
  std::vector<real_t> expected(40), got(40);

  for (Format f : kAllFormats) {
    const AnyMatrix mat = AnyMatrix::from_coo(coo, f);
    FormatKernelEngine engine(mat, params);
    for (index_t i : {index_t{0}, index_t{17}, index_t{39}}) {
      baseline.compute_row(i, expected);
      engine.compute_row(i, got);
      test::expect_near(got, expected, 1e-9);
      EXPECT_NEAR(engine.diagonal(i), baseline.diagonal(i), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, EngineAgreement,
                         ::testing::Values(KernelType::kLinear,
                                           KernelType::kPolynomial,
                                           KernelType::kGaussian,
                                           KernelType::kSigmoid),
                         [](const auto& info) {
                           return kernel_name(info.param);
                         });

TEST(FormatKernelEngine, WorkspaceStaysCleanAcrossRows) {
  // Consecutive rows with different patterns: stale scatter residue would
  // corrupt the second row's dots.
  CooMatrix coo(3, 6,
                {{0, 0, 1.0}, {0, 5, 2.0}, {1, 2, 3.0}, {2, 0, 4.0},
                 {2, 2, 5.0}});
  KernelParams params;  // linear
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  FormatKernelEngine engine(mat, params);
  std::vector<real_t> row(3);
  engine.compute_row(0, row);
  engine.compute_row(1, row);
  // K(X_1, X_2) = 3 * 5 = 15 (columns 2 overlap only).
  EXPECT_DOUBLE_EQ(row[2], 15.0);
  EXPECT_DOUBLE_EQ(row[0], 0.0);  // rows 0 and 1 share no columns
}

TEST(KernelEngines, RowsComputedCounterIncrements) {
  Rng rng(32);
  const CooMatrix coo = test::random_matrix(10, 10, 0.5, rng);
  KernelParams params;
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  FormatKernelEngine engine(mat, params);
  std::vector<real_t> row(10);
  engine.compute_row(0, row);
  engine.compute_row(1, row);
  EXPECT_EQ(engine.rows_computed(), 2);
}

// ----------------------------------------------------------------- cache

TEST(KernelCache, HitAvoidsRecomputation) {
  Rng rng(33);
  const CooMatrix coo = test::random_matrix(20, 10, 0.4, rng);
  KernelParams params;
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  FormatKernelEngine engine(mat, params);
  KernelCache cache(engine, 1 << 20);

  const auto row_a = cache.get_row(3);
  const real_t v = row_a[5];
  cache.get_row(3);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(engine.rows_computed(), 1);
  EXPECT_DOUBLE_EQ(cache.get_row(3)[5], v);
}

TEST(KernelCache, EvictsLeastRecentlyUsed) {
  Rng rng(34);
  const CooMatrix coo = test::random_matrix(8, 8, 0.6, rng);
  KernelParams params;
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  FormatKernelEngine engine(mat, params);
  // Budget of exactly 2 rows (8 doubles each).
  KernelCache cache(engine, 2 * 8 * sizeof(real_t));

  cache.get_row(0);
  cache.get_row(1);
  cache.get_row(0);  // 0 is now MRU
  cache.get_row(2);  // evicts 1
  EXPECT_EQ(cache.resident_rows(), 2u);
  cache.get_row(0);  // still a hit
  EXPECT_EQ(cache.hits(), 2);
  cache.get_row(1);  // miss again
  EXPECT_EQ(engine.rows_computed(), 4);
}

TEST(KernelCache, StatsSnapshotSafeWhilePrefetchWorkerRuns) {
  // The serving engine's stats endpoint reads cache counters from a thread
  // that is neither the solver nor the prefetch worker. The accessors are
  // acquire loads over release increments, so an off-thread reader must
  // observe monotone values without racing (TSan validates the absence of
  // data races in the sanitizer build).
  Rng rng(36);
  const CooMatrix coo = test::random_matrix(64, 32, 0.4, rng);
  KernelParams params;
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  FormatKernelEngine engine(mat, params);
  KernelCache cache(engine, 16 << 10);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::int64_t last_requests = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::int64_t total = cache.hits() + cache.misses();
      EXPECT_GE(total, last_requests);
      last_requests = total;
      (void)cache.resident_rows();
      (void)cache.prefetched_rows();
      (void)cache.pipeline_hits();
      (void)cache.pipeline_misses();
      (void)engine.rows_computed();
    }
  });

  std::vector<index_t> candidates;
  for (index_t pass = 0; pass < 8; ++pass) {
    candidates.clear();
    for (index_t i = 0; i < 16; ++i) {
      candidates.push_back((pass * 7 + i * 3) % 64);
    }
    cache.prefetch(candidates);
    for (index_t i = 0; i < 32; ++i) {
      cache.get_row((pass * 11 + i) % 64);
    }
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(cache.hits() + cache.misses(), 8 * 32);
  EXPECT_LE(cache.pipeline_hits(), cache.prefetched_rows());
}

TEST(KernelCache, PairwiseSpansRemainValid) {
  // The SMO usage pattern: hold two rows at once under a tiny budget.
  Rng rng(35);
  const CooMatrix coo = test::random_matrix(6, 6, 0.8, rng);
  KernelParams params;
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kDEN);
  FormatKernelEngine engine(mat, params);
  KernelCache cache(engine, 1);  // forces the 2-row minimum

  for (index_t a = 0; a < 6; ++a) {
    for (index_t b = 0; b < 6; ++b) {
      const auto row_a = cache.get_row(a);
      const real_t expect_ab = row_a[static_cast<std::size_t>(b)];
      const auto row_b = cache.get_row(b);
      // row_a's span must still hold valid data (symmetry check).
      EXPECT_DOUBLE_EQ(row_a[static_cast<std::size_t>(b)], expect_ab);
      EXPECT_NEAR(row_b[static_cast<std::size_t>(a)], expect_ab, 1e-12);
    }
  }
}

// ------------------------------------------------------------------- SMO

/// Builds a dataset directly from dense rows.
Dataset tiny_dataset(const std::vector<std::vector<real_t>>& rows,
                     std::vector<real_t> y) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j] != 0.0) {
        t.push_back({static_cast<index_t>(i), static_cast<index_t>(j),
                     rows[i][j]});
      }
    }
  }
  Dataset ds;
  ds.name = "tiny";
  ds.X = CooMatrix(static_cast<index_t>(rows.size()),
                   static_cast<index_t>(rows[0].size()), std::move(t));
  ds.y = std::move(y);
  return ds;
}

TEST(Smo, TwoPointAnalyticSolution) {
  // x1 = +1 (y=+1), x2 = -1 (y=-1): optimum alpha1 = alpha2 = 0.5, rho = 0.
  const Dataset ds = tiny_dataset({{1.0}, {-1.0}}, {1.0, -1.0});
  SvmParams params;
  params.c = 10.0;
  const TrainResult r = train_fixed_format(ds, params, Format::kDEN);
  EXPECT_TRUE(r.stats.converged);
  EXPECT_EQ(r.stats.support_vectors, 2);
  EXPECT_NEAR(r.model.rho, 0.0, 1e-3);
  ASSERT_EQ(r.model.coef.size(), 2u);
  EXPECT_NEAR(r.model.coef[0], 0.5, 1e-6);
  EXPECT_NEAR(r.model.coef[1], -0.5, 1e-6);
  // Dual objective of the analytic solution: F = 1 - 0.5 * 1 = 0.5.
  EXPECT_NEAR(r.stats.objective, 0.5, 1e-6);
}

TEST(Smo, BoxConstraintClipsAtC) {
  // Overlapping points force alpha to the C bound.
  const Dataset ds =
      tiny_dataset({{1.0}, {0.9}, {-1.0}, {-0.9}}, {1.0, -1.0, -1.0, 1.0});
  SvmParams params;
  params.c = 0.5;
  const TrainResult r = train_fixed_format(ds, params, Format::kDEN);
  for (real_t a : r.model.coef) {
    EXPECT_LE(std::abs(a), 0.5 + 1e-9);
  }
}

TEST(Smo, XorSolvableWithGaussianKernel) {
  const Dataset ds = tiny_dataset(
      {{0.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}, {1.0, 0.0}},
      {1.0, 1.0, -1.0, -1.0});
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 2.0;
  params.c = 100.0;
  const TrainResult r = train_fixed_format(ds, params, Format::kDEN);
  EXPECT_TRUE(r.stats.converged);
  EXPECT_DOUBLE_EQ(r.model.accuracy(ds), 1.0);
}

/// Checks final KKT conditions on a solved problem.
void check_kkt(const Dataset& ds, const SvmParams& params, Format fmt) {
  const AnyMatrix x = AnyMatrix::from_coo(ds.X, fmt);
  FormatKernelEngine engine(x, params.kernel);
  KernelCache cache(engine, 16 << 20);
  SmoSolver solver(cache, ds.y, params);
  const SolveStats stats = solver.solve();
  ASSERT_TRUE(stats.converged);

  // Constraint (2): sum alpha_i y_i = 0 and 0 <= alpha_i <= C.
  real_t balance = 0.0;
  for (index_t i = 0; i < ds.rows(); ++i) {
    const real_t a = solver.alpha()[static_cast<std::size_t>(i)];
    EXPECT_GE(a, -1e-12);
    EXPECT_LE(a, params.c + 1e-12);
    balance += a * ds.y[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(balance, 0.0, 1e-9);
  // Optimality gap closed to tolerance.
  EXPECT_LE(stats.b_low, stats.b_high + 2 * params.tolerance + 1e-12);
}

TEST(Smo, KktConditionsHoldOnRandomProblem) {
  Rng rng(36);
  Dataset ds;
  ds.name = "kkt";
  ds.X = test::random_matrix(60, 12, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.05, 9);
  SvmParams params;
  params.c = 1.0;
  check_kkt(ds, params, Format::kCSR);
}

TEST(Smo, KktHoldsWithGaussianKernelToo) {
  Rng rng(37);
  Dataset ds;
  ds.name = "kkt_rbf";
  ds.X = test::random_matrix(50, 8, 0.6, rng);
  ds.y = plant_labels(ds.X, 0.1, 10);
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.5;
  params.c = 2.0;
  check_kkt(ds, params, Format::kELL);
}

TEST(Smo, AllFormatsReachTheSameObjective) {
  Rng rng(38);
  Dataset ds;
  ds.name = "formats";
  ds.X = test::random_matrix(45, 10, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.1, 11);
  SvmParams params;
  params.c = 1.0;

  double reference = 0.0;
  bool first = true;
  for (Format f : kAllFormats) {
    const TrainResult r = train_fixed_format(ds, params, f);
    ASSERT_TRUE(r.stats.converged) << format_name(f);
    if (first) {
      reference = r.stats.objective;
      first = false;
    } else {
      // Same QP, same solver: objectives agree to solver tolerance.
      EXPECT_NEAR(r.stats.objective, reference,
                  1e-3 * std::abs(reference) + 1e-6)
          << format_name(f);
    }
  }
}

TEST(Smo, FirstAndSecondOrderSelectionAgreeOnObjective) {
  Rng rng(39);
  Dataset ds;
  ds.name = "wss";
  ds.X = test::random_matrix(50, 10, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.1, 12);
  SvmParams p1;
  p1.wss = WssPolicy::kFirstOrder;
  SvmParams p2;
  p2.wss = WssPolicy::kSecondOrder;
  const TrainResult r1 = train_fixed_format(ds, p1, Format::kCSR);
  const TrainResult r2 = train_fixed_format(ds, p2, Format::kCSR);
  ASSERT_TRUE(r1.stats.converged);
  ASSERT_TRUE(r2.stats.converged);
  EXPECT_NEAR(r1.stats.objective, r2.stats.objective,
              1e-2 * std::abs(r1.stats.objective) + 1e-6);
}

TEST(Smo, ShrinkingPreservesTheSolution) {
  Rng rng(40);
  Dataset ds;
  ds.name = "shrink";
  ds.X = test::random_matrix(80, 10, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.1, 13);
  SvmParams plain;
  SvmParams shrunk;
  shrunk.shrinking = true;
  shrunk.shrink_interval = 20;
  const TrainResult r1 = train_fixed_format(ds, plain, Format::kCSR);
  const TrainResult r2 = train_fixed_format(ds, shrunk, Format::kCSR);
  ASSERT_TRUE(r1.stats.converged);
  ASSERT_TRUE(r2.stats.converged);
  EXPECT_NEAR(r2.stats.objective, r1.stats.objective,
              1e-2 * std::abs(r1.stats.objective) + 1e-6);
}

TEST(Smo, RejectsNonBinaryLabels) {
  Dataset ds = tiny_dataset({{1.0}, {2.0}}, {1.0, 3.0});
  SvmParams params;
  EXPECT_THROW(train_fixed_format(ds, params, Format::kDEN), Error);
}

TEST(Smo, IterationCapStopsDivergentRuns) {
  Rng rng(41);
  Dataset ds;
  ds.name = "cap";
  ds.X = test::random_matrix(40, 8, 0.5, rng);
  ds.y = plant_labels(ds.X, 0.3, 14);
  SvmParams params;
  params.max_iterations = 3;
  const TrainResult r = train_fixed_format(ds, params, Format::kCSR);
  EXPECT_LE(r.stats.iterations, 3);
}

// ----------------------------------------------------- model & trainers

TEST(Model, DecisionIsKernelExpansion) {
  const Dataset ds = tiny_dataset({{2.0}, {-2.0}}, {1.0, -1.0});
  SvmParams params;
  params.c = 10.0;
  const TrainResult r = train_fixed_format(ds, params, Format::kDEN);
  SparseVector probe({0}, {3.0});
  // w = sum coef_i x_i; with alpha = 0.125 each: w = 0.5 -> decision 1.5.
  EXPECT_NEAR(r.model.decision(probe), 1.5, 1e-3);
  EXPECT_EQ(r.model.predict(probe), 1.0);
}

TEST(Trainer, AdaptiveBeatsRandomGuessOnPlantedData) {
  const DatasetProfile& profile = profile_by_name("adult");
  Dataset ds = profile.generate(21);
  // Shrink for test speed.
  std::vector<index_t> ids;
  for (index_t i = 0; i < 400; ++i) ids.push_back(i);
  ds = ds.subset(ids, ".small");
  const auto [train, test] = ds.split(0.8, 3);

  SvmParams params;
  params.c = 1.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const TrainResult r = train_adaptive(train, params, sched);
  EXPECT_TRUE(r.stats.converged);
  // Planted labels with 10% noise: anything near 0.5 would mean failure.
  EXPECT_GT(r.model.accuracy(test), 0.7);
  EXPECT_GT(r.stats.support_vectors, 0);
}

TEST(Trainer, BaselineAndAdaptiveAgreeOnAccuracy) {
  Rng rng(42);
  Dataset ds;
  ds.name = "agree";
  ds.X = test::random_matrix(120, 15, 0.3, rng);
  ds.y = plant_labels(ds.X, 0.05, 15);
  SvmParams params;

  const TrainResult ours = train_fixed_format(ds, params, Format::kCSR);
  const TrainResult libsvm = train_libsvm_baseline(ds, params);
  ASSERT_TRUE(ours.stats.converged);
  ASSERT_TRUE(libsvm.stats.converged);
  EXPECT_NEAR(ours.stats.objective, libsvm.stats.objective,
              1e-3 * std::abs(ours.stats.objective) + 1e-6);
  EXPECT_NEAR(ours.model.accuracy(ds), libsvm.model.accuracy(ds), 0.03);
}

TEST(Trainer, CrossValidationReturnsSensibleAccuracy) {
  Rng rng(43);
  Dataset ds;
  ds.name = "cv";
  ds.X = test::random_matrix(100, 10, 0.4, rng);
  ds.y = plant_labels(ds.X, 0.05, 16);
  SvmParams params;
  const double acc = cross_validate(ds, params, 4);
  EXPECT_GT(acc, 0.6);
  EXPECT_LE(acc, 1.0);
}

TEST(Multiclass, OneVsOneSeparatesThreeBlobs) {
  // Three well-separated 2-D blobs.
  Rng rng(44);
  std::vector<Triplet> t;
  std::vector<real_t> y;
  const real_t centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (index_t i = 0; i < 90; ++i) {
    const int k = static_cast<int>(i % 3);
    t.push_back({i, 0, centers[k][0] + rng.normal(0, 0.5)});
    t.push_back({i, 1, centers[k][1] + rng.normal(0, 0.5)});
    y.push_back(static_cast<real_t>(k + 1));
  }
  Dataset ds{"blobs", CooMatrix(90, 2, std::move(t)), std::move(y)};

  SvmParams params;
  params.c = 10.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const MulticlassResult r = train_one_vs_one(ds, params, sched);
  EXPECT_EQ(r.model.machines.size(), 3u);  // 3 choose 2
  EXPECT_EQ(r.chosen_formats.size(), 3u);
  EXPECT_GT(r.model.accuracy(ds), 0.95);
}

TEST(Multiclass, OneVsRestMatchesOneVsOneOnSeparableBlobs) {
  Rng rng(45);
  std::vector<Triplet> t;
  std::vector<real_t> y;
  const real_t centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (index_t i = 0; i < 90; ++i) {
    const int k = static_cast<int>(i % 3);
    t.push_back({i, 0, centers[k][0] + rng.normal(0, 0.5)});
    t.push_back({i, 1, centers[k][1] + rng.normal(0, 0.5)});
    y.push_back(static_cast<real_t>(k + 1));
  }
  Dataset ds{"blobs_ovr", CooMatrix(90, 2, std::move(t)), std::move(y)};

  SvmParams params;
  params.c = 10.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const OvrResult ovr = train_one_vs_rest(ds, params, sched);
  EXPECT_EQ(ovr.model.machines.size(), 3u);  // one per class
  EXPECT_GT(ovr.model.accuracy(ds), 0.95);
  // The shared cache across machines must produce real cross-machine hits
  // (machine 0 already computed many of the rows machines 1-2 need).
  EXPECT_GT(ovr.cache_hit_rate, 0.3);
}

TEST(Multiclass, OneVsRestSharedLayoutDecision) {
  Rng rng(46);
  Dataset ds;
  ds.name = "ovr_layout";
  ds.X = test::random_matrix(60, 20, 0.2, rng);
  ds.y.resize(60);
  for (index_t i = 0; i < 60; ++i) {
    ds.y[static_cast<std::size_t>(i)] = static_cast<real_t>(i % 3);
  }
  SvmParams params;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  sched.fixed_format = Format::kELL;
  const OvrResult r = train_one_vs_rest(ds, params, sched);
  EXPECT_EQ(r.layout, Format::kELL);
  EXPECT_GT(r.total_iterations, 0);
}

TEST(Multiclass, RequiresAtLeastTwoClasses) {
  Dataset ds{"one", CooMatrix(2, 1, {{0, 0, 1.0}, {1, 0, 2.0}}), {1.0, 1.0}};
  SvmParams params;
  EXPECT_THROW(train_one_vs_one(ds, params), Error);
}

}  // namespace
}  // namespace ls
