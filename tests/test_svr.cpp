// Tests for epsilon support-vector regression: the duplicated kernel
// source, exact fits on noiseless data, the epsilon-insensitive tube,
// nonlinear regression with the Gaussian kernel, and format invariance.
#include <gtest/gtest.h>

#include <cmath>

#include "svm/kernel_engine.hpp"
#include "svm/svr.hpp"
#include "test_util.hpp"

namespace ls {
namespace {

Dataset regression_dataset(index_t rows, index_t cols,
                           const std::vector<real_t>& w_true, real_t noise,
                           std::uint64_t seed) {
  Rng rng(seed);
  Dataset ds;
  ds.name = "svr";
  ds.X = test::random_matrix(rows, cols, 0.6, rng);
  ds.y.resize(static_cast<std::size_t>(rows));
  SparseVector row;
  for (index_t i = 0; i < rows; ++i) {
    ds.X.gather_row(i, row);
    real_t target = 0.0;
    const auto idx = row.indices();
    const auto val = row.values();
    for (index_t k = 0; k < row.nnz(); ++k) {
      target += val[static_cast<std::size_t>(k)] *
                w_true[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])];
    }
    ds.y[static_cast<std::size_t>(i)] = target + rng.normal(0.0, noise);
  }
  return ds;
}

TEST(DuplicatedKernel, TilesBaseRowsTwice) {
  Rng rng(90);
  const CooMatrix coo = test::random_matrix(6, 4, 0.5, rng);
  KernelParams params;
  const AnyMatrix mat = AnyMatrix::from_coo(coo, Format::kCSR);
  FormatKernelEngine base(mat, params);
  DuplicatedKernelSource dup(base);

  EXPECT_EQ(dup.num_rows(), 12);
  std::vector<real_t> big(12), small(6);
  dup.compute_row(8, big);       // maps to base row 2
  base.compute_row(2, small);
  for (index_t j = 0; j < 6; ++j) {
    EXPECT_DOUBLE_EQ(big[static_cast<std::size_t>(j)],
                     small[static_cast<std::size_t>(j)]);
    EXPECT_DOUBLE_EQ(big[static_cast<std::size_t>(j + 6)],
                     small[static_cast<std::size_t>(j)]);
  }
  EXPECT_DOUBLE_EQ(dup.diagonal(8), base.diagonal(2));
}

TEST(Svr, FitsALinearFunctionWithinTheTube) {
  const std::vector<real_t> w_true = {1.0, -2.0, 0.5, 3.0, -1.0, 0.0, 2.0,
                                      -0.5};
  const Dataset ds = regression_dataset(80, 8, w_true, 0.0, 91);
  SvrParams params;
  params.epsilon = 0.05;
  params.svm.c = 100.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const SvrResult r = train_svr(ds, params, sched);

  ASSERT_TRUE(r.stats.converged);
  // Every residual within (slightly more than) the epsilon tube.
  SparseVector row;
  for (index_t i = 0; i < ds.rows(); ++i) {
    ds.X.gather_row(i, row);
    EXPECT_NEAR(r.model.predict(row), ds.y[static_cast<std::size_t>(i)],
                params.epsilon + 0.02)
        << "sample " << i;
  }
  EXPECT_LT(r.model.mse(ds), 0.01);
}

TEST(Svr, PredictsConstantTargetsWithNoSupportVectors) {
  // All targets equal c: the zero function plus bias fits inside any tube,
  // so alpha = alpha* = 0 and rho = -c.
  Dataset ds;
  ds.name = "const";
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 0, 2.0}, {2, 0, 3.0}};
  ds.X = CooMatrix(3, 1, std::move(t));
  ds.y = {5.0, 5.0, 5.0};
  SvrParams params;
  params.epsilon = 0.1;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kFixed;
  const SvrResult r = train_svr(ds, params, sched);
  SparseVector probe({0}, {1.5});
  EXPECT_NEAR(r.model.predict(probe), 5.0, 0.15);
}

TEST(Svr, GaussianKernelFitsANonlinearFunction) {
  // Targets z = sin(2 * x) on scalar inputs.
  Dataset ds;
  ds.name = "sin";
  std::vector<Triplet> t;
  std::vector<real_t> y;
  const index_t n = 60;
  for (index_t i = 0; i < n; ++i) {
    const real_t x = static_cast<real_t>(i) / n * 3.0;
    if (x != 0.0) t.push_back({i, 0, x});
    y.push_back(std::sin(2.0 * x));
  }
  ds.X = CooMatrix(n, 1, std::move(t));
  ds.y = std::move(y);

  SvrParams params;
  params.epsilon = 0.02;
  params.svm.c = 50.0;
  params.svm.kernel.type = KernelType::kGaussian;
  params.svm.kernel.gamma = 4.0;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;
  const SvrResult r = train_svr(ds, params, sched);
  ASSERT_TRUE(r.stats.converged);
  EXPECT_LT(r.model.mae(ds), 0.05);
}

TEST(Svr, WiderTubeGivesFewerSupportVectors) {
  const std::vector<real_t> w_true = {2.0, -1.0, 0.5, 1.5};
  const Dataset ds = regression_dataset(60, 4, w_true, 0.05, 92);
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kHeuristic;

  SvrParams narrow;
  narrow.epsilon = 0.01;
  narrow.svm.c = 10.0;
  SvrParams wide;
  wide.epsilon = 0.5;
  wide.svm.c = 10.0;
  const SvrResult rn = train_svr(ds, narrow, sched);
  const SvrResult rw = train_svr(ds, wide, sched);
  EXPECT_GT(rn.model.support_vectors.size(),
            rw.model.support_vectors.size());
}

TEST(Svr, AllFormatsProduceTheSameRegressor) {
  const std::vector<real_t> w_true = {1.0, -1.0, 2.0};
  const Dataset ds = regression_dataset(40, 3, w_true, 0.02, 93);
  SvrParams params;
  params.epsilon = 0.05;
  params.svm.c = 20.0;

  SparseVector probe({0, 2}, {0.5, -0.3});
  double reference = 0.0;
  bool first = true;
  for (Format f : kAllFormats) {
    SchedulerOptions sched;
    sched.policy = SchedulePolicy::kFixed;
    sched.fixed_format = f;
    const SvrResult r = train_svr(ds, params, sched);
    ASSERT_TRUE(r.stats.converged) << format_name(f);
    const double pred = r.model.predict(probe);
    if (first) {
      reference = pred;
      first = false;
    } else {
      EXPECT_NEAR(pred, reference, 1e-3) << format_name(f);
    }
  }
}

TEST(Svr, LayoutSchedulingReportsADecision) {
  const std::vector<real_t> w_true = {1.0, 1.0, 1.0, 1.0};
  const Dataset ds = regression_dataset(50, 4, w_true, 0.01, 94);
  SvrParams params;
  SchedulerOptions sched;
  sched.policy = SchedulePolicy::kEmpirical;
  sched.autotune.sample_rows = 0;
  const SvrResult r = train_svr(ds, params, sched);
  EXPECT_NE(r.decision.rationale.find("empirical"), std::string::npos);
  EXPECT_GT(r.stats.kernel_rows_computed, 0);
}

TEST(Svr, RejectsNegativeEpsilon) {
  const Dataset ds = regression_dataset(10, 2, {1.0, 1.0}, 0.0, 95);
  SvrParams params;
  params.epsilon = -0.1;
  EXPECT_THROW(train_svr(ds, params), Error);
}

}  // namespace
}  // namespace ls
