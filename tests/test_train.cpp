// Tests of the continuous train-and-serve subsystem: the sliding window,
// the SMO warm start, checkpoint resume across simulated process death,
// the trainer daemon's publish path into the serve tier, and the ingest /
// models wire surface.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <dirent.h>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/fs_atomic.hpp"
#include "common/rng.hpp"
#include "formats/any_matrix.hpp"
#include "serve/client.hpp"
#include "serve/engine.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "svm/cache.hpp"
#include "svm/checkpoint.hpp"
#include "svm/kernel_engine.hpp"
#include "svm/model.hpp"
#include "svm/serialize.hpp"
#include "svm/smo.hpp"
#include "train/continuous_trainer.hpp"
#include "train/handler.hpp"
#include "train/window.hpp"

namespace ls::train {
namespace {

struct Example {
  SparseVector x;
  real_t label;
};

/// Deterministic overlapping two-class stream (noisy margin => plenty of
/// support vectors, so solves run long enough to checkpoint).
std::vector<Example> make_stream(std::size_t n, index_t d,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Example> out;
  out.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    const real_t label = rng.bernoulli(0.5) ? 1.0 : -1.0;
    std::vector<index_t> idx;
    std::vector<real_t> val;
    for (index_t c = 0; c < d; ++c) {
      if (!rng.bernoulli(0.5)) continue;
      idx.push_back(c);
      val.push_back(rng.normal() + 0.3 * label);
    }
    if (idx.empty()) {
      idx.push_back(0);
      val.push_back(label);
    }
    out.push_back({SparseVector(std::move(idx), std::move(val)), label});
  }
  return out;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ls_train_" + name;
}

SvmParams gaussian_params(double c = 4.0, double tolerance = 1e-3) {
  SvmParams params;
  params.kernel.type = KernelType::kGaussian;
  params.kernel.gamma = 0.5;
  params.c = c;
  params.tolerance = tolerance;
  return params;
}

/// Fills a window with stream[from, to) and returns its snapshot.
WindowSnapshot window_snapshot(const std::vector<Example>& stream,
                               std::size_t from, std::size_t to,
                               std::size_t capacity) {
  SlidingWindow w(capacity);
  for (std::size_t r = from; r < to; ++r) {
    w.append(stream[r].x, stream[r].label);
  }
  return w.snapshot("w");
}

// --- sliding window ------------------------------------------------------

TEST(TrainWindow, EvictsOldestAndKeepsMonotoneIds) {
  SlidingWindow w(4);
  for (int i = 0; i < 10; ++i) {
    const std::int64_t id =
        w.append(SparseVector({0}, {1.0}), i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_EQ(id, i);  // the k-th append to a fresh window gets id k
  }
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.total_appended(), 10);
  const WindowSnapshot snap = w.snapshot("m");
  ASSERT_EQ(snap.ids.size(), 4u);
  // The four survivors are the most recent appends, oldest first.
  EXPECT_EQ(snap.ids.front(), 6);
  EXPECT_EQ(snap.ids.back(), 9);
}

TEST(TrainWindow, SnapshotCapturesLabelsAndClassBalance) {
  SlidingWindow w(8);
  w.append(SparseVector({0, 3}, {1.0, 2.0}), 1.0);
  w.append(SparseVector({1}, {-1.0}), -1.0);
  w.append(SparseVector({5}, {0.5}), 1.0);
  const WindowSnapshot snap = w.snapshot("m");
  EXPECT_EQ(snap.positives, 2);
  EXPECT_EQ(snap.negatives, 1);
  EXPECT_TRUE(snap.trainable());
  EXPECT_EQ(snap.ds.rows(), 3);
  EXPECT_EQ(snap.ds.X.cols(), 6);  // widest live example decides
  ASSERT_EQ(snap.ds.y.size(), 3u);
  EXPECT_EQ(snap.ds.y[0], 1.0);
  EXPECT_EQ(snap.ds.y[1], -1.0);
}

TEST(TrainWindow, OneClassWindowIsNotTrainable) {
  SlidingWindow w(8);
  w.append(SparseVector({0}, {1.0}), 1.0);
  w.append(SparseVector({1}, {1.0}), 1.0);
  EXPECT_FALSE(w.snapshot("m").trainable());
}

TEST(TrainWindow, DigestTracksContentNotJustIds) {
  SlidingWindow a(4), b(4), c(4);
  a.append(SparseVector({0}, {1.0}), 1.0);
  a.append(SparseVector({1}, {2.0}), -1.0);
  b.append(SparseVector({0}, {1.0}), 1.0);
  b.append(SparseVector({1}, {2.0}), -1.0);
  c.append(SparseVector({0}, {1.0}), 1.0);
  c.append(SparseVector({1}, {2.5}), -1.0);  // same ids, one value differs
  EXPECT_EQ(a.snapshot("m").digest, b.snapshot("m").digest);
  EXPECT_NE(a.snapshot("m").digest, c.snapshot("m").digest);
}

TEST(TrainWindow, RejectsNonBinaryLabels) {
  SlidingWindow w(4);
  EXPECT_THROW(w.append(SparseVector({0}, {1.0}), 0.5), Error);
}

// --- SMO warm start ------------------------------------------------------

struct Solved {
  SolveStats stats;
  SvmModel model;
  std::vector<real_t> alpha;
};

Solved solve_snapshot(const WindowSnapshot& snap, const SvmParams& params,
                      const std::vector<real_t>* warm_seed = nullptr,
                      index_t* seeded_out = nullptr) {
  const AnyMatrix x = AnyMatrix::from_coo(snap.ds.X, Format::kCSR);
  FormatKernelEngine engine(x, params.kernel);
  KernelCache cache(engine, params.cache_bytes);
  SmoSolver solver(cache, snap.ds.y, params);
  if (warm_seed != nullptr) {
    const index_t seeded = solver.warm_start(*warm_seed);
    if (seeded_out != nullptr) *seeded_out = seeded;
  }
  Solved out;
  out.stats = solver.solve();
  out.model =
      build_model(x, snap.ds.y, solver.alpha(), solver.rho(), params.kernel);
  out.alpha.assign(solver.alpha().begin(), solver.alpha().end());
  return out;
}

// The warm-start satellite: retraining on the slid window W u dW seeded
// from W's solution must reach the same KKT gap as a cold solve, score
// overlapping data near-identically, and spend strictly fewer iterations.
TEST(SmoWarmStart, MatchesColdSolveWithFewerIterations) {
  const index_t d = 16;
  const std::vector<Example> stream = make_stream(240, d, 0x77A);
  const SvmParams params = gaussian_params(4.0, 1e-3);

  // Previous window W = [0, 160); the window slides to W' = [60, 240).
  const WindowSnapshot w1 = window_snapshot(stream, 0, 160, 160);
  const WindowSnapshot w2 = window_snapshot(stream, 0, 240, 180);
  ASSERT_TRUE(w1.trainable());
  ASSERT_TRUE(w2.trainable());
  const Solved prev = solve_snapshot(w1, params);
  ASSERT_TRUE(prev.stats.converged);

  const Solved cold = solve_snapshot(w2, params);
  ASSERT_TRUE(cold.stats.converged);

  // Map W's alphas onto the ids that survived the slide, as the trainer
  // does (new rows seed at zero).
  std::vector<real_t> seed(w2.ids.size(), 0.0);
  for (std::size_t k = 0; k < w2.ids.size(); ++k) {
    const std::int64_t id = w2.ids[k];
    for (std::size_t j = 0; j < w1.ids.size(); ++j) {
      if (w1.ids[j] == id) {
        seed[k] = prev.alpha[j];
        break;
      }
    }
  }
  index_t seeded = 0;
  const Solved warm = solve_snapshot(w2, params, &seed, &seeded);
  ASSERT_TRUE(warm.stats.converged);
  EXPECT_GT(seeded, 0);

  // Same KKT gap: both converged under the same tolerance.
  EXPECT_LE(warm.stats.b_low - warm.stats.b_high, 2.0 * params.tolerance);
  EXPECT_LE(cold.stats.b_low - cold.stats.b_high, 2.0 * params.tolerance);

  // Strictly fewer iterations on the overlapping window (warm_start
  // restarts the iteration counter, so the counts are comparable work).
  EXPECT_LT(warm.stats.iterations, cold.stats.iterations);

  // Decision-value equivalence on held-out probes, bounded by the solver
  // tolerance (two tolerance-converged solves of the same dual).
  const std::vector<Example> probes = make_stream(64, d, 0xF00D);
  for (const Example& p : probes) {
    EXPECT_NEAR(warm.model.decision(p.x), cold.model.decision(p.x),
                20.0 * params.tolerance);
  }
}

TEST(SmoWarmStart, RepairsInfeasibleSeedToBoxAndEqualityFeasibility) {
  const index_t d = 12;
  const std::vector<Example> stream = make_stream(100, d, 0xFEA);
  const SvmParams params = gaussian_params(2.0, 1e-3);
  const WindowSnapshot snap = window_snapshot(stream, 0, 100, 100);
  const Solved base = solve_snapshot(snap, params);
  ASSERT_TRUE(base.stats.converged);

  // Corrupt the solution the way a window slide does, only harder: scale
  // past the box, zero a third of the entries (evicted SVs), and inflate
  // one alpha far beyond C.
  std::vector<real_t> seed = base.alpha;
  for (std::size_t i = 0; i < seed.size(); ++i) {
    seed[i] *= 1.7;
    if (i % 3 == 0) seed[i] = 0.0;
  }
  seed[1] = 50.0 * params.c;

  const AnyMatrix x = AnyMatrix::from_coo(snap.ds.X, Format::kCSR);
  FormatKernelEngine engine(x, params.kernel);
  KernelCache cache(engine, params.cache_bytes);
  SmoSolver solver(cache, snap.ds.y, params);
  solver.warm_start(seed);

  // SMO's pairwise updates preserve the start's feasibility — so the seed
  // must already be inside the box and on the equality constraint.
  real_t dot = 0.0;
  for (std::size_t i = 0; i < seed.size(); ++i) {
    const real_t a = solver.alpha()[i];
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, params.c + 1e-12);
    dot += a * snap.ds.y[i];
  }
  EXPECT_NEAR(dot, 0.0, 1e-9);

  const SolveStats stats = solver.solve();
  EXPECT_TRUE(stats.converged);
}

TEST(SmoWarmStart, AllZeroSeedBehavesLikeColdStart) {
  const index_t d = 8;
  const std::vector<Example> stream = make_stream(60, d, 0xC01D);
  const SvmParams params = gaussian_params();
  const WindowSnapshot snap = window_snapshot(stream, 0, 60, 60);

  const Solved cold = solve_snapshot(snap, params);
  const std::vector<real_t> zeros(snap.ids.size(), 0.0);
  index_t seeded = 99;
  const Solved warm = solve_snapshot(snap, params, &zeros, &seeded);
  EXPECT_EQ(seeded, 0);
  EXPECT_EQ(warm.stats.iterations, cold.stats.iterations);
  EXPECT_EQ(warm.stats.objective, cold.stats.objective);
}

// --- trainer daemon core -------------------------------------------------

TrainerModelConfig model_config(const std::string& name,
                                const std::string& path,
                                std::size_t window = 256) {
  TrainerModelConfig cfg;
  cfg.name = name;
  cfg.model_path = path;
  cfg.window_capacity = window;
  return cfg;
}

TrainerOptions trainer_options() {
  TrainerOptions opts;
  opts.svm = gaussian_params();
  return opts;
}

void ingest_all(ContinuousTrainer& t, const std::string& name,
                const std::vector<Example>& stream, std::size_t from,
                std::size_t to) {
  for (std::size_t r = from; r < to && r < stream.size(); ++r) {
    ASSERT_EQ(t.ingest(name, stream[r].x, stream[r].label),
              serve::Status::kOk);
  }
}

TEST(ContinuousTrainer, IngestValidationAndUnknownModels) {
  ContinuousTrainer trainer(trainer_options());
  trainer.add_model(model_config("m", temp_path("validate_model.txt")));
  EXPECT_EQ(trainer.ingest("nope", SparseVector({0}, {1.0}), 1.0),
            serve::Status::kUnknownModel);
  EXPECT_EQ(trainer.ingest("m", SparseVector({0}, {1.0}), 0.5),
            serve::Status::kBadFrame);
  EXPECT_EQ(trainer.ingest("m", SparseVector({0}, {1.0}), 1.0),
            serve::Status::kOk);
  const TrainerModelStats s = trainer.model_stats("m");
  EXPECT_EQ(s.ingested, 1);
  EXPECT_EQ(s.rejected_labels, 1);
  EXPECT_EQ(s.window_size, 1u);
}

TEST(ContinuousTrainer, TrainOnceProducesLoadableModelAndMonotoneVersions) {
  const std::string path = temp_path("monotone_model.txt");
  const std::vector<Example> stream = make_stream(160, 12, 0x3E0);
  ContinuousTrainer trainer(trainer_options());
  trainer.add_model(model_config("m", path));

  // A one-class window must not train.
  ASSERT_EQ(trainer.ingest("m", SparseVector({0}, {1.0}), 1.0),
            serve::Status::kOk);
  EXPECT_FALSE(trainer.train_once("m"));
  EXPECT_EQ(trainer.model_stats("m").version, 0);

  ingest_all(trainer, "m", stream, 0, 100);
  ASSERT_TRUE(trainer.train_once("m"));
  const TrainerModelStats v1 = trainer.model_stats("m");
  EXPECT_EQ(v1.version, 1);
  EXPECT_EQ(v1.trains_total, 1);
  EXPECT_GT(v1.last_iterations, 0);
  EXPECT_EQ(v1.last_warm_seeded, 0);  // nothing to warm start from yet
  const SvmModel m1 = load_model_file(path);  // atomic + CRC-verified
  EXPECT_GT(m1.support_vectors.size(), 0u);

  // Slide the window and retrain: the version moves and the previous
  // solution seeds the solver.
  ingest_all(trainer, "m", stream, 100, 160);
  ASSERT_TRUE(trainer.train_once("m"));
  const TrainerModelStats v2 = trainer.model_stats("m");
  EXPECT_EQ(v2.version, 2);
  EXPECT_GT(v2.last_warm_seeded, 0);
  (void)load_model_file(path);
}

TEST(ContinuousTrainer, CadenceThreadRetrainsWithoutExplicitTicks) {
  const std::string path = temp_path("cadence_model.txt");
  const std::vector<Example> stream = make_stream(80, 10, 0xCAD);
  TrainerOptions opts = trainer_options();
  opts.retrain_interval_ms = 20.0;
  opts.min_new_examples = 10;
  ContinuousTrainer trainer(opts);
  trainer.add_model(model_config("m", path));
  trainer.start();
  ingest_all(trainer, "m", stream, 0, 80);
  // The cadence loop owns the retrain; poll until one lands.
  for (int spin = 0; spin < 400; ++spin) {
    if (trainer.model_stats("m").trains_total > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  trainer.stop();
  EXPECT_GT(trainer.model_stats("m").trains_total, 0);
  EXPECT_TRUE(file_exists(path));
  EXPECT_TRUE(trainer.idle());
}

TEST(ContinuousTrainer, ResumesFromCheckpointAfterMidSaveKill) {
  const std::string path = temp_path("resume_model.txt");
  const std::string ckpt = path + ".ckpt";
  remove_checkpoint(ckpt);
  remove_checkpoint(ckpt + ".ids");
  const std::vector<Example> stream = make_stream(150, 16, 0xDEAD);
  TrainerOptions opts = trainer_options();
  opts.svm = gaussian_params(8.0, 1e-4);  // long solve => many checkpoints
  opts.checkpoint_interval = 3;

  {
    ContinuousTrainer victim(opts);
    victim.add_model(model_config("m", path));
    ingest_all(victim, "m", stream, 0, stream.size());
    failpoint::Spec spec;
    spec.action = failpoint::Action::kError;
    spec.skip = 1;  // first save lands, second one "crashes the process"
    spec.limit = 1;
    failpoint::Scoped fp("svm.checkpoint.save", spec);
    EXPECT_FALSE(victim.train_once("m"));
    EXPECT_EQ(failpoint::trigger_count("svm.checkpoint.save"), 1u);
    EXPECT_EQ(victim.model_stats("m").train_failures_total, 1);
    EXPECT_TRUE(file_exists(ckpt));
  }  // trainer destroyed: simulated process death

  ContinuousTrainer reborn(opts);
  reborn.add_model(model_config("m", path));
  // Replay the identical stream: deterministic ids + matching content
  // digest let the solve resume from the surviving checkpoint.
  ingest_all(reborn, "m", stream, 0, stream.size());
  ASSERT_TRUE(reborn.train_once("m"));
  const TrainerModelStats s = reborn.model_stats("m");
  EXPECT_TRUE(s.last_resumed_from_checkpoint);
  EXPECT_EQ(s.version, 1);
  EXPECT_FALSE(file_exists(ckpt));  // converged solve cleans up
  (void)load_model_file(path);
}

TEST(ContinuousTrainer, SidecarContentMismatchPreventsResume) {
  const std::string path = temp_path("mismatch_model.txt");
  const std::string ckpt = path + ".ckpt";
  remove_checkpoint(ckpt);
  remove_checkpoint(ckpt + ".ids");
  const std::vector<Example> stream = make_stream(150, 16, 0xAAA);
  TrainerOptions opts = trainer_options();
  opts.svm = gaussian_params(8.0, 1e-4);
  opts.checkpoint_interval = 3;

  {
    ContinuousTrainer victim(opts);
    victim.add_model(model_config("m", path));
    ingest_all(victim, "m", stream, 0, stream.size());
    failpoint::Scoped fp("svm.checkpoint.save",
                         {failpoint::Action::kError, 0, 1, 1});
    EXPECT_FALSE(victim.train_once("m"));
    EXPECT_TRUE(file_exists(ckpt));
  }

  // A different stream of the SAME length replays the same ids 0..n-1 —
  // only the content digest can tell the windows apart. Resuming the
  // checkpoint against these rows would silently corrupt the solve.
  const std::vector<Example> other = make_stream(150, 16, 0xBBB);
  ContinuousTrainer diverged(opts);
  diverged.add_model(model_config("m", path));
  ingest_all(diverged, "m", other, 0, other.size());
  ASSERT_TRUE(diverged.train_once("m"));
  EXPECT_FALSE(diverged.model_stats("m").last_resumed_from_checkpoint);
}

TEST(ContinuousTrainer, PublishesReloadIntoServeTier) {
  const std::string path = temp_path("publish_model.txt");
  const std::string sock = temp_path("publish.sock");
  const std::vector<Example> stream = make_stream(140, 12, 0x9B);

  TrainerOptions opts = trainer_options();
  opts.publish_unix = sock;
  opts.publish_timeout_ms = 2000.0;
  ContinuousTrainer trainer(opts);
  trainer.add_model(model_config("m", path));

  // First train happens before the serve tier exists: the publish fails,
  // is counted, and does not fail the train.
  ingest_all(trainer, "m", stream, 0, 80);
  ASSERT_TRUE(trainer.train_once("m"));
  EXPECT_EQ(trainer.model_stats("m").publish_failures_total, 1);

  serve::ServeOptions sopts;
  sopts.sched.policy = SchedulePolicy::kFixed;
  sopts.sched.fixed_format = Format::kCSR;
  serve::ServeEngine engine(sopts);
  engine.load_model("m", path);
  engine.start();
  serve::ServerOptions lopts;
  lopts.unix_path = sock;
  serve::ServeServer server(engine, lopts);
  server.start();
  const std::int64_t gen_before = engine.model("m")->content_gen;

  ingest_all(trainer, "m", stream, 80, 140);
  ASSERT_TRUE(trainer.train_once("m"));
  const TrainerModelStats s = trainer.model_stats("m");
  EXPECT_EQ(s.publishes_total, 1);
  EXPECT_FALSE(s.last_publish_report.empty());
  // The reload minted a fresh content generation from the new bytes.
  EXPECT_GT(engine.model("m")->content_gen, gen_before);
  EXPECT_EQ(engine.stats().reloads_total, 1);

  server.stop();
  engine.stop();
}

// --- ingest codec --------------------------------------------------------

TEST(TrainProtocol, IngestRequestRoundTrip) {
  const SparseVector x({1, 5, 9}, {0.5, -2.0, 3.25});
  const std::string payload =
      serve::encode_ingest_request("model-a", 42, -1.0, x);
  std::string model;
  std::int64_t example_id = -1;
  real_t label = 0.0;
  SparseVector out;
  serve::decode_ingest_request(payload, model, example_id, label, out);
  EXPECT_EQ(model, "model-a");
  EXPECT_EQ(example_id, 42);
  EXPECT_EQ(label, -1.0);
  ASSERT_EQ(out.nnz(), 3);
  EXPECT_EQ(out.indices()[2], 9);
  EXPECT_EQ(out.values()[1], -2.0);
}

TEST(TrainProtocol, IngestEmptyVectorRoundTrip) {
  const std::string payload =
      serve::encode_ingest_request("m", -1, 1.0, SparseVector());
  std::string model;
  std::int64_t example_id = 0;
  real_t label = 0.0;
  SparseVector out;
  serve::decode_ingest_request(payload, model, example_id, label, out);
  EXPECT_EQ(out.nnz(), 0);
  EXPECT_EQ(example_id, -1);
  EXPECT_EQ(label, 1.0);
}

TEST(TrainProtocol, IngestRejectsNanLabelAndMalformedPayloads) {
  EXPECT_THROW(serve::encode_ingest_request(
                   "m", 0, std::numeric_limits<real_t>::quiet_NaN(),
                   SparseVector({0}, {1.0})),
               Error);

  const std::string good = serve::encode_ingest_request(
      "m", 7, 1.0, SparseVector({0, 2}, {1.0, 2.0}));
  std::string model;
  std::int64_t example_id = -1;
  real_t label = 0.0;
  SparseVector out;
  // Truncation anywhere in the payload must throw, never misparse.
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_THROW(serve::decode_ingest_request(good.substr(0, cut), model,
                                              example_id, label, out),
                 Error);
  }
  // Trailing garbage is structural corruption too.
  EXPECT_THROW(serve::decode_ingest_request(good + "x", model, example_id,
                                            label, out),
               Error);
}

// --- wire surface --------------------------------------------------------

TEST(TrainServer, IngestAndModelsOverUnixSocket) {
  const std::string path = temp_path("wire_model.txt");
  const std::string sock = temp_path("wire.sock");
  const std::vector<Example> stream = make_stream(8, 8, 0x31);

  ContinuousTrainer trainer(trainer_options());
  trainer.add_model(model_config("m", path));
  TrainFrameHandler handler(trainer);
  serve::ServerOptions lopts;
  lopts.unix_path = sock;
  serve::ServeServer server(handler, lopts);
  server.start();

  serve::ServeClient client = serve::ServeClient::connect_unix(sock);
  EXPECT_TRUE(client.ping());
  EXPECT_EQ(client.health(), "ready");
  for (const Example& e : stream) {
    EXPECT_EQ(client.ingest("m", -1, e.label, e.x), serve::Status::kOk);
  }
  std::string message;
  EXPECT_EQ(
      client.ingest("ghost", -1, 1.0, SparseVector({0}, {1.0}), &message),
      serve::Status::kUnknownModel);

  const std::string models = client.models();
  EXPECT_NE(models.find("model m"), std::string::npos);
  EXPECT_NE(models.find("ingested 8"), std::string::npos);
  const std::string stats = client.stats();
  EXPECT_NE(stats.find("ingested_total 8"), std::string::npos);

  // The trainer is not a scoring tier: predict and reload are refused
  // without desyncing the connection.
  EXPECT_EQ(client.predict("m", SparseVector({0}, {1.0})).status,
            serve::Status::kBadFrame);
  EXPECT_EQ(client.reload("m"), serve::Status::kBadFrame);
  EXPECT_TRUE(client.ping());  // connection still healthy

  EXPECT_EQ(trainer.model_stats("m").ingested, 8);
  server.stop();
}

TEST(TrainServer, ServeTierRefusesIngestWithoutDesync) {
  const std::string path = temp_path("refuse_model.txt");
  const std::string sock = temp_path("refuse.sock");
  // Host a real model in a real serve engine; ingest belongs to the
  // trainer and must bounce with kBadFrame, not break the stream.
  {
    const std::vector<Example> stream = make_stream(60, 8, 0x91);
    ContinuousTrainer bootstrap(trainer_options());
    bootstrap.add_model(model_config("m", path));
    ingest_all(bootstrap, "m", stream, 0, 60);
    ASSERT_TRUE(bootstrap.train_once("m"));
  }
  serve::ServeEngine engine;
  engine.load_model("m", path);
  engine.start();
  serve::ServerOptions lopts;
  lopts.unix_path = sock;
  serve::ServeServer server(engine, lopts);
  server.start();

  serve::ServeClient client = serve::ServeClient::connect_unix(sock);
  std::string message;
  EXPECT_EQ(client.ingest("m", -1, 1.0, SparseVector({0}, {1.0}), &message),
            serve::Status::kBadFrame);
  EXPECT_NE(message.find("not supported"), std::string::npos);
  EXPECT_TRUE(client.ping());

  // The serve tier's models verb carries the reload-observability fields.
  const std::string models = client.models();
  EXPECT_NE(models.find("model m version 1"), std::string::npos);
  EXPECT_NE(models.find("content_gen"), std::string::npos);
  EXPECT_NE(models.find("layout"), std::string::npos);

  server.stop();
  engine.stop();
}

// --- ingest durability (DESIGN.md §18) -----------------------------------

/// Fresh scratch directory path for a model's journal; removes any
/// leftover journal (and quarantined copies) from a previous run.
std::string scratch_wal(const std::string& name) {
  const std::string base = ::testing::TempDir() + "ls_train_wal_" + name;
  const std::string parent = ::testing::TempDir();
  if (::DIR* d = ::opendir(parent.c_str())) {
    while (struct ::dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n.rfind("ls_train_wal_" + name, 0) != 0) continue;
      const std::string dir = parent + n;
      if (::DIR* inner = ::opendir(dir.c_str())) {
        while (struct ::dirent* f = ::readdir(inner)) {
          const std::string fn = f->d_name;
          if (fn != "." && fn != "..") std::remove((dir + "/" + fn).c_str());
        }
        ::closedir(inner);
      }
      ::rmdir(dir.c_str());
    }
    ::closedir(d);
  }
  return base;
}

TrainerModelConfig journaled_config(const std::string& name,
                                    const std::string& tag,
                                    std::size_t window = 64) {
  TrainerModelConfig cfg = model_config(name, temp_path(tag + "_model.txt"),
                                        window);
  cfg.wal_dir = scratch_wal(tag);
  return cfg;
}

TEST(TrainerJournal, DuplicateClientIdsAreAbsorbedAndCounted) {
  ContinuousTrainer trainer(trainer_options());
  trainer.add_model(journaled_config("m", "dedup"));
  std::string message;
  EXPECT_EQ(trainer.ingest("m", SparseVector({0}, {1.0}), 1.0, &message, 7),
            serve::Status::kOk);
  EXPECT_EQ(message, "ingested");
  // A retry of the same client id is acked kOk but absorbed.
  EXPECT_EQ(trainer.ingest("m", SparseVector({0}, {1.0}), 1.0, &message, 7),
            serve::Status::kOk);
  EXPECT_EQ(message, "duplicate");
  // Negative id = no dedup identity: never absorbed.
  EXPECT_EQ(trainer.ingest("m", SparseVector({1}, {1.0}), -1.0, nullptr, -1),
            serve::Status::kOk);
  EXPECT_EQ(trainer.ingest("m", SparseVector({1}, {1.0}), -1.0, nullptr, -1),
            serve::Status::kOk);
  const TrainerModelStats s = trainer.model_stats("m");
  EXPECT_EQ(s.ingested, 3);
  EXPECT_EQ(s.duplicates_total, 1);
  EXPECT_EQ(s.window_size, 3u);
  EXPECT_TRUE(s.journal_enabled);
  EXPECT_FALSE(s.journal_degraded);
}

TEST(TrainerJournal, CrashReplayRebuildsWindowAndDedupAcrossRestart) {
  const std::vector<Example> stream = make_stream(120, 10, 0x5E1);
  TrainerModelConfig cfg = journaled_config("m", "replay", 48);
  {
    ContinuousTrainer before(trainer_options());
    before.add_model(cfg);
    for (std::size_t r = 0; r < 120; ++r) {
      ASSERT_EQ(before.ingest("m", stream[r].x, stream[r].label, nullptr,
                              static_cast<std::int64_t>(r)),
                serve::Status::kOk);
    }
    ASSERT_EQ(before.model_stats("m").window_size, 48u);
  }  // destructor = crash stand-in: nothing is flushed beyond the acks

  ContinuousTrainer after(trainer_options());
  after.add_model(cfg);
  const TrainerModelStats s = after.model_stats("m");
  // Replay rebuilt the full window (digest checkpoints verified it) and
  // did not quarantine or degrade anything.
  EXPECT_EQ(s.window_size, 48u);
  EXPECT_GE(s.journal_replayed, 48);
  EXPECT_EQ(s.journal_quarantines_total, 0);
  EXPECT_FALSE(s.journal_degraded);
  // The dedup set survived with it: a post-restart retry of an acked id
  // inside the retained journal is still absorbed.
  std::string message;
  EXPECT_EQ(after.ingest("m", stream[119].x, stream[119].label, &message,
                         119),
            serve::Status::kOk);
  EXPECT_EQ(message, "duplicate");
  EXPECT_EQ(after.model_stats("m").window_size, 48u);
  // And the rebuilt window is trainable — replay restored real examples,
  // not placeholders.
  EXPECT_TRUE(after.train_once("m"));
}

TEST(TrainerJournal, AppendFailureDegradesThenRearmsAndReplaysEverything) {
  TrainerModelConfig cfg = journaled_config("m", "degrade", 32);
  ContinuousTrainer trainer(trainer_options());
  trainer.add_model(cfg);
  ASSERT_EQ(trainer.ingest("m", SparseVector({0}, {1.0}), 1.0, nullptr, 0),
            serve::Status::kOk);
  {
    // Disk goes bad: every journal append fails. Ingest must keep acking
    // (memory-only) while health flips to degraded.
    failpoint::Scoped fp("wal.append");
    EXPECT_EQ(trainer.ingest("m", SparseVector({1}, {1.0}), -1.0, nullptr, 1),
              serve::Status::kOk);
    EXPECT_TRUE(trainer.journal_degraded());
    const TrainerModelStats mid = trainer.model_stats("m");
    EXPECT_TRUE(mid.journal_degraded);
    EXPECT_GE(mid.journal_failures_total, 1);
    EXPECT_EQ(mid.window_size, 2u);
  }
  // Disk recovers: the next ingest re-arms by rewriting the journal from
  // the live window, so the example acked while degraded is durable again.
  EXPECT_EQ(trainer.ingest("m", SparseVector({2}, {1.0}), 1.0, nullptr, 2),
            serve::Status::kOk);
  EXPECT_FALSE(trainer.journal_degraded());
  const TrainerModelStats s = trainer.model_stats("m");
  EXPECT_FALSE(s.journal_degraded);
  EXPECT_EQ(s.journal_rearms_total, 1);
  EXPECT_EQ(s.window_size, 3u);

  // Restart proves the rewrite: all three examples replay, including the
  // one that was memory-only for a while.
  ContinuousTrainer after(trainer_options());
  after.add_model(cfg);
  EXPECT_EQ(after.model_stats("m").window_size, 3u);
  EXPECT_EQ(after.model_stats("m").journal_replayed, 3);
}

TEST(TrainerJournal, FailedRearmPreservesTheDurablePrefix) {
  TrainerModelConfig cfg = journaled_config("m", "rearm_fail", 32);
  {
    ContinuousTrainer trainer(trainer_options());
    trainer.add_model(cfg);
    // Three examples land durably before the disk goes bad.
    for (std::int64_t i = 0; i < 3; ++i) {
      ASSERT_EQ(trainer.ingest("m", SparseVector({0}, {1.0 + double(i)}),
                               i % 2 == 0 ? 1.0 : -1.0, nullptr, i),
                serve::Status::kOk);
    }
    failpoint::Scoped fp("wal.append");
    // The first failing append flips degraded; every ingest after that
    // retries the re-arm, whose side-directory rewrite fails too. None of
    // those failed attempts may touch the durable prefix — the old
    // in-place rewrite deleted it on the first retry.
    for (std::int64_t i = 3; i < 8; ++i) {
      EXPECT_EQ(trainer.ingest("m", SparseVector({1}, {2.0}),
                               i % 2 == 0 ? 1.0 : -1.0, nullptr, i),
                serve::Status::kOk);
    }
    EXPECT_TRUE(trainer.journal_degraded());
  }  // crash while still degraded

  ContinuousTrainer after(trainer_options());
  after.add_model(cfg);
  const TrainerModelStats s = after.model_stats("m");
  // The pre-outage prefix replays; the memory-only acks are the degraded
  // mode's documented bounded loss — never the whole history.
  EXPECT_EQ(s.journal_replayed, 3);
  EXPECT_EQ(s.window_size, 3u);
  EXPECT_FALSE(s.journal_degraded);
  EXPECT_EQ(s.journal_quarantines_total, 0);
  // The dedup horizon for the durable ids survived with it.
  std::string message;
  EXPECT_EQ(after.ingest("m", SparseVector({0}, {3.0}), 1.0, &message, 2),
            serve::Status::kOk);
  EXPECT_EQ(message, "duplicate");
}

TEST(TrainerJournal, CorruptJournalIsQuarantinedAndAFreshOneStarted) {
  const std::vector<Example> stream = make_stream(40, 8, 0xC0DE);
  TrainerModelConfig cfg = journaled_config("m", "quarantine", 32);
  {
    ContinuousTrainer before(trainer_options());
    before.add_model(cfg);
    for (std::size_t r = 0; r < 40; ++r) {
      ASSERT_EQ(before.ingest("m", stream[r].x, stream[r].label, nullptr,
                              static_cast<std::int64_t>(r)),
                serve::Status::kOk);
    }
  }
  // Flip a byte inside the first record's payload: CRC mismatch with more
  // records after it = mid-stream corruption, which recovery refuses.
  std::string seg;
  if (::DIR* d = ::opendir(cfg.wal_dir.c_str())) {
    while (struct ::dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n.size() > 4 && n.compare(n.size() - 4, 4, ".seg") == 0 &&
          (seg.empty() || n < seg.substr(seg.rfind('/') + 1))) {
        seg = cfg.wal_dir + "/" + n;
      }
    }
    ::closedir(d);
  }
  ASSERT_FALSE(seg.empty()) << "no journal segment under " << cfg.wal_dir;
  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << seg;
    f.seekp(10);
    char b = 0;
    f.seekg(10);
    f.get(b);
    f.seekp(10);
    f.put(static_cast<char>(b ^ 0x40));
  }

  ContinuousTrainer after(trainer_options());
  after.add_model(cfg);
  const TrainerModelStats s = after.model_stats("m");
  // The poisoned journal was renamed aside, nothing was replayed, and the
  // model is journaling again into a fresh directory — not degraded.
  EXPECT_EQ(s.journal_quarantines_total, 1);
  EXPECT_EQ(s.journal_replayed, 0);
  EXPECT_EQ(s.window_size, 0u);
  EXPECT_TRUE(s.journal_enabled);
  EXPECT_FALSE(s.journal_degraded);
  // New ingests journal durably: a restart replays them.
  ASSERT_EQ(after.ingest("m", stream[0].x, stream[0].label, nullptr, 1000),
            serve::Status::kOk);
  ContinuousTrainer again(trainer_options());
  again.add_model(cfg);
  EXPECT_EQ(again.model_stats("m").window_size, 1u);
  EXPECT_EQ(again.model_stats("m").journal_replayed, 1);
}

TEST(TrainerJournal, WireIngestWithIdsDedupsAndSurfacesJournalState) {
  const std::string sock = temp_path("journal_wire.sock");
  TrainerModelConfig cfg = journaled_config("m", "wire", 32);
  ContinuousTrainer trainer(trainer_options());
  trainer.add_model(cfg);
  TrainFrameHandler handler(trainer);
  serve::ServerOptions lopts;
  lopts.unix_path = sock;
  serve::ServeServer server(handler, lopts);
  server.start();

  serve::ServeClient client = serve::ServeClient::connect_unix(sock);
  std::string message;
  EXPECT_EQ(client.ingest("m", 5, 1.0, SparseVector({0}, {1.0}), &message),
            serve::Status::kOk);
  EXPECT_EQ(client.ingest("m", 5, 1.0, SparseVector({0}, {1.0}), &message),
            serve::Status::kOk);
  EXPECT_EQ(message, "duplicate");
  EXPECT_EQ(client.health(), "ready");
  // The models verb carries the per-model journal state.
  const std::string models = client.models();
  EXPECT_NE(models.find("journal on"), std::string::npos) << models;
  EXPECT_NE(models.find("duplicates 1"), std::string::npos) << models;
  {
    failpoint::Scoped fp("wal.append");
    EXPECT_EQ(client.ingest("m", 6, -1.0, SparseVector({1}, {1.0}), &message),
              serve::Status::kOk);
    EXPECT_EQ(client.health(), "degraded");
    EXPECT_NE(client.models().find("journal degraded"), std::string::npos);
  }
  EXPECT_EQ(client.ingest("m", 7, 1.0, SparseVector({2}, {1.0}), &message),
            serve::Status::kOk);
  EXPECT_EQ(client.health(), "ready");
  server.stop();
}

}  // namespace
}  // namespace ls::train
