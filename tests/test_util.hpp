// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "formats/any_matrix.hpp"
#include "formats/coo.hpp"
#include "formats/dense.hpp"

namespace ls::test {

/// Dense reference y = A * w computed from COO by brute force.
inline std::vector<real_t> reference_multiply(const CooMatrix& coo,
                                              std::span<const real_t> w) {
  std::vector<real_t> y(static_cast<std::size_t>(coo.rows()), 0.0);
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    y[static_cast<std::size_t>(rows[k])] +=
        vals[k] * w[static_cast<std::size_t>(cols[k])];
  }
  return y;
}

/// Random sparse matrix with roughly `density` occupancy.
inline CooMatrix random_matrix(index_t m, index_t n, double density,
                               Rng& rng) {
  std::vector<Triplet> triplets;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) {
        triplets.push_back({i, j, rng.uniform(-1.0, 1.0)});
      }
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

/// Random dense workspace vector.
inline std::vector<real_t> random_vector(index_t n, Rng& rng) {
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// EXPECT element-wise closeness of two vectors.
inline void expect_near(std::span<const real_t> a, std::span<const real_t> b,
                        double tol = 1e-10) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

}  // namespace ls::test
