// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "formats/any_matrix.hpp"
#include "formats/coo.hpp"
#include "formats/dense.hpp"

namespace ls::test {

/// Runs `fn` with the OpenMP thread count set to `t`, restoring after.
/// Used both to assert thread-count invariance of deterministic code and
/// to pin wall-clock-racing tests (empirical probes) to one thread so an
/// oversubscribed OMP_NUM_THREADS run cannot skew their measurements.
template <class Fn>
auto with_threads(int t, Fn&& fn) {
  const int before = num_threads();
  set_num_threads(t);
  auto restore = [&] { set_num_threads(before); };
  try {
    auto result = fn();
    restore();
    return result;
  } catch (...) {
    restore();
    throw;
  }
}

/// Dense reference y = A * w computed from COO by brute force.
inline std::vector<real_t> reference_multiply(const CooMatrix& coo,
                                              std::span<const real_t> w) {
  std::vector<real_t> y(static_cast<std::size_t>(coo.rows()), 0.0);
  const auto rows = coo.row_indices();
  const auto cols = coo.col_indices();
  const auto vals = coo.values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    y[static_cast<std::size_t>(rows[k])] +=
        vals[k] * w[static_cast<std::size_t>(cols[k])];
  }
  return y;
}

/// Random sparse matrix with roughly `density` occupancy.
inline CooMatrix random_matrix(index_t m, index_t n, double density,
                               Rng& rng) {
  std::vector<Triplet> triplets;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (rng.bernoulli(density)) {
        triplets.push_back({i, j, rng.uniform(-1.0, 1.0)});
      }
    }
  }
  return CooMatrix(m, n, std::move(triplets));
}

/// Random dense workspace vector.
inline std::vector<real_t> random_vector(index_t n, Rng& rng) {
  std::vector<real_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// EXPECT element-wise closeness of two vectors.
inline void expect_near(std::span<const real_t> a, std::span<const real_t> b,
                        double tol = 1e-10) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
  }
}

/// Distance between two doubles in units in the last place. Maps the IEEE
/// bit patterns onto a monotone integer line (two's-complement trick) so
/// adjacent representable doubles are exactly 1 apart; +0 and -0 are 0
/// apart. NaN anywhere yields the maximum distance.
inline std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  auto key = [](double x) -> std::int64_t {
    const auto i = std::bit_cast<std::int64_t>(x);
    return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
  };
  const std::int64_t ka = key(a);
  const std::int64_t kb = key(b);
  return ka >= kb ? static_cast<std::uint64_t>(ka) -
                        static_cast<std::uint64_t>(kb)
                  : static_cast<std::uint64_t>(kb) -
                        static_cast<std::uint64_t>(ka);
}

/// ULP-aware closeness: passes when the values are within `max_ulps`
/// representable doubles of each other OR within `abs_tol` absolutely.
/// The absolute escape hatch matters near zero, where cancellation can
/// leave two mathematically-equal sums astronomically many ULPs apart
/// (ULP size at 1e-18 is ~1e-34).
inline void expect_ulp_near(std::span<const real_t> a,
                            std::span<const real_t> b,
                            std::uint64_t max_ulps = 256,
                            double abs_tol = 1e-12) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) <= abs_tol) continue;
    EXPECT_LE(ulp_distance(a[i], b[i]), max_ulps)
        << "at index " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// EXPECT bit-identical vectors (reported as values, compared as bits —
/// catches -0.0 vs +0.0 and NaN-payload drift that == would hide).
inline void expect_bit_identical(std::span<const real_t> a,
                                 std::span<const real_t> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "at index " << i << ": " << a[i] << " vs " << b[i];
  }
}

}  // namespace ls::test
