// Write-ahead log suite: framing round-trips, rotation + retention,
// recovery semantics (torn tail truncated, mid-stream corruption refused),
// failpoint-injected disk faults, and two randomized campaigns — an
// every-prefix truncation sweep and a seeded bit-flip corpus over
// multi-segment journals (override LS_FUZZ_SEED to replay a failure; every
// assertion carries the trial seed). The durability invariant under test:
// recovery either throws WalCorruption or yields an exact prefix of the
// appended records — never a reordered, altered, or gap-ridden sequence.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "common/wal.hpp"

namespace ls {
namespace {

using failpoint::Scoped;
using failpoint::Spec;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("LS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0xDA7A10C5ull;
}

/// Fresh, empty scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ls_wal_" + name;
  if (::DIR* d = ::opendir(dir.c_str())) {
    while (struct ::dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n == "." || n == "..") continue;
      std::remove((dir + "/" + n).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
  return dir;
}

std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> out;
  ::DIR* d = ::opendir(dir.c_str());
  if (!d) return out;
  while (struct ::dirent* e = ::readdir(d)) {
    const std::string n = e->d_name;
    if (n.size() > 4 && n.compare(n.size() - 4, 4, ".seg") == 0) {
      out.push_back(dir + "/" + n);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

std::vector<std::string> recover_all(const std::string& dir) {
  std::vector<std::string> got;
  WriteAheadLog::recover_dir(
      dir, [&](std::string_view r) { got.emplace_back(r); });
  return got;
}

/// True when `got` is byte-exact equal to the first got.size() entries of
/// `want` — the only shape recovery is ever allowed to return.
bool is_exact_prefix(const std::vector<std::string>& got,
                     const std::vector<std::string>& want) {
  if (got.size() > want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) return false;
  }
  return true;
}

std::string record_payload(std::size_t i, std::size_t pad) {
  std::string p = "record-" + std::to_string(i) + "|";
  p.append(pad, static_cast<char>('a' + i % 26));
  return p;
}

// ----------------------------------------------------------- round trips

TEST(Wal, AppendsSurviveReopen) {
  const std::string dir = scratch_dir("reopen");
  std::vector<std::string> want;
  {
    WriteAheadLog wal(dir, WalOptions{});
    for (std::size_t i = 0; i < 10; ++i) {
      want.push_back(record_payload(i, i * 3));
      wal.append(want.back());
    }
    EXPECT_EQ(wal.stats().appended_total, 10);
  }
  std::vector<std::string> got;
  WriteAheadLog wal(dir, WalOptions{},
                    [&](std::string_view r) { got.emplace_back(r); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(wal.stats().recovered_records, 10);
  // The reopened log keeps appending where the old one stopped.
  wal.append("after-reopen");
  EXPECT_EQ(recover_all(dir).size(), 11u);
}

TEST(Wal, EmptyDirectoryRecoversToNothing) {
  const std::string dir = scratch_dir("empty");
  std::size_t seen = 0;
  WriteAheadLog wal(dir, WalOptions{},
                    [&](std::string_view) { ++seen; });
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(wal.stats().segments, 1u);
}

TEST(Wal, RejectsEmptyAndOversizedRecords) {
  const std::string dir = scratch_dir("bounds");
  WalOptions opts;
  opts.max_record_bytes = 64;
  WriteAheadLog wal(dir, opts);
  EXPECT_THROW(wal.append(""), Error);
  EXPECT_THROW(wal.append(std::string(65, 'x')), Error);
  EXPECT_NO_THROW(wal.append(std::string(64, 'x')));
}

// ---------------------------------------------------- rotation, retention

TEST(Wal, RotatesSegmentsAndRetainsWindow) {
  const std::string dir = scratch_dir("rotate");
  WalOptions opts;
  opts.segment_bytes = 128;  // tiny segments force frequent rotation
  opts.retain_records = 8;
  std::vector<std::string> want;
  {
    WriteAheadLog wal(dir, opts);
    for (std::size_t i = 0; i < 50; ++i) {
      want.push_back(record_payload(i, 20));
      wal.append(want.back());
    }
    EXPECT_GT(wal.stats().rotations_total, 0);
    EXPECT_GT(wal.stats().retired_segments, 0);
    // Retention keeps at least the requested window on disk.
    EXPECT_GE(wal.stats().records, opts.retain_records);
  }
  // Recovery returns an exact *suffix* of the stream: the newest records,
  // at least retain_records of them, with nothing reordered.
  const std::vector<std::string> got = recover_all(dir);
  ASSERT_GE(got.size(), opts.retain_records);
  ASSERT_LE(got.size(), want.size());
  const std::size_t start = want.size() - got.size();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[start + i]) << "suffix mismatch at " << i;
  }
}

TEST(Wal, ResetDropsEverySegment) {
  const std::string dir = scratch_dir("reset");
  WalOptions opts;
  opts.segment_bytes = 64;
  WriteAheadLog wal(dir, opts);
  for (std::size_t i = 0; i < 20; ++i) wal.append(record_payload(i, 10));
  wal.reset();
  EXPECT_EQ(wal.stats().records, 0u);
  EXPECT_EQ(wal.stats().segments, 1u);
  wal.append("fresh-start");
  const std::vector<std::string> got = recover_all(dir);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "fresh-start");
}

// ------------------------------------------------------ damage semantics

TEST(Wal, TornTailIsTruncatedAndLogReopens) {
  const std::string dir = scratch_dir("torn");
  std::vector<std::string> want;
  {
    WriteAheadLog wal(dir, WalOptions{});
    for (std::size_t i = 0; i < 5; ++i) {
      want.push_back(record_payload(i, 8));
      wal.append(want.back());
    }
  }
  // Chop 3 bytes off the tail — the signature of dying mid-append.
  const std::string path = segment_files(dir).back();
  std::string bytes = read_raw(path);
  write_raw(path, bytes.substr(0, bytes.size() - 3));

  std::vector<std::string> got;
  std::int64_t torn = 0;
  WriteAheadLog::recover_dir(
      dir, [&](std::string_view r) { got.emplace_back(r); }, &torn);
  EXPECT_TRUE(is_exact_prefix(got, want));
  EXPECT_EQ(got.size(), want.size() - 1);
  EXPECT_GT(torn, 0);
  // After truncation the log accepts appends and replays cleanly.
  {
    WriteAheadLog wal(dir, WalOptions{});
    wal.append("post-crash");
  }
  const std::vector<std::string> again = recover_all(dir);
  ASSERT_EQ(again.size(), got.size() + 1);
  EXPECT_EQ(again.back(), "post-crash");
}

TEST(Wal, MidStreamCorruptionIsRefused) {
  const std::string dir = scratch_dir("midstream");
  {
    WriteAheadLog wal(dir, WalOptions{});
    for (std::size_t i = 0; i < 6; ++i) wal.append(record_payload(i, 16));
  }
  // Flip a payload byte of the FIRST record: the damage sits before
  // readable data, so replay must refuse rather than skip.
  const std::string path = segment_files(dir).back();
  std::string bytes = read_raw(path);
  bytes[10] = static_cast<char>(bytes[10] ^ 0x40);
  write_raw(path, bytes);
  EXPECT_THROW(recover_all(dir), WalCorruption);
}

TEST(Wal, DamageInNonFinalSegmentIsRefusedEvenAtItsTail) {
  const std::string dir = scratch_dir("oldseg");
  WalOptions opts;
  opts.segment_bytes = 96;
  {
    WriteAheadLog wal(dir, opts);
    for (std::size_t i = 0; i < 30; ++i) wal.append(record_payload(i, 12));
  }
  const std::vector<std::string> files = segment_files(dir);
  ASSERT_GE(files.size(), 2u);
  // Truncating an *old* segment would be a torn tail if it were the last
  // one; here it silently swallows acked records, so recovery must throw.
  const std::string& victim = files[files.size() - 2];
  std::string bytes = read_raw(victim);
  write_raw(victim, bytes.substr(0, bytes.size() - 5));
  EXPECT_THROW(recover_all(dir), WalCorruption);
}

TEST(Wal, WalCorruptionIsAnLsError) {
  // Callers that quarantine catch WalCorruption specifically; everything
  // else treats it as the library-wide Error.
  const WalCorruption e("x");
  EXPECT_NE(dynamic_cast<const Error*>(&e), nullptr);
}

// ----------------------------------------------------------- disk faults

TEST(Wal, AppendFailpointThrowsAndLogStaysUsable) {
  const std::string dir = scratch_dir("fp_append");
  WriteAheadLog wal(dir, WalOptions{});
  wal.append("before");
  {
    Scoped fp("wal.append");
    EXPECT_THROW(wal.append("lost"), Error);
    EXPECT_THROW(wal.append("lost-too"), Error);
  }
  wal.append("after");
  const std::vector<std::string> got = recover_all(dir);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "before");
  EXPECT_EQ(got[1], "after");
}

TEST(Wal, RotateFailpointLeavesOldSegmentIntact) {
  const std::string dir = scratch_dir("fp_rotate");
  WalOptions opts;
  opts.segment_bytes = 32;
  WriteAheadLog wal(dir, opts);
  wal.append(std::string(40, 'a'));  // oversize: next append must rotate
  {
    Scoped fp("wal.rotate");
    EXPECT_THROW(wal.append("blocked"), Error);
  }
  // Rotation retries once the fault clears; nothing was lost meanwhile.
  wal.append("landed");
  const std::vector<std::string> got = recover_all(dir);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "landed");
  EXPECT_EQ(wal.stats().rotations_total, 1);
}

TEST(Wal, SyncPoliciesAllReplay) {
  for (const WalSyncPolicy policy :
       {WalSyncPolicy::kAlways, WalSyncPolicy::kRotate, WalSyncPolicy::kNever}) {
    const std::string dir =
        scratch_dir("policy_" + std::to_string(static_cast<int>(policy)));
    WalOptions opts;
    opts.sync = policy;
    std::vector<std::string> want;
    {
      WriteAheadLog wal(dir, opts);
      for (std::size_t i = 0; i < 7; ++i) {
        want.push_back(record_payload(i, 5));
        wal.append(want.back());
      }
    }
    EXPECT_EQ(recover_all(dir), want);
  }
}

// ------------------------------------------------- randomized campaigns

// Every-prefix truncation sweep: for each possible byte-length prefix of
// the final segment, recovery must yield an exact prefix of the appended
// stream — a crash can tear the tail anywhere, and no cut may reorder,
// alter, or invent records.
TEST(WalFuzz, EveryPrefixTruncationYieldsExactPrefix) {
  const std::string dir = scratch_dir("prefix");
  WalOptions opts;
  opts.segment_bytes = 256;
  std::vector<std::string> want;
  {
    WriteAheadLog wal(dir, opts);
    for (std::size_t i = 0; i < 40; ++i) {
      want.push_back(record_payload(i, i % 13));
      wal.append(want.back());
    }
  }
  const std::vector<std::string> files = segment_files(dir);
  ASSERT_GE(files.size(), 2u) << "sweep needs a multi-segment journal";
  const std::string last = files.back();
  const std::string pristine = read_raw(last);

  // Records living in completed segments survive every cut of the last.
  std::vector<std::string> earlier;
  for (std::size_t i = 0; i + 1 < files.size(); ++i) {
    const std::string bytes = read_raw(files[i]);
    std::size_t off = 0;
    while (off + 8 <= bytes.size()) {
      std::uint32_t len;
      std::memcpy(&len, bytes.data() + off, 4);
      earlier.push_back(bytes.substr(off + 8, len));
      off += 8 + len;
    }
  }

  std::size_t distinct_counts = 0;
  std::size_t prev = static_cast<std::size_t>(-1);
  for (std::size_t cut = 0; cut <= pristine.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    write_raw(last, pristine.substr(0, cut));
    const std::vector<std::string> got = recover_all(dir);
    ASSERT_TRUE(is_exact_prefix(got, want));
    ASSERT_GE(got.size(), earlier.size());
    if (got.size() != prev) {
      prev = got.size();
      ++distinct_counts;
    }
    // recover_dir truncated the cut file in place; restore for next round.
    write_raw(last, pristine);
  }
  // Sanity: the sweep actually exercised many distinct recovery depths.
  EXPECT_GT(distinct_counts, 3u);
}

// Seeded bit-flip corpus: arbitrary single-bit damage anywhere in a
// multi-segment journal. Recovery must either refuse (WalCorruption) or
// return an exact prefix — silently absorbing a flipped bit into a
// "recovered" record would be the one unforgivable outcome.
TEST(WalFuzz, SeededBitFlipsEitherThrowOrYieldExactPrefix) {
  constexpr int kTrials = 120;
  const std::string dir = scratch_dir("bitflip");
  WalOptions opts;
  opts.segment_bytes = 200;
  std::vector<std::string> want;
  {
    WriteAheadLog wal(dir, opts);
    for (std::size_t i = 0; i < 60; ++i) {
      want.push_back(record_payload(i, i % 9));
      wal.append(want.back());
    }
  }
  const std::vector<std::string> files = segment_files(dir);
  ASSERT_GE(files.size(), 2u);
  std::vector<std::string> pristine;
  for (const std::string& f : files) pristine.push_back(read_raw(f));

  int refused = 0, truncated = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t seed = base_seed() + static_cast<std::uint64_t>(t);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (replay: LS_FUZZ_SEED=" + std::to_string(seed) +
                 " with kTrials>=1)");
    Rng rng(seed);
    const std::size_t fi = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<index_t>(files.size()) - 1));
    std::string bytes = pristine[fi];
    const std::size_t byte = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<index_t>(bytes.size()) - 1));
    const int bit = rng.uniform_int(0, 7);
    bytes[byte] = static_cast<char>(bytes[byte] ^ (1 << bit));
    write_raw(files[fi], bytes);

    try {
      const std::vector<std::string> got = recover_all(dir);
      ASSERT_TRUE(is_exact_prefix(got, want))
          << "bit flip was silently absorbed into replay";
      if (got.size() < want.size()) ++truncated;
    } catch (const WalCorruption&) {
      ++refused;
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
      write_raw(files[i], pristine[i]);
    }
  }
  // Both damage classes must actually occur across the corpus, or the
  // campaign is not covering the decision boundary.
  EXPECT_GT(refused, 0);
  EXPECT_GT(refused + truncated, kTrials / 2);
}

}  // namespace
}  // namespace ls
